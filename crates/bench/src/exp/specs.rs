//! The built-in experiment registry: one [`ExperimentSpec`] per
//! legacy figure binary.
//!
//! Each spec's renderer is the corresponding binary's `main` body
//! ported verbatim (`println!` → `writeln!` into the rendered text),
//! so the engine's output is byte-identical to the binary's stdout —
//! `tests/exp_golden.rs` pins this against the committed `results/`
//! tables. Scenario lists mirror each binary's sweep loop in row
//! order; repeats (the ablations binary re-measures the paper
//! configuration in most sections) are kept so renderers can index
//! scenarios positionally, and the planner deduplicates them.

use std::collections::HashMap;
use std::fmt::Write as _;

use ccr_core::report::{pct, speedup, Table};
use ccr_regions::{ComputationGroup, GroupDistribution, RegionConfig};
use ccr_sim::{CrbConfig, MachineConfig, NonuniformConfig, Replacement};
use ccr_workloads::{InputSet, NAMES};

use super::{ExperimentSpec, Rendered, Scenario, SpecResults};
use crate::mean;

/// All built-in experiments, in `results/` presentation order.
pub fn registry() -> Vec<ExperimentSpec> {
    vec![
        fig4(),
        fig8a(),
        fig8b(),
        fig9(),
        fig10(),
        fig11(),
        ablations(),
        width_sensitivity(),
    ]
}

/// Looks an experiment up by short name (`fig8a`) or legacy binary
/// name (`fig8a_instances`).
pub fn find(name: &str) -> Option<ExperimentSpec> {
    registry()
        .into_iter()
        .find(|s| s.name == name || s.output == name)
}

/// Figure 4: block vs region dynamic reuse potential (compiler-side
/// study; no simulation scenarios).
pub fn fig4() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig4",
        output: "fig4_potential",
        title: "Figure 4 — dynamic reuse potential, block vs region",
        workloads: &NAMES,
        scenarios: Vec::new(),
        potential: true,
        render: render_fig4,
    }
}

fn render_fig4(res: &SpecResults<'_>) -> Rendered {
    let mut table = Table::new(["benchmark", "block", "region", "region/block"]);
    let mut blocks = Vec::new();
    let mut regions = Vec::new();
    for (name, pot) in res.spec.workloads.iter().zip(res.potentials()) {
        blocks.push(pot.block_ratio());
        regions.push(pot.region_ratio());
        let ratio = if pot.block_ratio() > 0.0 {
            format!("{:.2}x", pot.region_ratio() / pot.block_ratio())
        } else {
            "-".to_string()
        };
        table.row([
            name.to_string(),
            pct(pot.block_ratio()),
            pct(pot.region_ratio()),
            ratio,
        ]);
    }
    let avg_block = mean(blocks);
    let avg_region = mean(regions);
    table.row([
        "average".to_string(),
        pct(avg_block),
        pct(avg_region),
        format!("{:.2}x", avg_region / avg_block.max(1e-9)),
    ]);

    let mut text = String::new();
    writeln!(
        text,
        "Figure 4 — dynamic reuse potential (8-record history)"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Paper: block avg ~30%, region avg ~55%; region-level reuse roughly \
         doubles the exploitable execution."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("potential", table)],
    }
}

/// Figure 8(a): speedup vs computation instances (128 entries × 4/8/16
/// CIs).
pub fn fig8a() -> ExperimentSpec {
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    ExperimentSpec {
        name: "fig8a",
        output: "fig8a_instances",
        title: "Figure 8(a) — speedup vs computation instances (128 entries)",
        workloads: &NAMES,
        scenarios: [4usize, 8, 16]
            .into_iter()
            .map(|ci| {
                Scenario::new(
                    format!("128e/{ci}CI"),
                    InputSet::Train,
                    &region,
                    &machine,
                    CrbConfig::with_instances(ci),
                )
            })
            .collect(),
        potential: false,
        render: render_fig8a,
    }
}

fn render_fig8a(res: &SpecResults<'_>) -> Rendered {
    let mut table = Table::new([
        "benchmark",
        "128e/4CI",
        "128e/8CI",
        "128e/16CI",
        "eliminated(16CI)",
    ]);
    let configs = res.spec.scenarios.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); configs];

    for (b, name) in res.spec.workloads.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, col) in columns.iter_mut().enumerate() {
            let s = res.runs(c)[b].measurement.speedup();
            col.push(s);
            cells.push(speedup(s));
        }
        cells.push(pct(res.runs(2)[b].measurement.eliminated_fraction()));
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &columns {
        avg.push(speedup(mean(col.iter().copied())));
    }
    avg.push(pct(mean(
        res.runs(2)
            .iter()
            .map(|r| r.measurement.eliminated_fraction()),
    )));
    table.row(avg);

    let mut text = String::new();
    writeln!(
        text,
        "Figure 8(a) — speedup vs computation instances (128 entries)"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Paper: avg 1.20 (4 CI), 1.25 (8 CI), 1.30 (16 CI); ~40% of dynamic \
         instruction repetition eliminated."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("speedup", table)],
    }
}

/// Figure 8(b): speedup vs computation entries (32/64/128 × 8 CIs).
pub fn fig8b() -> ExperimentSpec {
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    ExperimentSpec {
        name: "fig8b",
        output: "fig8b_entries",
        title: "Figure 8(b) — speedup vs computation entries (8 instances)",
        workloads: &NAMES,
        scenarios: [32usize, 64, 128]
            .into_iter()
            .map(|e| {
                Scenario::new(
                    format!("{e}e/8CI"),
                    InputSet::Train,
                    &region,
                    &machine,
                    CrbConfig::with_entries(e),
                )
            })
            .collect(),
        potential: false,
        render: render_fig8b,
    }
}

fn render_fig8b(res: &SpecResults<'_>) -> Rendered {
    let mut table = Table::new(["benchmark", "32e/8CI", "64e/8CI", "128e/8CI", "regions"]);
    let configs = res.spec.scenarios.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); configs];

    for (b, name) in res.spec.workloads.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, col) in columns.iter_mut().enumerate() {
            let s = res.runs(c)[b].measurement.speedup();
            col.push(s);
            cells.push(speedup(s));
        }
        cells.push(res.runs(2)[b].compiled.regions.len().to_string());
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &columns {
        avg.push(speedup(mean(col.iter().copied())));
    }
    avg.push(String::new());
    table.row(avg);

    let mut text = String::new();
    writeln!(
        text,
        "Figure 8(b) — speedup vs computation entries (8 instances)"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Paper: avg 1.20 (32e), 1.23 (64e), 1.25 (128e) — a moderate number of \
         entries suffices. Our synthetic programs form fewer static regions \
         than full SPEC binaries, so entry-count sensitivity is even lower; \
         the conclusion (no loss at small CRBs) is the same."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("speedup", table)],
    }
}

/// Figure 9: static and dynamic computation-group distributions under
/// the paper configuration.
pub fn fig9() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig9",
        output: "fig9_groups",
        title: "Figure 9 — static & dynamic computation-group distributions",
        workloads: &NAMES,
        scenarios: vec![Scenario::new(
            "paper",
            InputSet::Train,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        )],
        potential: false,
        render: render_fig9,
    }
}

fn render_fig9(res: &SpecResults<'_>) -> Rendered {
    let runs = res.runs(0);

    let mut header = vec!["benchmark".to_string()];
    header.extend(ComputationGroup::ALL.iter().map(|g| g.label().to_string()));
    let mut static_table = Table::new(header.clone());
    let mut dynamic_table = Table::new(header);

    let mut all_static = GroupDistribution::default();
    let mut all_dynamic = GroupDistribution::default();

    for run in runs {
        let stat = GroupDistribution::static_of(&run.compiled.regions);
        let weights: HashMap<_, _> = run
            .measurement
            .ccr
            .stats
            .regions
            .iter()
            .map(|(id, s)| (*id, s.skipped_instrs))
            .collect();
        let dynamic = GroupDistribution::dynamic_of(&run.compiled.regions, &weights);
        let render = |d: &GroupDistribution| -> Vec<String> {
            ComputationGroup::ALL
                .iter()
                .map(|g| {
                    if d.total() == 0.0 {
                        "-".to_string()
                    } else {
                        pct(d.fraction(*g))
                    }
                })
                .collect()
        };
        let mut srow = vec![run.name.to_string()];
        srow.extend(render(&stat));
        static_table.row(srow);
        let mut drow = vec![run.name.to_string()];
        drow.extend(render(&dynamic));
        dynamic_table.row(drow);
        for g in ComputationGroup::ALL {
            all_static.add(g, stat.fraction(g));
            if dynamic.total() > 0.0 {
                all_dynamic.add(g, dynamic.fraction(g));
            }
        }
    }
    let avg_row = |d: &GroupDistribution, t: &mut Table| {
        let mut row = vec!["average".to_string()];
        row.extend(
            ComputationGroup::ALL
                .iter()
                .map(|g| pct(d.fraction(*g)))
                .collect::<Vec<_>>(),
        );
        t.row(row);
    };
    avg_row(&all_static, &mut static_table);
    avg_row(&all_dynamic, &mut dynamic_table);

    let mut text = String::new();
    writeln!(text, "Figure 9(a) — static computation-group distribution").unwrap();
    writeln!(text, "{static_table}").unwrap();
    writeln!(
        text,
        "stateless static fraction: {}",
        pct(all_static.stateless_fraction())
    )
    .unwrap();
    writeln!(text).unwrap();
    writeln!(
        text,
        "Figure 9(b) — dynamic computation-group distribution (by eliminated instructions)"
    )
    .unwrap();
    writeln!(text, "{dynamic_table}").unwrap();
    writeln!(
        text,
        "stateless dynamic fraction: {}",
        pct(all_dynamic.stateless_fraction())
    )
    .unwrap();
    writeln!(text).unwrap();
    writeln!(
        text,
        "Paper: ~90% of computations in the seven groups; SL ≈ 65% static, ≈ 60% dynamic."
    )
    .unwrap();

    // Section 5.2: acyclic regions replace ~10 instructions on average.
    let mut sizes = Vec::new();
    for run in runs {
        for info in &run.compiled.regions {
            if !info.spec.is_cyclic() {
                sizes.push(info.spec.static_instrs as f64);
            }
        }
    }
    if !sizes.is_empty() {
        writeln!(
            text,
            "acyclic regions replace on average {:.1} instructions (paper: ~10)",
            sizes.iter().sum::<f64>() / sizes.len() as f64
        )
        .unwrap();
    }
    Rendered {
        text,
        tables: vec![("static", static_table), ("dynamic", dynamic_table)],
    }
}

/// Figure 10: cumulative dynamic reuse of the top static computations.
pub fn fig10() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig10",
        output: "fig10_distribution",
        title: "Figure 10 — cumulative reuse of the top static computations",
        workloads: &NAMES,
        scenarios: vec![Scenario::new(
            "paper",
            InputSet::Train,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        )],
        potential: false,
        render: render_fig10,
    }
}

fn render_fig10(res: &SpecResults<'_>) -> Rendered {
    let mut table = Table::new([
        "benchmark",
        "regions",
        "top10%",
        "top20%",
        "top30%",
        "top40%",
    ]);
    for run in res.runs(0) {
        let mut contributions: Vec<u64> = run
            .compiled
            .regions
            .iter()
            .map(|info| {
                run.measurement
                    .ccr
                    .stats
                    .regions
                    .get(&info.id)
                    .map_or(0, |s| s.skipped_instrs)
            })
            .collect();
        contributions.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = contributions.iter().sum();
        let n = contributions.len();
        if total == 0 || n == 0 {
            table.row([
                run.name.to_string(),
                n.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let cum_at = |frac: f64| -> f64 {
            // Fractional static coverage: partial credit for the
            // marginal region keeps tiny region counts meaningful.
            let want = frac * n as f64;
            let full = want.floor() as usize;
            let mut acc: u64 = contributions.iter().take(full).sum();
            let part = want - full as f64;
            if full < n {
                acc += (contributions[full] as f64 * part) as u64;
            }
            acc as f64 / total as f64
        };
        table.row([
            run.name.to_string(),
            n.to_string(),
            pct(cum_at(0.10)),
            pct(cum_at(0.20)),
            pct(cum_at(0.30)),
            pct(cum_at(0.40)),
        ]);
    }

    let mut text = String::new();
    writeln!(
        text,
        "Figure 10 — cumulative dynamic reuse of top static computations"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Paper: top 40% of static computations ≈ 90% of total reuse; \
         129.compress is the notable flat exception."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("distribution", table)],
    }
}

/// Figure 11: training vs reference input speedup (scenario 0 is
/// Train, scenario 1 is Ref).
pub fn fig11() -> ExperimentSpec {
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    let crb = CrbConfig::paper();
    ExperimentSpec {
        name: "fig11",
        output: "fig11_inputs",
        title: "Figure 11 — training vs reference input speedup",
        workloads: &NAMES,
        scenarios: vec![
            Scenario::new("train", InputSet::Train, &region, &machine, crb),
            Scenario::new("ref", InputSet::Ref, &region, &machine, crb),
        ],
        potential: false,
        render: render_fig11,
    }
}

fn render_fig11(res: &SpecResults<'_>) -> Rendered {
    let train_runs = res.runs(0);
    let ref_runs = res.runs(1);

    let mut table = Table::new(["benchmark", "train", "ref", "elim(train)", "elim(ref)"]);
    for (t, r) in train_runs.iter().zip(ref_runs) {
        table.row([
            t.name.to_string(),
            speedup(t.measurement.speedup()),
            speedup(r.measurement.speedup()),
            pct(t.measurement.eliminated_fraction()),
            pct(r.measurement.eliminated_fraction()),
        ]);
    }
    table.row([
        "average".to_string(),
        speedup(mean(train_runs.iter().map(|r| r.measurement.speedup()))),
        speedup(mean(ref_runs.iter().map(|r| r.measurement.speedup()))),
        pct(mean(
            train_runs
                .iter()
                .map(|r| r.measurement.eliminated_fraction()),
        )),
        pct(mean(
            ref_runs.iter().map(|r| r.measurement.eliminated_fraction()),
        )),
    ]);

    let mut text = String::new();
    writeln!(
        text,
        "Figure 11 — training vs reference input (128 entries, 8 CIs)"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Paper: avg 1.26 (train) vs 1.23 (ref); repetition eliminated 40% vs 33%."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("speedup", table)],
    }
}

/// The design-space ablations (DESIGN.md §5): eight sections, each a
/// contiguous slice of scenarios in table-row order. Repeats of the
/// paper configuration are deliberate — the planner collapses them.
pub fn ablations() -> ExperimentSpec {
    let machine = MachineConfig::paper();
    let paper = RegionConfig::paper();
    let mut scenarios = Vec::new();
    // 1. Replacement policy (rows 0-2; LRU is the paper CRB).
    for (label, policy) in [
        ("LRU (paper)", Replacement::Lru),
        ("FIFO", Replacement::Fifo),
        ("random", Replacement::Random),
    ] {
        let crb = CrbConfig {
            replacement: policy,
            ..CrbConfig::paper()
        };
        scenarios.push(Scenario::new(label, InputSet::Train, &paper, &machine, crb));
    }
    // 2. Region granularity (rows 3-4).
    for (label, region) in [
        ("full regions (paper)", paper),
        ("single block only", RegionConfig::block_level()),
    ] {
        scenarios.push(Scenario::new(
            label,
            InputSet::Train,
            &region,
            &machine,
            CrbConfig::paper(),
        ));
    }
    // 3. Memory-dependent regions (rows 5-6).
    for (label, region) in [
        ("SL + MD (paper)", paper),
        ("SL only", RegionConfig::stateless_only()),
    ] {
        scenarios.push(Scenario::new(
            label,
            InputSet::Train,
            &region,
            &machine,
            CrbConfig::paper(),
        ));
    }
    // 4. Reusability threshold R (rows 7-9).
    for r in [0.50, 0.65, 0.80] {
        let region = RegionConfig {
            r_threshold: r,
            rm_threshold: r,
            ..paper
        };
        scenarios.push(Scenario::new(
            format!("R={r:.2}"),
            InputSet::Train,
            &region,
            &machine,
            CrbConfig::paper(),
        ));
    }
    // 5. Reuse-failure penalty (rows 10-13).
    for pen in [0u64, 4, 8, 16] {
        let m = MachineConfig {
            reuse_miss_penalty: pen,
            ..machine
        };
        scenarios.push(Scenario::new(
            format!("penalty={pen}"),
            InputSet::Train,
            &paper,
            &m,
            CrbConfig::paper(),
        ));
    }
    // 6. Function-level reuse (rows 14-15).
    for (label, region) in [
        ("interior only (paper)", paper),
        (
            "interior + function-level",
            RegionConfig::with_function_level(),
        ),
    ] {
        scenarios.push(Scenario::new(
            label,
            InputSet::Train,
            &region,
            &machine,
            CrbConfig::paper(),
        ));
    }
    // 7. Speculative reuse validation (rows 16-17).
    for (label, m) in [
        ("architectural (paper)", machine),
        (
            "value-speculated",
            MachineConfig::with_speculative_validation(),
        ),
    ] {
        scenarios.push(Scenario::new(
            label,
            InputSet::Train,
            &paper,
            &m,
            CrbConfig::paper(),
        ));
    }
    // 8. Nonuniform CRB capacities (rows 18-20).
    scenarios.push(Scenario::new(
        "uniform 128 x 8 (paper)",
        InputSet::Train,
        &paper,
        &machine,
        CrbConfig::paper(),
    ));
    // Same total instance storage, skewed: every 4th entry holds 20,
    // the rest hold 4.
    scenarios.push(Scenario::new(
        "skewed 32 x 20 + 96 x 4",
        InputSet::Train,
        &paper,
        &machine,
        CrbConfig {
            instances: 4,
            nonuniform: Some(NonuniformConfig {
                boost_every: 4,
                boosted_instances: 20,
                mem_capable_percent: 100,
            }),
            ..CrbConfig::paper()
        },
    ));
    // Half the entries without memory-validation hardware.
    scenarios.push(Scenario::new(
        "50% entries memory-capable",
        InputSet::Train,
        &paper,
        &machine,
        CrbConfig {
            nonuniform: Some(NonuniformConfig {
                boost_every: 1,
                boosted_instances: 8,
                mem_capable_percent: 50,
            }),
            ..CrbConfig::paper()
        },
    ));
    ExperimentSpec {
        name: "ablations",
        output: "ablations",
        title: "Design-space ablations (DESIGN.md §5)",
        workloads: &NAMES,
        scenarios,
        potential: false,
        render: render_ablations,
    }
}

fn render_ablations(res: &SpecResults<'_>) -> Rendered {
    let avg = |sc: usize| -> f64 { mean(res.runs(sc).iter().map(|r| r.measurement.speedup())) };
    let mut text = String::new();
    let mut tables = Vec::new();

    writeln!(text, "Ablation 1 — instance replacement policy (128e/8CI)").unwrap();
    let mut t = Table::new(["policy", "avg speedup"]);
    for (sc, label) in [(0, "LRU (paper)"), (1, "FIFO"), (2, "random")] {
        t.row([label.to_string(), speedup(avg(sc))]);
    }
    writeln!(text, "{t}").unwrap();
    tables.push(("replacement", t));

    writeln!(text, "Ablation 2 — region granularity").unwrap();
    let mut t = Table::new(["granularity", "avg speedup"]);
    t.row(["full regions (paper)".to_string(), speedup(avg(3))]);
    t.row(["single block only".to_string(), speedup(avg(4))]);
    writeln!(text, "{t}").unwrap();
    tables.push(("granularity", t));

    writeln!(text, "Ablation 3 — memory-dependent regions").unwrap();
    let mut t = Table::new(["classes", "avg speedup"]);
    t.row(["SL + MD (paper)".to_string(), speedup(avg(5))]);
    t.row(["SL only".to_string(), speedup(avg(6))]);
    writeln!(text, "{t}").unwrap();
    tables.push(("memory", t));

    writeln!(text, "Ablation 4 — reusability threshold R").unwrap();
    let mut t = Table::new(["R", "avg speedup"]);
    for (sc, r) in [(7, 0.50), (8, 0.65), (9, 0.80)] {
        t.row([
            format!("{r:.2}{}", if r == 0.65 { " (paper)" } else { "" }),
            speedup(avg(sc)),
        ]);
    }
    writeln!(text, "{t}").unwrap();
    tables.push(("threshold", t));

    writeln!(text, "Ablation 5 — reuse-failure penalty").unwrap();
    let mut t = Table::new(["penalty (cycles)", "avg speedup"]);
    for (sc, pen) in [(10, 0u64), (11, 4), (12, 8), (13, 16)] {
        t.row([
            format!("{pen}{}", if pen == 8 { " (paper)" } else { "" }),
            speedup(avg(sc)),
        ]);
    }
    writeln!(text, "{t}").unwrap();
    tables.push(("penalty", t));

    writeln!(
        text,
        "Ablation 6 — function-level reuse (paper §6 future work)"
    )
    .unwrap();
    let mut t = Table::new(["regions", "avg speedup"]);
    t.row(["interior only (paper)".to_string(), speedup(avg(14))]);
    t.row(["interior + function-level".to_string(), speedup(avg(15))]);
    writeln!(text, "{t}").unwrap();
    tables.push(("function_level", t));

    writeln!(
        text,
        "Ablation 7 — speculative reuse validation (paper §6 future work)"
    )
    .unwrap();
    let mut t = Table::new(["validation", "avg speedup"]);
    t.row(["architectural (paper)".to_string(), speedup(avg(16))]);
    t.row(["value-speculated".to_string(), speedup(avg(17))]);
    writeln!(text, "{t}").unwrap();
    tables.push(("speculation", t));

    writeln!(
        text,
        "Ablation 8 — nonuniform CRB capacities (paper §6 future work)"
    )
    .unwrap();
    let mut t = Table::new(["geometry", "storage (CIs)", "avg speedup"]);
    for (sc, label) in [
        (18, "uniform 128 x 8 (paper)"),
        (19, "skewed 32 x 20 + 96 x 4"),
        (20, "50% entries memory-capable"),
    ] {
        t.row([label.to_string(), "1024".to_string(), speedup(avg(sc))]);
    }
    writeln!(text, "{t}").unwrap();
    tables.push(("nonuniform", t));

    Rendered { text, tables }
}

/// The width-sensitivity machine: issue width scales the unit mix,
/// one branch unit throughout (width 6 is exactly the paper machine).
fn machine_of_width(width: u32) -> MachineConfig {
    MachineConfig {
        issue_width: width,
        int_alus: (width * 2 / 3).max(1),
        mem_ports: (width / 3).max(1),
        fp_alus: (width / 3).max(1),
        branch_units: 1,
        ..MachineConfig::paper()
    }
}

const WIDTHS: [u32; 4] = [2, 4, 6, 8];

/// Extension study: CCR speedup vs machine issue width.
pub fn width_sensitivity() -> ExperimentSpec {
    let region = RegionConfig::paper();
    ExperimentSpec {
        name: "width",
        output: "width_sensitivity",
        title: "Extension — CCR speedup vs machine issue width",
        workloads: &NAMES,
        scenarios: WIDTHS
            .into_iter()
            .map(|w| {
                Scenario::new(
                    format!("width={w}"),
                    InputSet::Train,
                    &region,
                    &machine_of_width(w),
                    CrbConfig::paper(),
                )
            })
            .collect(),
        potential: false,
        render: render_width,
    }
}

fn render_width(res: &SpecResults<'_>) -> Rendered {
    let mut table = Table::new(["issue width", "avg speedup", "avg base IPC", "avg CCR IPC"]);
    for (sc, &w) in WIDTHS.iter().enumerate() {
        let runs = res.runs(sc);
        let avg = mean(runs.iter().map(|r| r.measurement.speedup()));
        let base_ipc = mean(runs.iter().map(|r| {
            r.measurement.base.stats.dyn_instrs as f64 / r.measurement.base.stats.cycles as f64
        }));
        let ccr_ipc = mean(runs.iter().map(|r| r.measurement.ccr.stats.effective_ipc()));
        table.row([
            format!("{w}{}", if w == 6 { " (paper)" } else { "" }),
            speedup(avg),
            format!("{base_ipc:.2}"),
            format!("{ccr_ipc:.2}"),
        ]);
    }

    let mut text = String::new();
    writeln!(
        text,
        "Width sensitivity — CCR speedup vs machine issue width"
    )
    .unwrap();
    writeln!(text, "{table}").unwrap();
    writeln!(
        text,
        "Two regimes: on narrow machines reuse frees scarce issue slots \
         (bandwidth); on wide machines it breaks dependence chains (latency). \
         Base IPC saturating with width shows where one regime hands off to \
         the other."
    )
    .unwrap();
    Rendered {
        text,
        tables: vec![("width", table)],
    }
}

//! Declarative experiment engine: specs, a deduplicating sweep
//! planner, and a parallel executor.
//!
//! The paper's evaluation is a family of *sweeps*: run the benchmark
//! suite under a set of configurations that differ along one axis
//! (CRB instances, CRB entries, input set, machine width, a formation
//! knob) and render tables from the measurements. Historically each
//! figure was a hand-rolled binary that re-implemented the sweep loop
//! — and re-simulated (workload, config) points other figures had
//! already run. This module replaces that with three layers:
//!
//! 1. **Specs** ([`ExperimentSpec`], registry in [`specs`]): a named
//!    experiment is a workload selection, a list of [`Scenario`]s
//!    (input set + region/machine/CRB configuration), and a renderer
//!    that turns measurements into the figure's tables.
//! 2. **Planner** ([`plan`]): expands the selected specs into the
//!    *unique* set of compile and simulation units. Distinct specs
//!    (and repeated scenarios within one spec) that need the same
//!    (workload, region-config) pair compile it once; the same full
//!    (workload, region, machine, CRB) point simulates once. Units
//!    are keyed by FNV-1a hashes of the canonical config field
//!    enumerations ([`ccr_regions::RegionConfig::fields`],
//!    [`ccr_sim::MachineConfig::fields`],
//!    [`ccr_sim::CrbConfig::fields`]) and the PR-2
//!    [`ccr_core::config_hash`]. Baseline simulations do not depend
//!    on the region configuration at all (the baseline program is the
//!    optimized, unannotated build), so they deduplicate even across
//!    scenarios that form different regions.
//! 3. **Executor** ([`execute`]): fans the planned units through the
//!    [`ccr_core::jobs`] pool — compiles and reuse-potential studies
//!    first, then every simulation as an independent work item.
//!
//! **Bit-identity contract:** every rendered table is byte-identical
//! to what the legacy per-figure binary printed. Deduplication only
//! elides *repeats* of deterministic work; each spec's renderer reads
//! the same statistics it always did (`tests/exp_golden.rs` pins this
//! against the committed `results/` tables).

pub mod specs;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ccr_core::compile::{CompileConfig, CompiledWorkload};
use ccr_core::harness::Harness;
use ccr_core::jobs::parallel_map_observed;
use ccr_core::measure::{reuse_potential, Measurement};
use ccr_core::report::Table;
use ccr_core::{config_hash, fnv1a_hex};
use ccr_profile::ReusePotential;
use ccr_regions::RegionConfig;
use ccr_sim::{simulate, simulate_baseline, CrbConfig, MachineConfig, SimOutcome};
use ccr_workloads::InputSet;

use crate::{compile_with, emu_config, SCALE};

/// One configuration a spec wants the workload selection run under.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label (planner log only; renderers carry their
    /// own column headings).
    pub label: String,
    /// Input set the target build uses (profiling is always Train).
    pub input: InputSet,
    /// Workload scale factor.
    pub scale: u32,
    /// Region-formation configuration (with `trial_instances` already
    /// matched to the CRB — see [`Scenario::new`]).
    pub region: RegionConfig,
    /// Simulated machine.
    pub machine: MachineConfig,
    /// Simulated reuse buffer.
    pub crb: CrbConfig,
}

impl Scenario {
    /// Builds a scenario at the default experiment [`SCALE`], matching
    /// the compiler's selection trial to the hardware's instance count
    /// (`region.trial_instances = crb.instances`) exactly as the
    /// legacy `run_suite` harness did.
    pub fn new(
        label: impl Into<String>,
        input: InputSet,
        region: &RegionConfig,
        machine: &MachineConfig,
        crb: CrbConfig,
    ) -> Scenario {
        Scenario {
            label: label.into(),
            input,
            scale: SCALE,
            region: RegionConfig {
                trial_instances: crb.instances,
                ..*region
            },
            machine: *machine,
            crb,
        }
    }

    /// The compile configuration this scenario's workloads build with.
    fn compile_config(&self) -> CompileConfig {
        CompileConfig {
            region: self.region,
            emu: emu_config(),
            ..CompileConfig::paper()
        }
    }

    /// Every knob that identifies this scenario's point, as prefixed
    /// `(field, value)` pairs — the planner's axis detection and the
    /// human side of its dedup keys.
    fn point_fields(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("input".to_string(), input_tag(self.input).to_string()),
            ("scale".to_string(), self.scale.to_string()),
        ];
        for (prefix, fields) in [
            ("region", self.region.fields()),
            ("machine", self.machine.fields()),
            ("crb", self.crb.fields()),
        ] {
            out.extend(
                fields
                    .into_iter()
                    .map(|(n, v)| (format!("{prefix}.{n}"), v)),
            );
        }
        out
    }
}

/// A named, declarative experiment: what to run and how to render it.
pub struct ExperimentSpec {
    /// Short CLI name (`ccr exp fig8a`).
    pub name: &'static str,
    /// Output file stem — also the legacy binary's name, accepted as
    /// a CLI alias (`ccr exp fig8a_instances`).
    pub output: &'static str,
    /// One-line description (`ccr exp --list`).
    pub title: &'static str,
    /// Workload selection, in presentation order.
    pub workloads: &'static [&'static str],
    /// Sweep scenarios, in presentation order. Repeats are fine — the
    /// planner deduplicates; renderers index scenarios positionally.
    pub scenarios: Vec<Scenario>,
    /// Whether the spec also needs the compiler-side reuse-potential
    /// study (Figure 4) for each workload on the Train input.
    pub potential: bool,
    /// Renders measurements into the figure's text and tables.
    pub render: fn(&SpecResults<'_>) -> Rendered,
}

/// A rendered experiment: the exact text the legacy binary printed,
/// plus each table for CSV export.
pub struct Rendered {
    /// Byte-identical stdout of the legacy per-figure binary.
    pub text: String,
    /// Named tables (`<output>.<name>.csv` under `--out`).
    pub tables: Vec<(&'static str, Table)>,
}

/// One workload's measured point within a scenario (the engine's
/// analogue of [`crate::SuiteRun`], with compiles shared via [`Arc`]).
pub struct ExpRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Compile products, shared across every scenario that needs them.
    pub compiled: Arc<CompiledWorkload>,
    /// Baseline vs CCR measurement.
    pub measurement: Measurement,
}

/// Everything one spec's renderer may read: per-scenario runs (in
/// workload order) and, for potential studies, per-workload
/// [`ReusePotential`].
pub struct SpecResults<'a> {
    /// The spec being rendered.
    pub spec: &'a ExperimentSpec,
    scenario_runs: Vec<Vec<ExpRun>>,
    potentials: Vec<ReusePotential>,
}

impl SpecResults<'_> {
    /// The runs of scenario `i`, in `spec.workloads` order.
    pub fn runs(&self, scenario: usize) -> &[ExpRun] {
        &self.scenario_runs[scenario]
    }

    /// Per-workload reuse potential (empty unless `spec.potential`).
    pub fn potentials(&self) -> &[ReusePotential] {
        &self.potentials
    }

    /// Renders the spec from these results.
    pub fn render(&self) -> Rendered {
        (self.spec.render)(self)
    }
}

fn input_tag(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Ref => "ref",
    }
}

fn hash_fields(fields: &[(&'static str, String)]) -> String {
    let mut s = String::new();
    for (n, v) in fields {
        s.push_str(n);
        s.push('=');
        s.push_str(v);
        s.push(';');
    }
    fnv1a_hex(s.as_bytes())
}

/// The key a compile unit deduplicates under: workload, target input,
/// scale, the FNV-1a hash of the region-config field enumeration, and
/// the (constant across specs) optimizer + emulator settings.
pub(crate) fn compile_key(
    name: &str,
    input: InputSet,
    scale: u32,
    config: &CompileConfig,
) -> String {
    format!(
        "{name}|{}|{scale}|r:{}|opt:{:?}|emu:{}/{}",
        input_tag(input),
        hash_fields(&config.region.fields()),
        config.opt,
        config.emu.max_instrs,
        config.emu.max_depth,
    )
}

/// Baseline simulations depend on the optimized program and the
/// machine — not on regions or the CRB — so their key drops the
/// region-config hash entirely.
fn base_sim_key(
    name: &str,
    input: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
) -> String {
    format!(
        "base|{name}|{}|{scale}|opt:{:?}|emu:{}/{}|m:{}",
        input_tag(input),
        config.opt,
        config.emu.max_instrs,
        config.emu.max_depth,
        hash_fields(&machine.fields()),
    )
}

/// CCR simulations depend on the compiled (annotated) program plus
/// the full simulated hardware, keyed by the PR-2 FNV-1a
/// [`config_hash`] over machine + CRB.
fn ccr_sim_key(compile_key: &str, machine: &MachineConfig, crb: &CrbConfig) -> String {
    format!("ccr|{compile_key}|cfg:{}", config_hash(machine, crb))
}

fn potential_key(name: &str, input: InputSet, scale: u32) -> String {
    format!("pot|{name}|{}|{scale}", input_tag(input))
}

struct CompileUnit {
    name: &'static str,
    input: InputSet,
    scale: u32,
    config: CompileConfig,
    key: String,
}

struct BaseUnit {
    name: &'static str,
    machine: MachineConfig,
    /// Any compile unit whose `base` program this sim runs (every
    /// region config yields the same optimized baseline).
    compile_key: String,
    key: String,
}

struct CcrUnit {
    name: &'static str,
    input: InputSet,
    scale: u32,
    machine: MachineConfig,
    crb: CrbConfig,
    compile_key: String,
    /// Key of the baseline sim this point pairs with (for summaries).
    base_key: String,
    key: String,
}

struct PotentialUnit {
    name: &'static str,
    input: InputSet,
    scale: u32,
    key: String,
}

/// What the planner decided to run: the deduplicated unit lists plus
/// accounting for the log.
pub struct Plan<'s> {
    specs: Vec<&'s ExperimentSpec>,
    compiles: Vec<CompileUnit>,
    bases: Vec<BaseUnit>,
    ccrs: Vec<CcrUnit>,
    potentials: Vec<PotentialUnit>,
    /// Dedup accounting and per-spec axis summaries.
    pub stats: PlanStats,
}

/// Planner accounting: how much work the specs requested vs how much
/// survives deduplication.
#[derive(Clone, Debug, Default)]
pub struct PlanStats {
    /// Number of specs planned.
    pub specs: usize,
    /// (workload, scenario) simulation points requested, duplicates
    /// included.
    pub requested_points: usize,
    /// Compile units after deduplication.
    pub unique_compiles: usize,
    /// Compile requests elided as duplicates.
    pub deduped_compiles: usize,
    /// Simulation runs (baseline + CCR) after deduplication.
    pub unique_sims: usize,
    /// Simulation runs elided as duplicates (a requested point wants
    /// one baseline and one CCR run; shared baselines and shared full
    /// points both count here).
    pub deduped_sims: usize,
    /// Reuse-potential studies after deduplication.
    pub potential_points: usize,
    /// Per-spec one-line summaries: point count and the config fields
    /// that vary across its scenarios.
    pub axes: Vec<String>,
}

impl PlanStats {
    /// Multi-line human-readable plan log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "experiment plan: {} spec(s), {} requested points -> {} compiles \
             (+{} shared), {} sims (+{} deduplicated), {} potential studies",
            self.specs,
            self.requested_points,
            self.unique_compiles,
            self.deduped_compiles,
            self.unique_sims,
            self.deduped_sims,
            self.potential_points,
        )
        .unwrap();
        for line in &self.axes {
            writeln!(out, "  {line}").unwrap();
        }
        out
    }
}

/// Which config fields vary across a spec's scenarios, as
/// `name ∈ {v1, v2, ...}` clauses.
fn axis_summary(spec: &ExperimentSpec) -> String {
    let points = spec.scenarios.len() * spec.workloads.len();
    let mut clauses: Vec<String> = Vec::new();
    if spec.scenarios.len() > 1 {
        let field_sets: Vec<Vec<(String, String)>> =
            spec.scenarios.iter().map(Scenario::point_fields).collect();
        for (i, (name, _)) in field_sets[0].iter().enumerate() {
            let mut values: Vec<&str> = Vec::new();
            for fields in &field_sets {
                let v = fields[i].1.as_str();
                if !values.contains(&v) {
                    values.push(v);
                }
            }
            if values.len() > 1 {
                clauses.push(format!("{name} in {{{}}}", values.join(", ")));
            }
        }
    }
    let axes = if clauses.is_empty() {
        if spec.potential && spec.scenarios.is_empty() {
            "compiler-side potential study, no simulation axis".to_string()
        } else {
            "single configuration".to_string()
        }
    } else {
        format!("axes: {}", clauses.join(", "))
    };
    format!(
        "{}: {} scenario(s), {} sim point(s); {}",
        spec.output,
        spec.scenarios.len(),
        points,
        axes
    )
}

/// Expands `specs` into deduplicated compile / simulation /
/// potential-study units.
///
/// Unit order is deterministic: first-encounter order over specs in
/// the given order, scenarios in spec order, workloads in selection
/// order.
pub fn plan<'s>(specs: &[&'s ExperimentSpec]) -> Plan<'s> {
    let mut plan = Plan {
        specs: specs.to_vec(),
        compiles: Vec::new(),
        bases: Vec::new(),
        ccrs: Vec::new(),
        potentials: Vec::new(),
        stats: PlanStats {
            specs: specs.len(),
            ..PlanStats::default()
        },
    };
    let mut seen_compiles: HashMap<String, ()> = HashMap::new();
    let mut seen_sims: HashMap<String, ()> = HashMap::new();
    let mut seen_potentials: HashMap<String, ()> = HashMap::new();
    for spec in specs {
        plan.stats.axes.push(axis_summary(spec));
        for sc in &spec.scenarios {
            let config = sc.compile_config();
            for &name in spec.workloads {
                plan.stats.requested_points += 1;
                let ck = compile_key(name, sc.input, sc.scale, &config);
                if seen_compiles.insert(ck.clone(), ()).is_none() {
                    plan.compiles.push(CompileUnit {
                        name,
                        input: sc.input,
                        scale: sc.scale,
                        config,
                        key: ck.clone(),
                    });
                } else {
                    plan.stats.deduped_compiles += 1;
                }
                let bk = base_sim_key(name, sc.input, sc.scale, &config, &sc.machine);
                if seen_sims.insert(bk.clone(), ()).is_none() {
                    plan.bases.push(BaseUnit {
                        name,
                        machine: sc.machine,
                        compile_key: ck.clone(),
                        key: bk.clone(),
                    });
                } else {
                    plan.stats.deduped_sims += 1;
                }
                let sk = ccr_sim_key(&ck, &sc.machine, &sc.crb);
                if seen_sims.insert(sk.clone(), ()).is_none() {
                    plan.ccrs.push(CcrUnit {
                        name,
                        input: sc.input,
                        scale: sc.scale,
                        machine: sc.machine,
                        crb: sc.crb,
                        compile_key: ck,
                        base_key: bk,
                        key: sk,
                    });
                } else {
                    plan.stats.deduped_sims += 1;
                }
            }
        }
        if spec.potential {
            for &name in spec.workloads {
                let pk = potential_key(name, InputSet::Train, SCALE);
                if seen_potentials.insert(pk.clone(), ()).is_none() {
                    plan.potentials.push(PotentialUnit {
                        name,
                        input: InputSet::Train,
                        scale: SCALE,
                        key: pk,
                    });
                }
            }
        }
    }
    plan.stats.unique_compiles = plan.compiles.len();
    plan.stats.unique_sims = plan.bases.len() + plan.ccrs.len();
    plan.stats.potential_points = plan.potentials.len();
    plan
}

/// A shared compile memo keyed by (workload, target input, scale,
/// region-config hash): the fix for sweeps that vary only the CRB
/// geometry recompiling an identical program per configuration.
///
/// Thread-safe. Concurrent misses on the same key may compile twice
/// (both produce identical artifacts and the first insert wins); the
/// experiment planner pre-deduplicates its units, so the engine never
/// does, and [`crate::run_selected_cached`] only shares across
/// sequential calls.
#[derive(Default)]
pub struct CompileCache {
    map: Mutex<HashMap<String, Arc<CompiledWorkload>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Lookups that returned a previously compiled workload.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the cached compile of `(name, target, scale, config)`,
    /// compiling and memoizing on first use.
    ///
    /// # Errors
    ///
    /// Returns the compile error (unknown benchmark, emulator limit
    /// breach) without caching it.
    pub fn get_or_compile(
        &self,
        name: &str,
        target: InputSet,
        scale: u32,
        config: &CompileConfig,
    ) -> Result<Arc<CompiledWorkload>, String> {
        let key = compile_key(name, target, scale, config);
        if let Some(hit) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile_with(name, target, scale, config)?);
        Ok(Arc::clone(
            self.map
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert(compiled),
        ))
    }
}

/// Executed results, keyed for assembly into per-spec views.
pub struct Executed<'s> {
    specs: Vec<&'s ExperimentSpec>,
    compiles: HashMap<String, Arc<CompiledWorkload>>,
    bases: HashMap<String, SimOutcome>,
    ccrs: HashMap<String, SimOutcome>,
    potentials: HashMap<String, ReusePotential>,
    /// Host wall time per simulation unit key (base and CCR alike).
    sim_wall_ms: HashMap<String, u64>,
    /// One entry per unique executed CCR point, in plan order.
    points: Vec<PointMeta>,
    /// Compile-cache (hits, misses) for the run (satellite of the
    /// observability PR: counted since PR 5, now surfaced).
    cache: (u64, u64),
}

/// Identity of one unique CCR sweep point, kept by the executor so
/// summaries can pair each CCR sim with its baseline and compile.
struct PointMeta {
    name: &'static str,
    input: InputSet,
    scale: u32,
    config_hash: String,
    compile_key: String,
    base_key: String,
    ccr_key: String,
}

/// One unique executed CCR sweep point flattened to the fields the
/// cross-run store records: the simulated outcome (cycles, speedup,
/// hit rate, miss-cause mix, regions) plus host-side cost (wall time
/// of the base + CCR sims for the point).
///
/// This is a plain value type on purpose: `ccr-bench` does not depend
/// on `ccr-analyze`, so the CLI converts these into store records.
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// Workload name.
    pub workload: &'static str,
    /// Input-set tag (`"train"` / `"ref"`).
    pub input: &'static str,
    /// Workload scale factor.
    pub scale: u32,
    /// [`ccr_core::config_hash`] of the point's machine + CRB.
    pub config_hash: String,
    /// Baseline simulated cycles.
    pub base_cycles: u64,
    /// CCR simulated cycles.
    pub ccr_cycles: u64,
    /// Baseline cycles over CCR cycles.
    pub speedup: f64,
    /// Reuse hits over reuse lookups (0.0 when no lookups ran).
    pub hit_rate: f64,
    /// Miss-cause counters in `ccr_analyze::MISS_CAUSES` order:
    /// cold, mismatch, capacity, conflict, invalidated.
    pub miss_causes: [u64; 5],
    /// Regions the compiler formed for the point.
    pub regions: u64,
    /// Host wall time of the point's base + CCR simulations. Baseline
    /// sims are shared across CRB configs, so a shared base's wall
    /// time is attributed to every point that reads it.
    pub wall_ms: u64,
}

/// Runs a plan's units over `jobs` workers: compiles and potential
/// studies first (a simulation needs its compile), then every
/// simulation as an independent work item.
///
/// Equivalent to [`execute_observed`] with a disabled harness.
///
/// # Errors
///
/// Returns the first failing unit's error (unknown workload or
/// emulator limit breach), in unit order.
pub fn execute<'s>(plan: &Plan<'s>, jobs: usize) -> Result<Executed<'s>, String> {
    execute_observed(plan, jobs, &Harness::disabled())
}

/// [`execute`] with host-side observability: every unit runs under a
/// stable task label (`compile:`/`potential:`/`sim:base:`/`sim:ccr:`
/// × workload × config hash), the job pool reports per-worker
/// busy/idle accounting to `harness`, and start/finish/cache events
/// land in `harness.jsonl`.
///
/// The harness only observes (clocks, atomics, stderr, the event
/// file): results are bit-identical to [`execute`] with the harness
/// disabled — `tests/harness_observability.rs` pins this.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_observed<'s>(
    plan: &Plan<'s>,
    jobs: usize,
    harness: &Harness,
) -> Result<Executed<'s>, String> {
    enum Prep<'a> {
        Compile(&'a CompileUnit),
        Potential(&'a PotentialUnit),
    }
    enum PrepOut {
        Compile(String, Arc<CompiledWorkload>),
        Potential(String, ReusePotential),
    }
    impl Prep<'_> {
        fn label(&self) -> String {
            match self {
                Prep::Compile(u) => format!(
                    "compile:{}:{}@r{}",
                    u.name,
                    input_tag(u.input),
                    &hash_fields(&u.config.region.fields())[..8],
                ),
                Prep::Potential(u) => format!("potential:{}:{}", u.name, input_tag(u.input)),
            }
        }
        fn phase(&self) -> &'static str {
            match self {
                Prep::Compile(_) => "compile",
                Prep::Potential(_) => "potential",
            }
        }
    }
    harness.plan(
        (plan.compiles.len() + plan.potentials.len()) as u64,
        (plan.bases.len() + plan.ccrs.len()) as u64,
        &[
            ("specs", plan.stats.specs as u64),
            ("requested_points", plan.stats.requested_points as u64),
            ("deduped_compiles", plan.stats.deduped_compiles as u64),
            ("deduped_sims", plan.stats.deduped_sims as u64),
            ("jobs", jobs as u64),
        ],
    );
    let cache = CompileCache::new();
    let prep_items: Vec<Prep<'_>> = plan
        .compiles
        .iter()
        .map(Prep::Compile)
        .chain(plan.potentials.iter().map(Prep::Potential))
        .collect();
    let prep_labels: Vec<String> = prep_items.iter().map(Prep::label).collect();
    let (prep, prep_pool) = parallel_map_observed(
        &prep_items,
        jobs,
        Some(&prep_labels),
        harness.observer(),
        |i, item| {
            harness.task_start(item.phase(), &prep_labels[i]);
            let start = std::time::Instant::now();
            let out = match item {
                Prep::Compile(u) => cache
                    .get_or_compile(u.name, u.input, u.scale, &u.config)
                    .map(|cw| PrepOut::Compile(u.key.clone(), cw)),
                Prep::Potential(u) => {
                    let program = ccr_workloads::build(u.name, u.input, u.scale)
                        .ok_or_else(|| format!("unknown benchmark `{}`", u.name))?;
                    reuse_potential(&program, emu_config())
                        .map(|p| PrepOut::Potential(u.key.clone(), p))
                        .map_err(|e| format!("{}: {e}", u.name))
                }
            };
            if out.is_ok() {
                let wall_ms = start.elapsed().as_millis() as u64;
                harness.task_finish(item.phase(), &prep_labels[i], wall_ms, None);
            }
            out
        },
    );
    harness.pool("prep", &prep_pool);
    harness.compile_cache(cache.hits(), cache.misses());
    let mut executed = Executed {
        specs: plan.specs.clone(),
        compiles: HashMap::new(),
        bases: HashMap::new(),
        ccrs: HashMap::new(),
        potentials: HashMap::new(),
        sim_wall_ms: HashMap::new(),
        points: plan
            .ccrs
            .iter()
            .map(|u| PointMeta {
                name: u.name,
                input: u.input,
                scale: u.scale,
                config_hash: config_hash(&u.machine, &u.crb),
                compile_key: u.compile_key.clone(),
                base_key: u.base_key.clone(),
                ccr_key: u.key.clone(),
            })
            .collect(),
        cache: (cache.hits(), cache.misses()),
    };
    for out in prep {
        match out? {
            PrepOut::Compile(key, cw) => {
                executed.compiles.insert(key, cw);
            }
            PrepOut::Potential(key, p) => {
                executed.potentials.insert(key, p);
            }
        }
    }

    enum Sim<'a> {
        Base(&'a BaseUnit, Arc<CompiledWorkload>),
        Ccr(&'a CcrUnit, Arc<CompiledWorkload>),
    }
    let sim_items: Vec<Sim<'_>> = plan
        .bases
        .iter()
        .map(|u| Sim::Base(u, Arc::clone(&executed.compiles[&u.compile_key])))
        .chain(
            plan.ccrs
                .iter()
                .map(|u| Sim::Ccr(u, Arc::clone(&executed.compiles[&u.compile_key]))),
        )
        .collect();
    let sim_labels: Vec<String> = sim_items
        .iter()
        .map(|item| match item {
            Sim::Base(u, _) => format!(
                "sim:base:{}:m{}",
                u.name,
                &hash_fields(&u.machine.fields())[..8]
            ),
            Sim::Ccr(u, _) => format!("sim:ccr:{}:{}", u.name, config_hash(&u.machine, &u.crb)),
        })
        .collect();
    let (sims, sim_pool) = parallel_map_observed(
        &sim_items,
        jobs,
        Some(&sim_labels),
        harness.observer(),
        |i, item| {
            harness.task_start("sim", &sim_labels[i]);
            let start = std::time::Instant::now();
            let out = match item {
                Sim::Base(u, cw) => simulate_baseline(&cw.base, &u.machine, emu_config())
                    .map(|o| (u.key.clone(), true, o))
                    .map_err(|e| format!("{}: {e}", u.name)),
                Sim::Ccr(u, cw) => simulate(&cw.annotated, &u.machine, Some(u.crb), emu_config())
                    .map(|o| (u.key.clone(), false, o))
                    .map_err(|e| format!("{}: {e}", u.name)),
            };
            let out =
                out.map(|(key, is_base, o)| (key, is_base, o, start.elapsed().as_millis() as u64));
            if let Ok((_, _, outcome, wall_ms)) = &out {
                harness.task_finish("sim", &sim_labels[i], *wall_ms, Some(outcome.stats.cycles));
            }
            out
        },
    );
    harness.pool("sim", &sim_pool);
    for out in sims {
        let (key, is_base, outcome, wall_ms) = out?;
        executed.sim_wall_ms.insert(key.clone(), wall_ms);
        if is_base {
            executed.bases.insert(key, outcome);
        } else {
            executed.ccrs.insert(key, outcome);
        }
    }
    Ok(executed)
}

impl<'s> Executed<'s> {
    /// Compile-cache `(hits, misses)` for the run — the PR-5 counters,
    /// surfaced so the CLI can print them and the harness can log
    /// them.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
    }

    /// Flattens every unique executed CCR point into a
    /// [`PointSummary`], in plan (first-encounter) order — the hook
    /// the CLI uses to append an `ccr exp` invocation's measurements
    /// to the cross-run store.
    pub fn point_summaries(&self) -> Vec<PointSummary> {
        self.points
            .iter()
            .map(|p| {
                let base = &self.bases[&p.base_key];
                let ccr = &self.ccrs[&p.ccr_key];
                let crb = &ccr.stats.crb;
                let lookups = ccr.stats.reuse_hits + ccr.stats.reuse_misses;
                PointSummary {
                    workload: p.name,
                    input: input_tag(p.input),
                    scale: p.scale,
                    config_hash: p.config_hash.clone(),
                    base_cycles: base.stats.cycles,
                    ccr_cycles: ccr.stats.cycles,
                    speedup: ccr.speedup_over(base.stats.cycles),
                    hit_rate: if lookups == 0 {
                        0.0
                    } else {
                        ccr.stats.reuse_hits as f64 / lookups as f64
                    },
                    miss_causes: [
                        crb.miss_cold,
                        crb.miss_mismatch,
                        crb.miss_capacity,
                        crb.miss_conflict,
                        crb.miss_invalidated,
                    ],
                    regions: self.compiles[&p.compile_key].regions.len() as u64,
                    wall_ms: self.sim_wall_ms.get(&p.base_key).copied().unwrap_or(0)
                        + self.sim_wall_ms.get(&p.ccr_key).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Assembles one planned spec's results for rendering.
    ///
    /// # Panics
    ///
    /// Panics if `spec` was not part of the executed plan, or if any
    /// point's baseline and CCR runs disagree architecturally (reuse
    /// must never change program semantics).
    pub fn results(&self, spec: &'s ExperimentSpec) -> SpecResults<'s> {
        assert!(
            self.specs.iter().any(|s| std::ptr::eq(*s, spec)),
            "spec `{}` was not part of the executed plan",
            spec.name
        );
        let mut scenario_runs = Vec::with_capacity(spec.scenarios.len());
        for sc in &spec.scenarios {
            let config = sc.compile_config();
            let mut runs = Vec::with_capacity(spec.workloads.len());
            for &name in spec.workloads {
                let ck = compile_key(name, sc.input, sc.scale, &config);
                let compiled = Arc::clone(&self.compiles[&ck]);
                let base = self.bases
                    [&base_sim_key(name, sc.input, sc.scale, &config, &sc.machine)]
                    .clone();
                let ccr = self.ccrs[&ccr_sim_key(&ck, &sc.machine, &sc.crb)].clone();
                assert_eq!(
                    base.run.returned, ccr.run.returned,
                    "computation reuse changed architectural results"
                );
                runs.push(ExpRun {
                    name,
                    compiled,
                    measurement: Measurement { base, ccr },
                });
            }
            scenario_runs.push(runs);
        }
        let potentials = if spec.potential {
            spec.workloads
                .iter()
                .map(|&n| self.potentials[&potential_key(n, InputSet::Train, SCALE)])
                .collect()
        } else {
            Vec::new()
        };
        SpecResults {
            spec,
            scenario_runs,
            potentials,
        }
    }
}

/// Entry point for the thin legacy binaries: plans, executes (jobs
/// from `--jobs` / `CCR_JOBS` via [`crate::cli_jobs`]), and prints
/// the named experiment exactly as the original binary did.
///
/// # Panics
///
/// Panics on an unknown experiment name or an execution failure —
/// the experiment binaries treat both as fatal.
pub fn shim_main(name: &str) {
    let spec = specs::find(name)
        .unwrap_or_else(|| panic!("unknown experiment `{name}` (see `ccr exp --list`)"));
    let jobs = crate::cli_jobs();
    let plan = plan(&[&spec]);
    let executed = execute(&plan, jobs).expect("known benchmarks, emulation within limits");
    print!("{}", executed.results(&spec).render().text);
}

//! Declarative experiment engine: specs, a deduplicating sweep
//! planner, and a parallel executor.
//!
//! The paper's evaluation is a family of *sweeps*: run the benchmark
//! suite under a set of configurations that differ along one axis
//! (CRB instances, CRB entries, input set, machine width, a formation
//! knob) and render tables from the measurements. Historically each
//! figure was a hand-rolled binary that re-implemented the sweep loop
//! — and re-simulated (workload, config) points other figures had
//! already run. This module replaces that with three layers:
//!
//! 1. **Specs** ([`ExperimentSpec`], registry in [`specs`]): a named
//!    experiment is a workload selection, a list of [`Scenario`]s
//!    (input set + region/machine/CRB configuration), and a renderer
//!    that turns measurements into the figure's tables.
//! 2. **Planner** ([`plan`]): expands the selected specs into the
//!    *unique* set of compile and simulation units. Distinct specs
//!    (and repeated scenarios within one spec) that need the same
//!    (workload, region-config) pair compile it once; the same full
//!    (workload, region, machine, CRB) point simulates once. Units
//!    are keyed by FNV-1a hashes of the canonical config field
//!    enumerations ([`ccr_regions::RegionConfig::fields`],
//!    [`ccr_sim::MachineConfig::fields`],
//!    [`ccr_sim::CrbConfig::fields`]) and the PR-2
//!    [`ccr_core::config_hash`]. Baseline simulations do not depend
//!    on the region configuration at all (the baseline program is the
//!    optimized, unannotated build), so they deduplicate even across
//!    scenarios that form different regions.
//! 3. **Executor** ([`execute`]): fans the planned units through the
//!    [`ccr_core::jobs`] pool — compiles and reuse-potential studies
//!    first, then every simulation as an independent work item.
//!
//! **Bit-identity contract:** every rendered table is byte-identical
//! to what the legacy per-figure binary printed. Deduplication only
//! elides *repeats* of deterministic work; each spec's renderer reads
//! the same statistics it always did (`tests/exp_golden.rs` pins this
//! against the committed `results/` tables).
//!
//! **Resumable sweeps** ([`execute_resumable`]): with a checkpoint
//! path, every finished simulation unit is appended to a line-tolerant
//! `{"ckpt_v":1,...}` JSONL file as it completes, and a later run of
//! the same plan restores those units instead of re-simulating them.
//! Units are keyed by the planner's dedup keys — which embed the
//! workload, input, scale, emulator limits, and the config-field
//! hashes — so a stale checkpoint from a different sweep simply never
//! matches. A torn final line (crashed run) fails to parse and is
//! silently re-simulated. With a fingerprint window, every CCR
//! simulation additionally runs through [`ccr_sim::SimSession`]
//! (bit-identical to [`simulate`]) and reports its final determinism-
//! fingerprint chain hash in [`PointSummary::fingerprint`].

pub mod specs;

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ccr_core::compile::{CompileConfig, CompiledWorkload};
use ccr_core::harness::Harness;
use ccr_core::measure::Measurement;
use ccr_core::report::Table;
use ccr_core::telemetry::value::{self, Value};
use ccr_core::telemetry::JsonWriter;
use ccr_core::{config_hash, fnv1a_hex};
use ccr_profile::{ReusePotential, RunOutcome};
use ccr_regions::RegionConfig;
use ccr_sim::snapshot::{parse_sim_stats, write_sim_stats};
use ccr_sim::{CrbConfig, MachineConfig, SimOutcome};
use ccr_workloads::InputSet;

use crate::{compile_with, emu_config, SCALE};

/// One configuration a spec wants the workload selection run under.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label (planner log only; renderers carry their
    /// own column headings).
    pub label: String,
    /// Input set the target build uses (profiling is always Train).
    pub input: InputSet,
    /// Workload scale factor.
    pub scale: u32,
    /// Region-formation configuration (with `trial_instances` already
    /// matched to the CRB — see [`Scenario::new`]).
    pub region: RegionConfig,
    /// Simulated machine.
    pub machine: MachineConfig,
    /// Simulated reuse buffer.
    pub crb: CrbConfig,
}

impl Scenario {
    /// Builds a scenario at the default experiment [`SCALE`], matching
    /// the compiler's selection trial to the hardware's instance count
    /// (`region.trial_instances = crb.instances`) exactly as the
    /// legacy `run_suite` harness did.
    pub fn new(
        label: impl Into<String>,
        input: InputSet,
        region: &RegionConfig,
        machine: &MachineConfig,
        crb: CrbConfig,
    ) -> Scenario {
        Scenario {
            label: label.into(),
            input,
            scale: SCALE,
            region: RegionConfig {
                trial_instances: crb.instances,
                ..*region
            },
            machine: *machine,
            crb,
        }
    }

    /// The compile configuration this scenario's workloads build with.
    fn compile_config(&self) -> CompileConfig {
        CompileConfig {
            region: self.region,
            emu: emu_config(),
            ..CompileConfig::paper()
        }
    }

    /// Every knob that identifies this scenario's point, as prefixed
    /// `(field, value)` pairs — the planner's axis detection and the
    /// human side of its dedup keys.
    fn point_fields(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("input".to_string(), input_tag(self.input).to_string()),
            ("scale".to_string(), self.scale.to_string()),
        ];
        for (prefix, fields) in [
            ("region", self.region.fields()),
            ("machine", self.machine.fields()),
            ("crb", self.crb.fields()),
        ] {
            out.extend(
                fields
                    .into_iter()
                    .map(|(n, v)| (format!("{prefix}.{n}"), v)),
            );
        }
        out
    }
}

/// A named, declarative experiment: what to run and how to render it.
pub struct ExperimentSpec {
    /// Short CLI name (`ccr exp fig8a`).
    pub name: &'static str,
    /// Output file stem — also the legacy binary's name, accepted as
    /// a CLI alias (`ccr exp fig8a_instances`).
    pub output: &'static str,
    /// One-line description (`ccr exp --list`).
    pub title: &'static str,
    /// Workload selection, in presentation order.
    pub workloads: &'static [&'static str],
    /// Sweep scenarios, in presentation order. Repeats are fine — the
    /// planner deduplicates; renderers index scenarios positionally.
    pub scenarios: Vec<Scenario>,
    /// Whether the spec also needs the compiler-side reuse-potential
    /// study (Figure 4) for each workload on the Train input.
    pub potential: bool,
    /// Renders measurements into the figure's text and tables.
    pub render: fn(&SpecResults<'_>) -> Rendered,
}

/// A rendered experiment: the exact text the legacy binary printed,
/// plus each table for CSV export.
pub struct Rendered {
    /// Byte-identical stdout of the legacy per-figure binary.
    pub text: String,
    /// Named tables (`<output>.<name>.csv` under `--out`).
    pub tables: Vec<(&'static str, Table)>,
}

/// One workload's measured point within a scenario (the engine's
/// analogue of [`crate::SuiteRun`], with compiles shared via [`Arc`]).
pub struct ExpRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Compile products, shared across every scenario that needs them.
    pub compiled: Arc<CompiledWorkload>,
    /// Baseline vs CCR measurement.
    pub measurement: Measurement,
}

/// Everything one spec's renderer may read: per-scenario runs (in
/// workload order) and, for potential studies, per-workload
/// [`ReusePotential`].
pub struct SpecResults<'a> {
    /// The spec being rendered.
    pub spec: &'a ExperimentSpec,
    scenario_runs: Vec<Vec<ExpRun>>,
    potentials: Vec<ReusePotential>,
}

impl SpecResults<'_> {
    /// The runs of scenario `i`, in `spec.workloads` order.
    pub fn runs(&self, scenario: usize) -> &[ExpRun] {
        &self.scenario_runs[scenario]
    }

    /// Per-workload reuse potential (empty unless `spec.potential`).
    pub fn potentials(&self) -> &[ReusePotential] {
        &self.potentials
    }

    /// Renders the spec from these results.
    pub fn render(&self) -> Rendered {
        (self.spec.render)(self)
    }
}

pub(crate) fn input_tag(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Ref => "ref",
    }
}

pub(crate) fn hash_fields(fields: &[(&'static str, String)]) -> String {
    let mut s = String::new();
    for (n, v) in fields {
        s.push_str(n);
        s.push('=');
        s.push_str(v);
        s.push(';');
    }
    fnv1a_hex(s.as_bytes())
}

/// The key a compile unit deduplicates under: workload, target input,
/// scale, the FNV-1a hash of the region-config field enumeration, and
/// the (constant across specs) optimizer + emulator settings.
pub(crate) fn compile_key(
    name: &str,
    input: InputSet,
    scale: u32,
    config: &CompileConfig,
) -> String {
    format!(
        "{name}|{}|{scale}|r:{}|opt:{:?}|emu:{}/{}",
        input_tag(input),
        hash_fields(&config.region.fields()),
        config.opt,
        config.emu.max_instrs,
        config.emu.max_depth,
    )
}

/// Baseline simulations depend on the optimized program and the
/// machine — not on regions or the CRB — so their key drops the
/// region-config hash entirely.
pub(crate) fn base_sim_key(
    name: &str,
    input: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
) -> String {
    format!(
        "base|{name}|{}|{scale}|opt:{:?}|emu:{}/{}|m:{}",
        input_tag(input),
        config.opt,
        config.emu.max_instrs,
        config.emu.max_depth,
        hash_fields(&machine.fields()),
    )
}

/// CCR simulations depend on the compiled (annotated) program plus
/// the full simulated hardware, keyed by the PR-2 FNV-1a
/// [`config_hash`] over machine + CRB.
pub(crate) fn ccr_sim_key(compile_key: &str, machine: &MachineConfig, crb: &CrbConfig) -> String {
    format!("ccr|{compile_key}|cfg:{}", config_hash(machine, crb))
}

fn potential_key(name: &str, input: InputSet, scale: u32) -> String {
    format!("pot|{name}|{}|{scale}", input_tag(input))
}

pub(crate) struct CompileUnit {
    pub(crate) name: &'static str,
    pub(crate) input: InputSet,
    pub(crate) scale: u32,
    pub(crate) config: CompileConfig,
    pub(crate) key: String,
}

pub(crate) struct BaseUnit {
    pub(crate) name: &'static str,
    pub(crate) machine: MachineConfig,
    /// Any compile unit whose `base` program this sim runs (every
    /// region config yields the same optimized baseline).
    pub(crate) compile_key: String,
    pub(crate) key: String,
}

pub(crate) struct CcrUnit {
    pub(crate) name: &'static str,
    pub(crate) input: InputSet,
    pub(crate) scale: u32,
    pub(crate) machine: MachineConfig,
    pub(crate) crb: CrbConfig,
    pub(crate) compile_key: String,
    /// Key of the baseline sim this point pairs with (for summaries).
    pub(crate) base_key: String,
    pub(crate) key: String,
}

pub(crate) struct PotentialUnit {
    pub(crate) name: &'static str,
    pub(crate) input: InputSet,
    pub(crate) scale: u32,
    pub(crate) key: String,
}

/// What the planner decided to run: the deduplicated unit lists plus
/// accounting for the log.
pub struct Plan<'s> {
    pub(crate) specs: Vec<&'s ExperimentSpec>,
    pub(crate) compiles: Vec<CompileUnit>,
    pub(crate) bases: Vec<BaseUnit>,
    pub(crate) ccrs: Vec<CcrUnit>,
    pub(crate) potentials: Vec<PotentialUnit>,
    /// Dedup accounting and per-spec axis summaries.
    pub stats: PlanStats,
}

/// Planner accounting: how much work the specs requested vs how much
/// survives deduplication.
#[derive(Clone, Debug, Default)]
pub struct PlanStats {
    /// Number of specs planned.
    pub specs: usize,
    /// (workload, scenario) simulation points requested, duplicates
    /// included.
    pub requested_points: usize,
    /// Compile units after deduplication.
    pub unique_compiles: usize,
    /// Compile requests elided as duplicates.
    pub deduped_compiles: usize,
    /// Simulation runs (baseline + CCR) after deduplication.
    pub unique_sims: usize,
    /// Simulation runs elided as duplicates (a requested point wants
    /// one baseline and one CCR run; shared baselines and shared full
    /// points both count here).
    pub deduped_sims: usize,
    /// Reuse-potential studies after deduplication.
    pub potential_points: usize,
    /// Per-spec one-line summaries: point count and the config fields
    /// that vary across its scenarios.
    pub axes: Vec<String>,
}

impl PlanStats {
    /// Multi-line human-readable plan log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "experiment plan: {} spec(s), {} requested points -> {} compiles \
             (+{} shared), {} sims (+{} deduplicated), {} potential studies",
            self.specs,
            self.requested_points,
            self.unique_compiles,
            self.deduped_compiles,
            self.unique_sims,
            self.deduped_sims,
            self.potential_points,
        )
        .unwrap();
        for line in &self.axes {
            writeln!(out, "  {line}").unwrap();
        }
        out
    }
}

/// Which config fields vary across a spec's scenarios, as
/// `name ∈ {v1, v2, ...}` clauses.
fn axis_summary(spec: &ExperimentSpec) -> String {
    let points = spec.scenarios.len() * spec.workloads.len();
    let mut clauses: Vec<String> = Vec::new();
    if spec.scenarios.len() > 1 {
        let field_sets: Vec<Vec<(String, String)>> =
            spec.scenarios.iter().map(Scenario::point_fields).collect();
        for (i, (name, _)) in field_sets[0].iter().enumerate() {
            let mut values: Vec<&str> = Vec::new();
            for fields in &field_sets {
                let v = fields[i].1.as_str();
                if !values.contains(&v) {
                    values.push(v);
                }
            }
            if values.len() > 1 {
                clauses.push(format!("{name} in {{{}}}", values.join(", ")));
            }
        }
    }
    let axes = if clauses.is_empty() {
        if spec.potential && spec.scenarios.is_empty() {
            "compiler-side potential study, no simulation axis".to_string()
        } else {
            "single configuration".to_string()
        }
    } else {
        format!("axes: {}", clauses.join(", "))
    };
    format!(
        "{}: {} scenario(s), {} sim point(s); {}",
        spec.output,
        spec.scenarios.len(),
        points,
        axes
    )
}

/// Expands `specs` into deduplicated compile / simulation /
/// potential-study units.
///
/// Unit order is deterministic: first-encounter order over specs in
/// the given order, scenarios in spec order, workloads in selection
/// order.
pub fn plan<'s>(specs: &[&'s ExperimentSpec]) -> Plan<'s> {
    let mut plan = Plan {
        specs: specs.to_vec(),
        compiles: Vec::new(),
        bases: Vec::new(),
        ccrs: Vec::new(),
        potentials: Vec::new(),
        stats: PlanStats {
            specs: specs.len(),
            ..PlanStats::default()
        },
    };
    let mut seen_compiles: HashMap<String, ()> = HashMap::new();
    let mut seen_sims: HashMap<String, ()> = HashMap::new();
    let mut seen_potentials: HashMap<String, ()> = HashMap::new();
    for spec in specs {
        plan.stats.axes.push(axis_summary(spec));
        for sc in &spec.scenarios {
            let config = sc.compile_config();
            for &name in spec.workloads {
                plan.stats.requested_points += 1;
                let ck = compile_key(name, sc.input, sc.scale, &config);
                if seen_compiles.insert(ck.clone(), ()).is_none() {
                    plan.compiles.push(CompileUnit {
                        name,
                        input: sc.input,
                        scale: sc.scale,
                        config,
                        key: ck.clone(),
                    });
                } else {
                    plan.stats.deduped_compiles += 1;
                }
                let bk = base_sim_key(name, sc.input, sc.scale, &config, &sc.machine);
                if seen_sims.insert(bk.clone(), ()).is_none() {
                    plan.bases.push(BaseUnit {
                        name,
                        machine: sc.machine,
                        compile_key: ck.clone(),
                        key: bk.clone(),
                    });
                } else {
                    plan.stats.deduped_sims += 1;
                }
                let sk = ccr_sim_key(&ck, &sc.machine, &sc.crb);
                if seen_sims.insert(sk.clone(), ()).is_none() {
                    plan.ccrs.push(CcrUnit {
                        name,
                        input: sc.input,
                        scale: sc.scale,
                        machine: sc.machine,
                        crb: sc.crb,
                        compile_key: ck,
                        base_key: bk,
                        key: sk,
                    });
                } else {
                    plan.stats.deduped_sims += 1;
                }
            }
        }
        if spec.potential {
            for &name in spec.workloads {
                let pk = potential_key(name, InputSet::Train, SCALE);
                if seen_potentials.insert(pk.clone(), ()).is_none() {
                    plan.potentials.push(PotentialUnit {
                        name,
                        input: InputSet::Train,
                        scale: SCALE,
                        key: pk,
                    });
                }
            }
        }
    }
    plan.stats.unique_compiles = plan.compiles.len();
    plan.stats.unique_sims = plan.bases.len() + plan.ccrs.len();
    plan.stats.potential_points = plan.potentials.len();
    plan
}

/// A shared compile memo keyed by (workload, target input, scale,
/// region-config hash): the fix for sweeps that vary only the CRB
/// geometry recompiling an identical program per configuration.
///
/// Thread-safe and **single-flight**: a concurrent miss on a key
/// another thread is already compiling blocks until that compile
/// lands, then reads it as a hit — so each unique unit compiles
/// exactly once even when [`crate::engine::Engine`] shares one cache
/// across concurrent `ccr serve` requests, and the hit/miss totals
/// stay deterministic. Compile errors are never cached (a blocked
/// waiter retries with its own compile).
#[derive(Default)]
pub struct CompileCache {
    state: Mutex<CompileCacheState>,
    cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct CompileCacheState {
    done: HashMap<String, Arc<CompiledWorkload>>,
    /// Keys some thread is currently compiling.
    pending: HashSet<String>,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Lookups that returned a previously compiled workload.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the cached compile of `(name, target, scale, config)`,
    /// compiling and memoizing on first use.
    ///
    /// # Errors
    ///
    /// Returns the compile error (unknown benchmark, emulator limit
    /// breach) without caching it.
    pub fn get_or_compile(
        &self,
        name: &str,
        target: InputSet,
        scale: u32,
        config: &CompileConfig,
    ) -> Result<Arc<CompiledWorkload>, String> {
        let key = compile_key(name, target, scale, config);
        let mut state = self.state.lock().expect("cache lock");
        loop {
            if let Some(hit) = state.done.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
            if !state.pending.contains(&key) {
                break;
            }
            state = self.cv.wait(state).expect("cache lock");
        }
        state.pending.insert(key.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(state);
        let compiled = compile_with(name, target, scale, config);
        let mut state = self.state.lock().expect("cache lock");
        state.pending.remove(&key);
        let out =
            compiled.map(|cw| Arc::clone(state.done.entry(key).or_insert_with(|| Arc::new(cw))));
        drop(state);
        self.cv.notify_all();
        out
    }
}

/// Version tag of experiment-checkpoint JSONL lines. Bumped only on
/// incompatible changes; additive fields ride under the same version.
pub const CKPT_VERSION: u64 = 1;

/// One restored simulation unit: the full [`SimOutcome`] plus the
/// host wall time and fingerprint measured when it originally ran
/// (kept so a resumed run reproduces the original's summaries).
pub(crate) struct CkptEntry {
    pub(crate) outcome: SimOutcome,
    pub(crate) wall_ms: u64,
    pub(crate) fingerprint: String,
}

pub(crate) fn ckpt_line(
    key: &str,
    is_base: bool,
    wall_ms: u64,
    fingerprint: &str,
    o: &SimOutcome,
) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("ckpt_v").u64_val(CKPT_VERSION);
    w.key("key").str_val(key);
    w.key("is_base").bool_val(is_base);
    w.key("wall_ms").u64_val(wall_ms);
    w.key("fingerprint").str_val(fingerprint);
    w.key("returned").arr_begin();
    for v in &o.run.returned {
        w.i64_val(v.0);
    }
    w.arr_end();
    w.key("dyn_instrs").u64_val(o.run.dyn_instrs);
    w.key("skipped_instrs").u64_val(o.run.skipped_instrs);
    w.key("reuse_hits").u64_val(o.run.reuse_hits);
    w.key("reuse_misses").u64_val(o.run.reuse_misses);
    w.key("stats");
    write_sim_stats(&mut w, &o.stats);
    w.obj_end();
    w.finish()
}

fn ckpt_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

/// Loads a checkpoint file into unit-key → entry form. A missing file
/// is an empty checkpoint (first run); an unreadable or wrong-version
/// file is a one-line error. Lines that fail to parse as JSON are
/// skipped — that is the torn final line of a crashed run, and the
/// unit it would have recorded simply re-simulates.
pub(crate) fn load_checkpoint(path: &Path) -> Result<HashMap<String, CkptEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut out = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = value::parse(line) else { continue };
        let ctx = format!("{}:{}", path.display(), i + 1);
        let version = v.u64_field("ckpt_v");
        if version != CKPT_VERSION {
            return Err(format!(
                "{ctx}: unknown ckpt_v {version} (known: [{CKPT_VERSION}])"
            ));
        }
        let key = v.str_field("key").to_string();
        if key.is_empty() {
            return Err(format!("{ctx}: missing `key`"));
        }
        let returned = v
            .get("returned")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{ctx}: missing `returned` array"))?
            .iter()
            .map(|x| match x {
                Value::U64(n) => i64::try_from(*n)
                    .map(ccr_ir::Value)
                    .map_err(|_| format!("{ctx}: returned value out of i64 range")),
                Value::I64(n) => Ok(ccr_ir::Value(*n)),
                _ => Err(format!("{ctx}: non-integer returned value")),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let stats_v = v
            .get("stats")
            .ok_or_else(|| format!("{ctx}: missing `stats`"))?;
        out.insert(
            key,
            CkptEntry {
                outcome: SimOutcome {
                    run: RunOutcome {
                        returned,
                        dyn_instrs: ckpt_u64(&v, "dyn_instrs", &ctx)?,
                        skipped_instrs: ckpt_u64(&v, "skipped_instrs", &ctx)?,
                        reuse_hits: ckpt_u64(&v, "reuse_hits", &ctx)?,
                        reuse_misses: ckpt_u64(&v, "reuse_misses", &ctx)?,
                    },
                    stats: parse_sim_stats(stats_v, &ctx)?,
                },
                wall_ms: v.u64_field("wall_ms"),
                fingerprint: v.str_field("fingerprint").to_string(),
            },
        );
    }
    Ok(out)
}

/// Executed results, keyed for assembly into per-spec views.
pub struct Executed<'s> {
    pub(crate) specs: Vec<&'s ExperimentSpec>,
    pub(crate) compiles: HashMap<String, Arc<CompiledWorkload>>,
    pub(crate) bases: HashMap<String, SimOutcome>,
    pub(crate) ccrs: HashMap<String, SimOutcome>,
    pub(crate) potentials: HashMap<String, ReusePotential>,
    /// Host wall time per simulation unit key (base and CCR alike).
    pub(crate) sim_wall_ms: HashMap<String, u64>,
    /// Final fingerprint chain hash per CCR sim unit key (16-digit
    /// lowercase hex), present only for fingerprinted runs.
    pub(crate) fingerprints: HashMap<String, String>,
    /// One entry per unique executed CCR point, in plan order.
    pub(crate) points: Vec<PointMeta>,
    /// Compile-cache (hits, misses) delta for the run (satellite of
    /// the observability PR: counted since PR 5, now surfaced).
    pub(crate) cache: (u64, u64),
}

/// Identity of one unique CCR sweep point, kept by the executor so
/// summaries can pair each CCR sim with its baseline and compile.
pub(crate) struct PointMeta {
    pub(crate) name: &'static str,
    pub(crate) input: InputSet,
    pub(crate) scale: u32,
    pub(crate) config_hash: String,
    pub(crate) compile_key: String,
    pub(crate) base_key: String,
    pub(crate) ccr_key: String,
}

/// One unique executed CCR sweep point flattened to the fields the
/// cross-run store records: the simulated outcome (cycles, speedup,
/// hit rate, miss-cause mix, regions) plus host-side cost (wall time
/// of the base + CCR sims for the point).
///
/// This is a plain value type on purpose: `ccr-bench` does not depend
/// on `ccr-analyze`, so the CLI converts these into store records.
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// Workload name.
    pub workload: &'static str,
    /// Input-set tag (`"train"` / `"ref"`).
    pub input: &'static str,
    /// Workload scale factor.
    pub scale: u32,
    /// [`ccr_core::config_hash`] of the point's machine + CRB.
    pub config_hash: String,
    /// Baseline simulated cycles.
    pub base_cycles: u64,
    /// CCR simulated cycles.
    pub ccr_cycles: u64,
    /// Baseline cycles over CCR cycles.
    pub speedup: f64,
    /// Reuse hits over reuse lookups (0.0 when no lookups ran).
    pub hit_rate: f64,
    /// Miss-cause counters in `ccr_analyze::MISS_CAUSES` order:
    /// cold, mismatch, capacity, conflict, invalidated.
    pub miss_causes: [u64; 5],
    /// Regions the compiler formed for the point.
    pub regions: u64,
    /// Host wall time of the point's base + CCR simulations. Baseline
    /// sims are shared across CRB configs, so a shared base's wall
    /// time is attributed to every point that reads it.
    pub wall_ms: u64,
    /// Final determinism-fingerprint chain hash of the point's CCR
    /// simulation (16-digit lowercase hex); `""` when the run was not
    /// fingerprinted.
    pub fingerprint: String,
}

/// Runs a plan's units over `jobs` workers: compiles and potential
/// studies first (a simulation needs its compile), then every
/// simulation as an independent work item.
///
/// Equivalent to [`execute_observed`] with a disabled harness.
///
/// # Errors
///
/// Returns the first failing unit's error (unknown workload or
/// emulator limit breach), in unit order.
pub fn execute<'s>(plan: &Plan<'s>, jobs: usize) -> Result<Executed<'s>, String> {
    execute_observed(plan, jobs, &Harness::disabled())
}

/// [`execute`] with host-side observability: every unit runs under a
/// stable task label (`compile:`/`potential:`/`sim:base:`/`sim:ccr:`
/// × workload × config hash), the job pool reports per-worker
/// busy/idle accounting to `harness`, and start/finish/cache events
/// land in `harness.jsonl`.
///
/// The harness only observes (clocks, atomics, stderr, the event
/// file): results are bit-identical to [`execute`] with the harness
/// disabled — `tests/harness_observability.rs` pins this.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_observed<'s>(
    plan: &Plan<'s>,
    jobs: usize,
    harness: &Harness,
) -> Result<Executed<'s>, String> {
    execute_resumable(plan, jobs, harness, None, None)
}

/// [`execute_observed`] with two orthogonal extras:
///
/// - `checkpoint`: a JSONL file finished simulation units are appended
///   to as they complete (crash-resumable: every line is flushed the
///   moment its sim finishes). On entry, units already present in the
///   file are restored instead of re-simulated — with their original
///   wall times, so a resumed run reproduces the original run's
///   [`PointSummary`] list exactly. Restored units still report
///   `task_finish` to the harness (wall time as recorded) so progress
///   accounting covers the whole plan.
/// - `fingerprint_window`: when set, every CCR simulation runs through
///   a [`SimSession`] folding the determinism fingerprint every that
///   many cycles (bit-identical statistics to [`simulate`] — pinned by
///   the session tests and by this module's own tests), and the final
///   chain hash lands in [`PointSummary::fingerprint`].
///
/// # Errors
///
/// As [`execute`], plus one-line errors for an unreadable, truncated,
/// or wrong-version checkpoint file.
pub fn execute_resumable<'s>(
    plan: &Plan<'s>,
    jobs: usize,
    harness: &Harness,
    checkpoint: Option<&Path>,
    fingerprint_window: Option<u64>,
) -> Result<Executed<'s>, String> {
    // A fresh engine per one-shot run: every cache lookup misses, so
    // the pipeline (moved to `engine::Engine::execute_plan`) behaves
    // exactly as the pre-engine implementation did.
    crate::engine::Engine::new(jobs).execute_plan(plan, harness, checkpoint, fingerprint_window)
}

impl<'s> Executed<'s> {
    /// Compile-cache `(hits, misses)` for the run — the PR-5 counters,
    /// surfaced so the CLI can print them and the harness can log
    /// them.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
    }

    /// Flattens every unique executed CCR point into a
    /// [`PointSummary`], in plan (first-encounter) order — the hook
    /// the CLI uses to append an `ccr exp` invocation's measurements
    /// to the cross-run store.
    pub fn point_summaries(&self) -> Vec<PointSummary> {
        self.points
            .iter()
            .map(|p| {
                let base = &self.bases[&p.base_key];
                let ccr = &self.ccrs[&p.ccr_key];
                let crb = &ccr.stats.crb;
                let lookups = ccr.stats.reuse_hits + ccr.stats.reuse_misses;
                PointSummary {
                    workload: p.name,
                    input: input_tag(p.input),
                    scale: p.scale,
                    config_hash: p.config_hash.clone(),
                    base_cycles: base.stats.cycles,
                    ccr_cycles: ccr.stats.cycles,
                    speedup: ccr.speedup_over(base.stats.cycles),
                    hit_rate: if lookups == 0 {
                        0.0
                    } else {
                        ccr.stats.reuse_hits as f64 / lookups as f64
                    },
                    miss_causes: [
                        crb.miss_cold,
                        crb.miss_mismatch,
                        crb.miss_capacity,
                        crb.miss_conflict,
                        crb.miss_invalidated,
                    ],
                    regions: self.compiles[&p.compile_key].regions.len() as u64,
                    wall_ms: self.sim_wall_ms.get(&p.base_key).copied().unwrap_or(0)
                        + self.sim_wall_ms.get(&p.ccr_key).copied().unwrap_or(0),
                    fingerprint: self
                        .fingerprints
                        .get(&p.ccr_key)
                        .cloned()
                        .unwrap_or_default(),
                }
            })
            .collect()
    }

    /// Assembles one planned spec's results for rendering.
    ///
    /// # Panics
    ///
    /// Panics if `spec` was not part of the executed plan, or if any
    /// point's baseline and CCR runs disagree architecturally (reuse
    /// must never change program semantics).
    pub fn results(&self, spec: &'s ExperimentSpec) -> SpecResults<'s> {
        assert!(
            self.specs.iter().any(|s| std::ptr::eq(*s, spec)),
            "spec `{}` was not part of the executed plan",
            spec.name
        );
        let mut scenario_runs = Vec::with_capacity(spec.scenarios.len());
        for sc in &spec.scenarios {
            let config = sc.compile_config();
            let mut runs = Vec::with_capacity(spec.workloads.len());
            for &name in spec.workloads {
                let ck = compile_key(name, sc.input, sc.scale, &config);
                let compiled = Arc::clone(&self.compiles[&ck]);
                let base = self.bases
                    [&base_sim_key(name, sc.input, sc.scale, &config, &sc.machine)]
                    .clone();
                let ccr = self.ccrs[&ccr_sim_key(&ck, &sc.machine, &sc.crb)].clone();
                assert_eq!(
                    base.run.returned, ccr.run.returned,
                    "computation reuse changed architectural results"
                );
                runs.push(ExpRun {
                    name,
                    compiled,
                    measurement: Measurement { base, ccr },
                });
            }
            scenario_runs.push(runs);
        }
        let potentials = if spec.potential {
            spec.workloads
                .iter()
                .map(|&n| self.potentials[&potential_key(n, InputSet::Train, SCALE)])
                .collect()
        } else {
            Vec::new()
        };
        SpecResults {
            spec,
            scenario_runs,
            potentials,
        }
    }
}

/// Entry point for the thin legacy binaries: plans, executes (jobs
/// from `--jobs` / `CCR_JOBS` via [`crate::cli_jobs`]), and prints
/// the named experiment exactly as the original binary did.
///
/// # Panics
///
/// Panics on an unknown experiment name or an execution failure —
/// the experiment binaries treat both as fatal.
pub fn shim_main(name: &str) {
    let spec = specs::find(name)
        .unwrap_or_else(|| panic!("unknown experiment `{name}` (see `ccr exp --list`)"));
    let jobs = crate::cli_jobs();
    let plan = plan(&[&spec]);
    let executed = execute(&plan, jobs).expect("known benchmarks, emulation within limits");
    print!("{}", executed.results(&spec).render().text);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    static ONE_WORKLOAD: [&str; 1] = ["bitcount"];

    fn tiny_render(_res: &SpecResults<'_>) -> Rendered {
        Rendered {
            text: String::new(),
            tables: Vec::new(),
        }
    }

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "ckpt_tiny",
            output: "ckpt_tiny",
            title: "checkpoint/fingerprint engine tests",
            workloads: &ONE_WORKLOAD,
            scenarios: vec![Scenario::new(
                "paper",
                InputSet::Train,
                &RegionConfig::paper(),
                &MachineConfig::paper(),
                CrbConfig::paper(),
            )],
            potential: false,
            render: tiny_render,
        }
    }

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ccr-exp-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn summary_view(points: &[PointSummary]) -> Vec<String> {
        points
            .iter()
            .map(|p| {
                format!(
                    "{} {} {} {} {} {} {:.12} {:.12} {:?} {} {} {}",
                    p.workload,
                    p.input,
                    p.scale,
                    p.config_hash,
                    p.base_cycles,
                    p.ccr_cycles,
                    p.speedup,
                    p.hit_rate,
                    p.miss_causes,
                    p.regions,
                    p.wall_ms,
                    p.fingerprint,
                )
            })
            .collect()
    }

    #[test]
    fn checkpoint_restores_instead_of_resimulating_and_survives_a_torn_tail() {
        let spec = tiny_spec();
        let plan = plan(&[&spec]);
        let path = temp_file("roundtrip.ckpt.jsonl");
        let harness = Harness::disabled();

        let first = execute_resumable(&plan, 2, &harness, Some(&path), None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let keys: Vec<String> = text
            .lines()
            .map(|l| {
                let v = value::parse(l).expect("every committed line parses");
                assert_eq!(v.u64_field("ckpt_v"), CKPT_VERSION, "{l}");
                v.str_field("key").to_string()
            })
            .collect();
        assert_eq!(keys.len(), 2, "one base + one CCR unit:\n{text}");

        // Resume: the file must not grow (growth would mean a unit was
        // re-simulated and re-appended) and summaries must match the
        // original run exactly — including wall_ms, which is restored
        // from the checkpoint rather than re-measured.
        let second = execute_resumable(&plan, 2, &harness, Some(&path), None).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        assert_eq!(
            summary_view(&first.point_summaries()),
            summary_view(&second.point_summaries()),
        );

        // Crash simulation: tear the last line in half and append raw
        // garbage. The torn unit re-simulates; the run still succeeds
        // and reaches the same statistics.
        let torn: String = text[..text.len() - text.len() / 3].to_string();
        std::fs::write(&path, format!("{torn}\n{{\"ckpt_v\":1,\"key\"")).unwrap();
        let third = execute_resumable(&plan, 2, &harness, Some(&path), None).unwrap();
        let a = summary_view(&first.point_summaries());
        let b = summary_view(&third.point_summaries());
        // wall_ms of the re-simulated unit is re-measured, so compare
        // everything but the wall column.
        let strip = |rows: &[String]| -> Vec<String> {
            rows.iter()
                .map(|r| {
                    let mut cols: Vec<&str> = r.split(' ').collect();
                    cols.remove(cols.len() - 2);
                    cols.join(" ")
                })
                .collect()
        };
        assert_eq!(strip(&a), strip(&b));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_checkpoint_version_is_a_one_line_error() {
        let path = temp_file("badversion.ckpt.jsonl");
        std::fs::write(&path, "{\"ckpt_v\":99,\"key\":\"x\"}\n").unwrap();
        let err = load_checkpoint(&path).err().expect("must reject");
        assert!(
            err.contains("unknown ckpt_v 99 (known: [1])") && !err.contains('\n'),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprinted_execution_is_bit_identical_and_deterministic() {
        let spec = tiny_spec();
        let plan = plan(&[&spec]);
        let harness = Harness::disabled();
        let plain = execute(&plan, 1).unwrap();
        let fp1 = execute_resumable(&plan, 1, &harness, None, Some(50_000)).unwrap();
        let fp2 = execute_resumable(&plan, 2, &harness, None, Some(50_000)).unwrap();

        let points = fp1.point_summaries();
        assert_eq!(points.len(), 1);
        let hash = &points[0].fingerprint;
        assert_eq!(hash.len(), 16, "chain hash is 16 hex digits: {hash}");
        assert!(hash.bytes().all(|b| b.is_ascii_hexdigit()));
        // Deterministic across runs and worker counts.
        assert_eq!(*hash, fp2.point_summaries()[0].fingerprint);
        // And the session path changes nothing about the statistics.
        let plain_points = plain.point_summaries();
        assert_eq!(plain_points[0].base_cycles, points[0].base_cycles);
        assert_eq!(plain_points[0].ccr_cycles, points[0].ccr_cycles);
        assert_eq!(plain_points[0].miss_causes, points[0].miss_causes);
        assert_eq!(plain_points[0].fingerprint, "", "unmeasured stays empty");
    }
}

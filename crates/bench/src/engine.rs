//! The shared execution engine: one long-lived object owning the
//! job pool, the compile cache, and a content-addressed simulation
//! result cache.
//!
//! Historically every entry point re-implemented the
//! plan→compile→sim pipeline with its own throwaway caches:
//! `exp::execute` built a fresh [`CompileCache`] per call, and
//! `run_selected_cached` shared one only across sequential calls.
//! That is the right shape for a one-shot CLI run, but `ccr serve`
//! keeps a process alive across many requests — and the paper's core
//! economics (amortize one compile/region-formation pass across many
//! dynamic executions) applies to the harness itself: two clients
//! sweeping overlapping configuration spaces should pay for each
//! unique compile and each unique simulation exactly once.
//!
//! [`Engine`] is that long-lived object. It owns:
//!
//! - the worker count fanned through [`ccr_core::jobs`] (PR 4),
//! - the PR-5 [`CompileCache`], now **single-flight**: a concurrent
//!   miss on a key another thread is already compiling blocks until
//!   that compile lands, so each unique unit compiles exactly once
//!   even across concurrent requests,
//! - a [`SimResultCache`]: completed simulation outcomes keyed by the
//!   planner's FNV-1a dedup keys (workload, input, scale, and the
//!   region/machine/CRB `fields()` hashes), single-flight like the
//!   compile cache, with a configurable capacity, LRU eviction, and
//!   hit/miss/eviction counters registered on a PR-7
//!   [`MetricsRegistry`] (`engine.simcache.*`).
//!
//! The one-shot paths (`ccr exp`, `ccr bench`, `ccr suite`,
//! `ccr profile`) construct a fresh engine per invocation — every
//! lookup misses, the simulations run exactly as before, and every
//! rendered table stays byte-identical to the committed `results/`
//! artifacts (`tests/engine_equivalence.rs` pins this). `ccr serve`
//! keeps one engine for the whole session, which is where the
//! cross-request dedup comes from.
//!
//! **Bit-identity contract:** the caches only elide *repeats* of
//! deterministic work. A cache hit returns the identical
//! [`SimOutcome`] (and the originally measured host wall time, the
//! same convention checkpoint restores use), so every statistic a
//! renderer reads is unchanged whether a point ran cold, was
//! restored from a checkpoint, or was served from the result cache.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ccr_core::compile::{CompileConfig, CompiledWorkload};
use ccr_core::config_hash;
use ccr_core::harness::Harness;
use ccr_core::jobs::parallel_map_observed;
use ccr_core::measure::{reuse_potential, Measurement};
use ccr_core::telemetry::{Counter, MetricsRegistry};
use ccr_profile::EmuConfig;
use ccr_profile::ReusePotential;
use ccr_sim::{simulate, simulate_baseline, CrbConfig, MachineConfig, SimOutcome, SimSession};
use ccr_workloads::InputSet;

use crate::exp::{
    base_sim_key, ccr_sim_key, ckpt_line, compile_key, hash_fields, input_tag, load_checkpoint,
    BaseUnit, CcrUnit, CompileCache, CompileUnit, Executed, Plan, PointMeta, PotentialUnit,
};
use crate::{emu_config, SuiteRun};

/// Default retained-entry capacity of a fresh engine's
/// [`SimResultCache`]. Generous relative to the full experiment
/// registry (455 requested points → 403 unique sims), so a default
/// engine never evicts mid-sweep; serve sessions that outgrow it
/// evict least-recently-used entries.
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 4096;

/// One cached simulation: the deterministic [`SimOutcome`] plus the
/// host wall time and determinism-fingerprint chain hash measured
/// when the unit originally ran. Wall time is reused on a hit — the
/// same convention `execute_resumable` uses for checkpoint-restored
/// units, so summaries stay reproducible.
#[derive(Clone)]
pub struct CachedSim {
    /// The simulated outcome (bit-identical across reruns).
    pub outcome: SimOutcome,
    /// Host milliseconds the original run took.
    pub wall_ms: u64,
    /// Final fingerprint chain hash (16-digit lowercase hex), `""`
    /// for non-fingerprinted runs.
    pub fingerprint: String,
}

struct ReadyEntry {
    value: CachedSim,
    /// Logical LRU clock value of the last lookup that touched this
    /// entry (monotonic per cache, not wall time).
    last_used: u64,
}

#[derive(Default)]
struct ResultCacheState {
    ready: HashMap<String, ReadyEntry>,
    /// Completed reuse-potential studies, keyed by the planner's
    /// `pot|…` keys. Never evicted: the map is bounded by the
    /// workload registry (13 entries per input/scale), not by sweep
    /// size, so LRU pressure from simulations can't thrash it.
    potentials: HashMap<String, ReusePotential>,
    /// Keys some thread is currently computing (sim and potential
    /// keys are disjoint by construction — `pot|` prefixes the
    /// latter). Single-flight: concurrent requests for a pending key
    /// block until it lands rather than recomputing it.
    pending: HashSet<String>,
    tick: u64,
}

/// A content-addressed cache of completed simulation outcomes.
///
/// Keys are the planner's FNV-1a dedup keys (suffixed with the
/// fingerprint window so fingerprinted and plain runs never share an
/// entry): identical keys imply identical deterministic outcomes.
/// Lookups are single-flight — a miss marks the key pending and
/// computes outside the lock; concurrent lookups of the same key
/// block and then count as hits — so each unique simulation runs
/// exactly once no matter how many concurrent requests want it, and
/// the hit/miss totals are deterministic (pinned by
/// `tests/engine_equivalence.rs`).
///
/// Capacity bounds *retained* entries: inserting past it evicts the
/// least-recently-used ready entry (pending keys are never evicted
/// and never count). A capacity of 0 retains nothing — every lookup
/// misses, though concurrent lookups still share one in-flight run.
/// Errors are never cached; waiters retry after a failed compute.
pub struct SimResultCache {
    state: Mutex<ResultCacheState>,
    cv: Condvar,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl SimResultCache {
    /// An empty cache with `capacity` retained entries, its counters
    /// registered on `metrics` as `engine.simcache.hits` /
    /// `engine.simcache.misses` / `engine.simcache.evictions`.
    pub fn new(capacity: usize, metrics: &MetricsRegistry) -> SimResultCache {
        SimResultCache {
            state: Mutex::new(ResultCacheState::default()),
            cv: Condvar::new(),
            capacity,
            hits: metrics.counter("engine.simcache.hits"),
            misses: metrics.counter("engine.simcache.misses"),
            evictions: metrics.counter("engine.simcache.evictions"),
        }
    }

    /// Lookups served from a ready entry (including lookups that
    /// waited out another thread's in-flight computation).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to run the simulation.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Ready entries discarded to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained entries.
    pub fn len(&self) -> usize {
        self.state.lock().expect("result cache lock").ready.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached result of `key`, running `run` to produce
    /// and memoize it on first use. Concurrent callers of the same
    /// key block until the first caller's `run` completes, then read
    /// its entry.
    ///
    /// # Errors
    ///
    /// Returns `run`'s error without caching it (a waiter blocked on
    /// the failed computation retries with its own `run`).
    pub fn get_or_run(
        &self,
        key: &str,
        run: impl FnOnce() -> Result<CachedSim, String>,
    ) -> Result<CachedSim, String> {
        let mut state = self.state.lock().expect("result cache lock");
        loop {
            if state.ready.contains_key(key) {
                state.tick += 1;
                let tick = state.tick;
                let entry = state.ready.get_mut(key).expect("checked above");
                entry.last_used = tick;
                let value = entry.value.clone();
                self.hits.inc();
                return Ok(value);
            }
            if !state.pending.contains(key) {
                break;
            }
            state = self.cv.wait(state).expect("result cache lock");
        }
        state.pending.insert(key.to_string());
        self.misses.inc();
        drop(state);
        let result = run();
        let mut state = self.state.lock().expect("result cache lock");
        state.pending.remove(key);
        if let Ok(value) = &result {
            state.tick += 1;
            let tick = state.tick;
            state.ready.insert(
                key.to_string(),
                ReadyEntry {
                    value: value.clone(),
                    last_used: tick,
                },
            );
            while state.ready.len() > self.capacity {
                let victim = state
                    .ready
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty over-capacity map");
                state.ready.remove(&victim);
                self.evictions.inc();
            }
        }
        drop(state);
        self.cv.notify_all();
        result
    }

    /// [`SimResultCache::get_or_run`] for reuse-potential studies
    /// (Figure 4 prep units): same single-flight discipline and the
    /// same hit/miss counters, but entries are exempt from LRU
    /// eviction — the map is bounded by the workload registry, and a
    /// repeated `fig4` submission must stay a pure cache hit no
    /// matter how many simulations churned the cache in between.
    ///
    /// # Errors
    ///
    /// Returns `run`'s error without caching it (a waiter blocked on
    /// the failed computation retries with its own `run`).
    pub fn get_or_run_potential(
        &self,
        key: &str,
        run: impl FnOnce() -> Result<ReusePotential, String>,
    ) -> Result<ReusePotential, String> {
        let mut state = self.state.lock().expect("result cache lock");
        loop {
            if let Some(p) = state.potentials.get(key) {
                self.hits.inc();
                return Ok(*p);
            }
            if !state.pending.contains(key) {
                break;
            }
            state = self.cv.wait(state).expect("result cache lock");
        }
        state.pending.insert(key.to_string());
        self.misses.inc();
        drop(state);
        let result = run();
        let mut state = self.state.lock().expect("result cache lock");
        state.pending.remove(key);
        if let Ok(p) = &result {
            state.potentials.insert(key.to_string(), *p);
        }
        drop(state);
        self.cv.notify_all();
        result
    }
}

/// The long-lived execution engine: job-pool width plus the shared
/// compile and simulation-result caches. See the module docs for the
/// layering; `exp::execute*` and `run_selected*` are thin wrappers
/// over a fresh engine, `ccr serve` shares one across requests.
pub struct Engine {
    jobs: usize,
    metrics: Arc<MetricsRegistry>,
    compile_cache: CompileCache,
    result_cache: SimResultCache,
}

impl Engine {
    /// An engine fanning work over `jobs` workers with the default
    /// result-cache capacity.
    pub fn new(jobs: usize) -> Engine {
        Engine::with_capacity(jobs, DEFAULT_RESULT_CACHE_CAPACITY)
    }

    /// [`Engine::new`] with an explicit result-cache capacity.
    pub fn with_capacity(jobs: usize, result_capacity: usize) -> Engine {
        let metrics = Arc::new(MetricsRegistry::new());
        let result_cache = SimResultCache::new(result_capacity, &metrics);
        Engine {
            jobs,
            metrics,
            compile_cache: CompileCache::new(),
            result_cache,
        }
    }

    /// Worker count the engine fans units over.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's metrics registry (carries the
    /// `engine.simcache.*` counters).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The shared compile cache.
    pub fn compile_cache(&self) -> &CompileCache {
        &self.compile_cache
    }

    /// The shared simulation-result cache.
    pub fn result_cache(&self) -> &SimResultCache {
        &self.result_cache
    }

    /// Runs a plan through the engine: compiles and potential studies
    /// first, then every simulation as an independent work item, all
    /// through the shared caches. This is the body behind
    /// [`crate::exp::execute_resumable`] — see its docs for the
    /// checkpoint and fingerprint semantics. Cache accounting on the
    /// returned [`Executed`] (and the `compile_cache` harness event)
    /// is the **delta** this run contributed, so a fresh engine
    /// reports exactly what the pre-engine implementation did.
    ///
    /// # Errors
    ///
    /// Returns the first failing unit's error (unknown workload or
    /// emulator limit breach), in unit order, plus one-line errors
    /// for an unreadable, truncated, or wrong-version checkpoint.
    pub fn execute_plan<'s>(
        &self,
        plan: &Plan<'s>,
        harness: &Harness,
        checkpoint: Option<&Path>,
        fingerprint_window: Option<u64>,
    ) -> Result<Executed<'s>, String> {
        enum Prep<'a> {
            Compile(&'a CompileUnit),
            Potential(&'a PotentialUnit),
        }
        enum PrepOut {
            Compile(String, Arc<CompiledWorkload>),
            Potential(String, ReusePotential),
        }
        impl Prep<'_> {
            fn label(&self) -> String {
                match self {
                    Prep::Compile(u) => format!(
                        "compile:{}:{}@r{}",
                        u.name,
                        input_tag(u.input),
                        &hash_fields(&u.config.region.fields())[..8],
                    ),
                    Prep::Potential(u) => format!("potential:{}:{}", u.name, input_tag(u.input)),
                }
            }
            fn phase(&self) -> &'static str {
                match self {
                    Prep::Compile(_) => "compile",
                    Prep::Potential(_) => "potential",
                }
            }
        }
        let jobs = self.jobs;
        harness.plan(
            (plan.compiles.len() + plan.potentials.len()) as u64,
            (plan.bases.len() + plan.ccrs.len()) as u64,
            &[
                ("specs", plan.stats.specs as u64),
                ("requested_points", plan.stats.requested_points as u64),
                ("deduped_compiles", plan.stats.deduped_compiles as u64),
                ("deduped_sims", plan.stats.deduped_sims as u64),
                ("jobs", jobs as u64),
            ],
        );
        // Cache accounting is the run's delta: the engine's caches
        // outlive this call, but each run reports only what it added.
        let cache = &self.compile_cache;
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        let prep_items: Vec<Prep<'_>> = plan
            .compiles
            .iter()
            .map(Prep::Compile)
            .chain(plan.potentials.iter().map(Prep::Potential))
            .collect();
        let prep_labels: Vec<String> = prep_items.iter().map(Prep::label).collect();
        let (prep, prep_pool) = parallel_map_observed(
            &prep_items,
            jobs,
            Some(&prep_labels),
            harness.observer(),
            |i, item| {
                harness.task_start(item.phase(), &prep_labels[i]);
                let start = Instant::now();
                let out = match item {
                    Prep::Compile(u) => cache
                        .get_or_compile(u.name, u.input, u.scale, &u.config)
                        .map(|cw| PrepOut::Compile(u.key.clone(), cw)),
                    Prep::Potential(u) => self
                        .result_cache
                        .get_or_run_potential(&u.key, || {
                            let program = ccr_workloads::build(u.name, u.input, u.scale)
                                .ok_or_else(|| format!("unknown benchmark `{}`", u.name))?;
                            reuse_potential(&program, emu_config())
                                .map_err(|e| format!("{}: {e}", u.name))
                        })
                        .map(|p| PrepOut::Potential(u.key.clone(), p)),
                };
                if out.is_ok() {
                    let wall_ms = start.elapsed().as_millis() as u64;
                    harness.task_finish(item.phase(), &prep_labels[i], wall_ms, None);
                }
                out
            },
        );
        harness.pool("prep", &prep_pool);
        harness.compile_cache(cache.hits() - hits_before, cache.misses() - misses_before);
        let mut executed = Executed {
            specs: plan.specs.clone(),
            compiles: HashMap::new(),
            bases: HashMap::new(),
            ccrs: HashMap::new(),
            potentials: HashMap::new(),
            sim_wall_ms: HashMap::new(),
            fingerprints: HashMap::new(),
            points: plan
                .ccrs
                .iter()
                .map(|u| PointMeta {
                    name: u.name,
                    input: u.input,
                    scale: u.scale,
                    config_hash: config_hash(&u.machine, &u.crb),
                    compile_key: u.compile_key.clone(),
                    base_key: u.base_key.clone(),
                    ccr_key: u.key.clone(),
                })
                .collect(),
            cache: (cache.hits() - hits_before, cache.misses() - misses_before),
        };
        for out in prep {
            match out? {
                PrepOut::Compile(key, cw) => {
                    executed.compiles.insert(key, cw);
                }
                PrepOut::Potential(key, p) => {
                    executed.potentials.insert(key, p);
                }
            }
        }

        let restored = match checkpoint {
            Some(path) => load_checkpoint(path)?,
            None => HashMap::new(),
        };
        let ckpt_sink = match checkpoint {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("{}: {e}", parent.display()))?;
                    }
                }
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                Some(Mutex::new(file))
            }
            None => None,
        };

        enum Sim<'a> {
            Base(&'a BaseUnit, Arc<CompiledWorkload>),
            Ccr(&'a CcrUnit, Arc<CompiledWorkload>),
        }
        impl Sim<'_> {
            fn key(&self) -> &str {
                match self {
                    Sim::Base(u, _) => &u.key,
                    Sim::Ccr(u, _) => &u.key,
                }
            }
            fn label(&self) -> String {
                match self {
                    Sim::Base(u, _) => format!(
                        "sim:base:{}:m{}",
                        u.name,
                        &hash_fields(&u.machine.fields())[..8]
                    ),
                    Sim::Ccr(u, _) => {
                        format!("sim:ccr:{}:{}", u.name, config_hash(&u.machine, &u.crb))
                    }
                }
            }
        }
        let mut sim_items: Vec<Sim<'_>> = Vec::new();
        for item in plan
            .bases
            .iter()
            .map(|u| Sim::Base(u, Arc::clone(&executed.compiles[&u.compile_key])))
            .chain(
                plan.ccrs
                    .iter()
                    .map(|u| Sim::Ccr(u, Arc::clone(&executed.compiles[&u.compile_key]))),
            )
        {
            let Some(entry) = restored.get(item.key()) else {
                sim_items.push(item);
                continue;
            };
            let key = item.key().to_string();
            harness.task_finish(
                "sim",
                &item.label(),
                entry.wall_ms,
                Some(entry.outcome.stats.cycles),
            );
            executed.sim_wall_ms.insert(key.clone(), entry.wall_ms);
            match item {
                Sim::Base(..) => {
                    executed.bases.insert(key, entry.outcome.clone());
                }
                Sim::Ccr(..) => {
                    if !entry.fingerprint.is_empty() {
                        executed
                            .fingerprints
                            .insert(key.clone(), entry.fingerprint.clone());
                    }
                    executed.ccrs.insert(key, entry.outcome.clone());
                }
            }
        }
        let planned_sims = plan.bases.len() + plan.ccrs.len();
        let restored_sims = planned_sims - sim_items.len();
        if restored_sims > 0 {
            eprintln!("checkpoint: restored {restored_sims} of {planned_sims} sim unit(s)");
        }
        let sim_labels: Vec<String> = sim_items.iter().map(Sim::label).collect();
        let (sims, sim_pool) = parallel_map_observed(
            &sim_items,
            jobs,
            Some(&sim_labels),
            harness.observer(),
            |i, item| {
                harness.task_start("sim", &sim_labels[i]);
                let cache_key = result_cache_key(item.key(), fingerprint_window);
                let out = self
                    .result_cache
                    .get_or_run(&cache_key, || {
                        let start = Instant::now();
                        let res = match item {
                            Sim::Base(u, cw) => {
                                simulate_baseline(&cw.base, &u.machine, emu_config())
                                    .map(|o| (o, String::new()))
                                    .map_err(|e| format!("{}: {e}", u.name))
                            }
                            Sim::Ccr(u, cw) => match fingerprint_window {
                                None => {
                                    simulate(&cw.annotated, &u.machine, Some(u.crb), emu_config())
                                        .map(|o| (o, String::new()))
                                        .map_err(|e| format!("{}: {e}", u.name))
                                }
                                Some(window) => {
                                    let mut session = SimSession::new(
                                        &cw.annotated,
                                        &u.machine,
                                        Some(u.crb),
                                        emu_config(),
                                        window,
                                    );
                                    session
                                        .set_provenance(u.name, &config_hash(&u.machine, &u.crb));
                                    session
                                        .run_to_end()
                                        .map_err(|e| format!("{}: {e}", u.name))
                                        .map(|()| {
                                            let hash = session.final_hash().expect("finished run");
                                            (session.into_outcome(), format!("{hash:016x}"))
                                        })
                                }
                            },
                        };
                        res.map(|(outcome, fingerprint)| CachedSim {
                            outcome,
                            wall_ms: start.elapsed().as_millis() as u64,
                            fingerprint,
                        })
                    })
                    .map(|c| match item {
                        Sim::Base(u, _) => (u.key.clone(), true, c),
                        Sim::Ccr(u, _) => (u.key.clone(), false, c),
                    });
                if let Ok((key, is_base, c)) = &out {
                    harness.task_finish(
                        "sim",
                        &sim_labels[i],
                        c.wall_ms,
                        Some(c.outcome.stats.cycles),
                    );
                    if let Some(sink) = &ckpt_sink {
                        let line = ckpt_line(key, *is_base, c.wall_ms, &c.fingerprint, &c.outcome);
                        let mut f = sink.lock().expect("checkpoint lock");
                        let _ = writeln!(f, "{line}").and_then(|()| f.flush());
                    }
                }
                out
            },
        );
        harness.pool("sim", &sim_pool);
        for out in sims {
            let (key, is_base, c) = out?;
            executed.sim_wall_ms.insert(key.clone(), c.wall_ms);
            if is_base {
                executed.bases.insert(key, c.outcome);
            } else {
                if !c.fingerprint.is_empty() {
                    executed.fingerprints.insert(key.clone(), c.fingerprint);
                }
                executed.ccrs.insert(key, c.outcome);
            }
        }
        Ok(executed)
    }

    /// Runs a workload selection end-to-end through the engine's
    /// shared caches — the suite/bench pipeline, re-routed. Identical
    /// statistics to [`crate::run_selected_harnessed`]; repeated or
    /// overlapping selections additionally reuse compiles *and*
    /// simulation outcomes across calls.
    ///
    /// # Errors
    ///
    /// Returns the first failing workload's error (unknown name or
    /// emulator limit breach), in `names` order.
    #[allow(clippy::too_many_arguments)]
    pub fn run_selected(
        &self,
        names: &[&'static str],
        target: InputSet,
        scale: u32,
        config: &CompileConfig,
        machine: &MachineConfig,
        crb: CrbConfig,
        emu: EmuConfig,
        harness: &Harness,
    ) -> Result<Vec<SuiteRun>, String> {
        run_selected_inner(
            names,
            target,
            scale,
            config,
            machine,
            crb,
            emu,
            self.jobs,
            Some(&self.compile_cache),
            Some(&self.result_cache),
            harness,
        )
    }
}

/// The result-cache key of a planned simulation unit: the planner's
/// dedup key plus the fingerprint window, so fingerprinted and plain
/// runs of the same point never share an entry.
fn result_cache_key(unit_key: &str, fingerprint_window: Option<u64>) -> String {
    match fingerprint_window {
        None => format!("{unit_key}|fp:none"),
        Some(w) => format!("{unit_key}|fp:{w}"),
    }
}

/// The suite pipeline body ([`crate::run_selected_harnessed`] and
/// [`Engine::run_selected`] are thin wrappers): compiles then the
/// per-workload {base, ccr} simulations fanned over `jobs` workers,
/// optionally through the shared caches. The result cache embeds the
/// simulation emulator limits in its keys (the suite path's sim
/// limits are a parameter, unlike the experiment path where they
/// always equal the compile config's).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_selected_inner(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
    cache: Option<&CompileCache>,
    result_cache: Option<&SimResultCache>,
    harness: &Harness,
) -> Result<Vec<SuiteRun>, String> {
    let input = input_tag(target);
    let cfg_hash = config_hash(machine, &crb);
    harness.plan(
        names.len() as u64,
        2 * names.len() as u64,
        &[("jobs", jobs as u64)],
    );
    let compile_labels: Vec<String> = names
        .iter()
        .map(|name| format!("compile:{name}:{input}@{scale}"))
        .collect();
    let compiled: Vec<(CompiledWorkload, u64)> = {
        let (results, pool) = parallel_map_observed(
            names,
            jobs,
            Some(&compile_labels),
            harness.observer(),
            |i, name| {
                harness.task_start("compile", &compile_labels[i]);
                let started = Instant::now();
                let out = match cache {
                    Some(cache) => cache
                        .get_or_compile(name, target, scale, config)
                        .map(|cw| ((*cw).clone(), started.elapsed().as_millis() as u64)),
                    None => crate::compile_with(name, target, scale, config)
                        .map(|cw| (cw, started.elapsed().as_millis() as u64)),
                };
                if let Ok((_, wall_ms)) = &out {
                    harness.task_finish("compile", &compile_labels[i], *wall_ms, None);
                }
                out
            },
        );
        harness.pool("compile", &pool);
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        out
    };
    // Fan every workload's two independent simulations out as their
    // own work items: 2N sims over `jobs` workers.
    let tasks: Vec<(usize, bool)> = (0..compiled.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let sim_labels: Vec<String> = tasks
        .iter()
        .map(|&(i, is_ccr)| {
            let kind = if is_ccr { "ccr" } else { "base" };
            format!("sim:{kind}:{}:{cfg_hash}", names[i])
        })
        .collect();
    let (sims, sim_pool) = parallel_map_observed(
        &tasks,
        jobs,
        Some(&sim_labels),
        harness.observer(),
        |t, &(i, is_ccr)| {
            harness.task_start("sim", &sim_labels[t]);
            let run = || {
                let started = Instant::now();
                let out = if is_ccr {
                    simulate(&compiled[i].0.annotated, machine, Some(crb), emu)
                } else {
                    simulate_baseline(&compiled[i].0.base, machine, emu)
                };
                out.map(|outcome| CachedSim {
                    outcome,
                    wall_ms: started.elapsed().as_millis() as u64,
                    fingerprint: String::new(),
                })
                .map_err(|e| format!("{}: {e}", names[i]))
            };
            let out = match result_cache {
                Some(rc) => {
                    let unit_key = if is_ccr {
                        ccr_sim_key(&compile_key(names[i], target, scale, config), machine, &crb)
                    } else {
                        base_sim_key(names[i], target, scale, config, machine)
                    };
                    let key = format!(
                        "{}|simemu:{}/{}|fp:none",
                        unit_key, emu.max_instrs, emu.max_depth
                    );
                    rc.get_or_run(&key, run)
                }
                None => run(),
            };
            if let Ok(c) = &out {
                harness.task_finish(
                    "sim",
                    &sim_labels[t],
                    c.wall_ms,
                    Some(c.outcome.stats.cycles),
                );
            }
            out
        },
    );
    harness.pool("sim", &sim_pool);
    let mut sims = sims.into_iter();
    let mut runs = Vec::with_capacity(compiled.len());
    for (name, (compiled, compile_ms)) in names.iter().zip(compiled) {
        let base = sims.next().expect("one base sim per workload")?;
        let ccr = sims.next().expect("one ccr sim per workload")?;
        assert_eq!(
            base.outcome.run.returned, ccr.outcome.run.returned,
            "computation reuse changed architectural results"
        );
        runs.push(SuiteRun {
            name,
            compiled,
            wall_ms: compile_ms + base.wall_ms + ccr.wall_ms,
            measurement: Measurement {
                base: base.outcome,
                ccr: ccr.outcome,
            },
        });
    }
    Ok(runs)
}

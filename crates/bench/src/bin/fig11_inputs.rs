//! Figure 11: speedup with training vs reference input data sets
//! (128-entry CRB, 8 instances per entry).
//!
//! The compiler always profiles on the *training* input; the
//! reference column measures how well compile-time region selection
//! generalizes to data it never saw.
//!
//! Paper shape: average 1.26 (train) vs 1.23 (ref); the repetition
//! eliminated drops from ~40 % to ~33 % — "the general applicability
//! of directing the reuse of computation at compile time".

use ccr_bench::{cli_jobs, mean, run_suite, SCALE};
use ccr_core::report::{pct, speedup, Table};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn main() {
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    let crb = CrbConfig::paper();

    let jobs = cli_jobs();
    let train_runs = run_suite(InputSet::Train, SCALE, &region, &machine, crb, jobs);
    let ref_runs = run_suite(InputSet::Ref, SCALE, &region, &machine, crb, jobs);

    let mut table = Table::new(["benchmark", "train", "ref", "elim(train)", "elim(ref)"]);
    for (t, r) in train_runs.iter().zip(&ref_runs) {
        table.row([
            t.name.to_string(),
            speedup(t.measurement.speedup()),
            speedup(r.measurement.speedup()),
            pct(t.measurement.eliminated_fraction()),
            pct(r.measurement.eliminated_fraction()),
        ]);
    }
    table.row([
        "average".to_string(),
        speedup(mean(train_runs.iter().map(|r| r.measurement.speedup()))),
        speedup(mean(ref_runs.iter().map(|r| r.measurement.speedup()))),
        pct(mean(
            train_runs
                .iter()
                .map(|r| r.measurement.eliminated_fraction()),
        )),
        pct(mean(
            ref_runs.iter().map(|r| r.measurement.eliminated_fraction()),
        )),
    ]);

    println!("Figure 11 — training vs reference input (128 entries, 8 CIs)");
    println!("{table}");
    println!("Paper: avg 1.26 (train) vs 1.23 (ref); repetition eliminated 40% vs 33%.");
}

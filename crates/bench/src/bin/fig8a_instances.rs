//! Figure 8(a): speedup for a 128-entry CRB with 4, 8, and 16
//! computation instances per entry, per benchmark.
//!
//! Paper shape: averages ≈ 1.20 / 1.25 / 1.30; `124.m88ksim` is the
//! best case; `pgpencode` gains the most from extra instances.
//! Also prints the Section 5.2 headline: the fraction of dynamic
//! instruction repetition eliminated.

use ccr_bench::{cli_jobs, mean, run_suite, SCALE};
use ccr_core::report::{pct, speedup, Table};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn main() {
    let jobs = cli_jobs();
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    let instance_counts = [4usize, 8, 16];

    let mut table = Table::new([
        "benchmark",
        "128e/4CI",
        "128e/8CI",
        "128e/16CI",
        "eliminated(16CI)",
    ]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); instance_counts.len()];

    let runs_per_config: Vec<Vec<ccr_bench::SuiteRun>> = instance_counts
        .iter()
        .map(|&ci| {
            run_suite(
                InputSet::Train,
                SCALE,
                &region,
                &machine,
                CrbConfig::with_instances(ci),
                jobs,
            )
        })
        .collect();

    for (b, name) in ccr_workloads::NAMES.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, runs) in runs_per_config.iter().enumerate() {
            let s = runs[b].measurement.speedup();
            columns[c].push(s);
            cells.push(speedup(s));
        }
        cells.push(pct(runs_per_config[2][b].measurement.eliminated_fraction()));
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &columns {
        avg.push(speedup(mean(col.iter().copied())));
    }
    avg.push(pct(mean(
        runs_per_config[2]
            .iter()
            .map(|r| r.measurement.eliminated_fraction()),
    )));
    table.row(avg);

    println!("Figure 8(a) — speedup vs computation instances (128 entries)");
    println!("{table}");
    println!(
        "Paper: avg 1.20 (4 CI), 1.25 (8 CI), 1.30 (16 CI); ~40% of dynamic \
         instruction repetition eliminated."
    );
}

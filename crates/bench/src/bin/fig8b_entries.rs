//! Figure 8(b): speedup for CRBs of 32, 64, and 128 computation
//! entries (8 instances each), per benchmark.
//!
//! Paper shape: averages ≈ 1.20 / 1.23 / 1.25 — "the benefits of
//! reuse are sustained for even a small number of computation
//! entries", because a few hot computations dominate each program.

use ccr_bench::{cli_jobs, mean, run_suite, SCALE};
use ccr_core::report::{speedup, Table};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn main() {
    let jobs = cli_jobs();
    let machine = MachineConfig::paper();
    let region = RegionConfig::paper();
    let entry_counts = [32usize, 64, 128];

    let mut table = Table::new(["benchmark", "32e/8CI", "64e/8CI", "128e/8CI", "regions"]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); entry_counts.len()];

    let runs_per_config: Vec<Vec<ccr_bench::SuiteRun>> = entry_counts
        .iter()
        .map(|&e| {
            run_suite(
                InputSet::Train,
                SCALE,
                &region,
                &machine,
                CrbConfig::with_entries(e),
                jobs,
            )
        })
        .collect();

    for (b, name) in ccr_workloads::NAMES.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, runs) in runs_per_config.iter().enumerate() {
            let s = runs[b].measurement.speedup();
            columns[c].push(s);
            cells.push(speedup(s));
        }
        cells.push(runs_per_config[2][b].compiled.regions.len().to_string());
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &columns {
        avg.push(speedup(mean(col.iter().copied())));
    }
    avg.push(String::new());
    table.row(avg);

    println!("Figure 8(b) — speedup vs computation entries (8 instances)");
    println!("{table}");
    println!(
        "Paper: avg 1.20 (32e), 1.23 (64e), 1.25 (128e) — a moderate number of \
         entries suffices. Our synthetic programs form fewer static regions \
         than full SPEC binaries, so entry-count sensitivity is even lower; \
         the conclusion (no loss at small CRBs) is the same."
    );
}

//! Extension study: how does the CCR benefit scale with machine
//! width? Two forces pull in opposite directions: on a *narrow*,
//! throughput-bound machine every eliminated instruction frees a
//! scarce issue slot (reuse as bandwidth), while on a *wide* machine
//! the benefit comes from breaking dependence chains (reuse as the
//! dataflow-limit escape the paper emphasizes). On this suite the
//! bandwidth effect dominates slightly: speedups shrink from ~1.31 at
//! 2-wide to ~1.27 at 6-wide and then flatten, because the 6-wide
//! baseline is already mostly latency-bound (base IPC saturates near
//! 0.84).

use ccr_bench::{cli_jobs, mean, run_suite, SCALE};
use ccr_core::report::{speedup, Table};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn machine_of_width(width: u32) -> MachineConfig {
    MachineConfig {
        issue_width: width,
        int_alus: (width * 2 / 3).max(1),
        mem_ports: (width / 3).max(1),
        fp_alus: (width / 3).max(1),
        branch_units: 1,
        ..MachineConfig::paper()
    }
}

fn main() {
    let jobs = cli_jobs();
    let region = RegionConfig::paper();
    let widths = [2u32, 4, 6, 8];

    let mut table = Table::new(["issue width", "avg speedup", "avg base IPC", "avg CCR IPC"]);
    for &w in &widths {
        let machine = machine_of_width(w);
        let runs = run_suite(
            InputSet::Train,
            SCALE,
            &region,
            &machine,
            CrbConfig::paper(),
            jobs,
        );
        let avg = mean(runs.iter().map(|r| r.measurement.speedup()));
        let base_ipc = mean(runs.iter().map(|r| {
            r.measurement.base.stats.dyn_instrs as f64 / r.measurement.base.stats.cycles as f64
        }));
        let ccr_ipc = mean(runs.iter().map(|r| r.measurement.ccr.stats.effective_ipc()));
        table.row([
            format!("{w}{}", if w == 6 { " (paper)" } else { "" }),
            speedup(avg),
            format!("{base_ipc:.2}"),
            format!("{ccr_ipc:.2}"),
        ]);
    }
    println!("Width sensitivity — CCR speedup vs machine issue width");
    println!("{table}");
    println!(
        "Two regimes: on narrow machines reuse frees scarce issue slots \
         (bandwidth); on wide machines it breaks dependence chains (latency). \
         Base IPC saturating with width shows where one regime hands off to \
         the other."
    );
}

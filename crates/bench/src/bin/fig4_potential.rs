//! Figure 4: dynamic reuse potential — the fraction of dynamic
//! program execution reusable at basic-block vs region granularity,
//! with eight records of previous dynamic information per code
//! segment.
//!
//! Paper shape: block average ≈ 30 %, region average ≈ 55 % — region
//! exploitation "can potentially exploit almost twice the amount of
//! program execution available to block-level approaches".

use ccr_bench::{emu_config, mean, SCALE};
use ccr_core::measure::reuse_potential;
use ccr_core::report::{pct, Table};
use ccr_workloads::{build, InputSet, NAMES};

fn main() {
    let mut table = Table::new(["benchmark", "block", "region", "region/block"]);
    let mut blocks = Vec::new();
    let mut regions = Vec::new();
    for name in NAMES {
        let program = build(name, InputSet::Train, SCALE).expect("known benchmark");
        let pot = reuse_potential(&program, emu_config()).expect("within limits");
        blocks.push(pot.block_ratio());
        regions.push(pot.region_ratio());
        let ratio = if pot.block_ratio() > 0.0 {
            format!("{:.2}x", pot.region_ratio() / pot.block_ratio())
        } else {
            "-".to_string()
        };
        table.row([
            name.to_string(),
            pct(pot.block_ratio()),
            pct(pot.region_ratio()),
            ratio,
        ]);
    }
    let avg_block = mean(blocks);
    let avg_region = mean(regions);
    table.row([
        "average".to_string(),
        pct(avg_block),
        pct(avg_region),
        format!("{:.2}x", avg_region / avg_block.max(1e-9)),
    ]);

    println!("Figure 4 — dynamic reuse potential (8-record history)");
    println!("{table}");
    println!(
        "Paper: block avg ~30%, region avg ~55%; region-level reuse roughly \
         doubles the exploitable execution."
    );
}

//! Figure 4 — thin shim over the experiment engine.
//!
//! `ccr exp fig4` is the canonical entry point; this binary is kept
//! for one release so existing scripts keep working. Output is
//! byte-identical to the pre-engine binary.

fn main() {
    ccr_bench::exp::shim_main("fig4_potential");
}

//! Figure 10: dynamic reuse distribution over static computations.
//!
//! For each benchmark, regions are sorted by their contribution to
//! total eliminated execution; the table reports the cumulative share
//! captured by the top 10/20/30/40 % of static computations.
//!
//! Paper shape: the top 40 % of static computations account for
//! nearly 90 % of total reuse — except `129.compress`, whose regions
//! contribute almost uniformly.

use ccr_bench::{cli_jobs, run_suite, SCALE};
use ccr_core::report::{pct, Table};
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn main() {
    let runs = run_suite(
        InputSet::Train,
        SCALE,
        &ccr_regions::RegionConfig::paper(),
        &MachineConfig::paper(),
        CrbConfig::paper(),
        cli_jobs(),
    );

    let mut table = Table::new([
        "benchmark",
        "regions",
        "top10%",
        "top20%",
        "top30%",
        "top40%",
    ]);
    for run in &runs {
        let mut contributions: Vec<u64> = run
            .compiled
            .regions
            .iter()
            .map(|info| {
                run.measurement
                    .ccr
                    .stats
                    .regions
                    .get(&info.id)
                    .map_or(0, |s| s.skipped_instrs)
            })
            .collect();
        contributions.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = contributions.iter().sum();
        let n = contributions.len();
        if total == 0 || n == 0 {
            table.row([
                run.name.to_string(),
                n.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let cum_at = |frac: f64| -> f64 {
            // Fractional static coverage: partial credit for the
            // marginal region keeps tiny region counts meaningful.
            let want = frac * n as f64;
            let full = want.floor() as usize;
            let mut acc: u64 = contributions.iter().take(full).sum();
            let part = want - full as f64;
            if full < n {
                acc += (contributions[full] as f64 * part) as u64;
            }
            acc as f64 / total as f64
        };
        table.row([
            run.name.to_string(),
            n.to_string(),
            pct(cum_at(0.10)),
            pct(cum_at(0.20)),
            pct(cum_at(0.30)),
            pct(cum_at(0.40)),
        ]);
    }

    println!("Figure 10 — cumulative dynamic reuse of top static computations");
    println!("{table}");
    println!(
        "Paper: top 40% of static computations ≈ 90% of total reuse; \
         129.compress is the notable flat exception."
    );
}

//! Design-space ablations (DESIGN.md §5).
//!
//! 1. CRB instance replacement: LRU (paper) vs FIFO vs random.
//! 2. Region granularity: block-level-only vs full regions — the
//!    end-to-end version of Figure 4's motivation.
//! 3. Memory-dependent regions on/off — what the invalidation
//!    machinery buys.
//! 4. Reusability threshold R sweep (paper: 0.65 empirically best).
//! 5. Reuse-failure penalty sensitivity.
//! 6. Function-level reuse (paper §6 future work).
//! 7. Speculative reuse validation (paper §6 future work).
//! 8. Nonuniform CRB capacities (paper §6 future work).

use ccr_bench::{cli_jobs, mean, run_suite, SCALE};
use ccr_core::report::{speedup, Table};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig, NonuniformConfig, Replacement};
use ccr_workloads::InputSet;

fn average_speedup(region: &RegionConfig, machine: &MachineConfig, crb: CrbConfig) -> f64 {
    mean(
        run_suite(InputSet::Train, SCALE, region, machine, crb, cli_jobs())
            .iter()
            .map(|r| r.measurement.speedup()),
    )
}

fn main() {
    let machine = MachineConfig::paper();
    let paper = RegionConfig::paper();

    println!("Ablation 1 — instance replacement policy (128e/8CI)");
    let mut t = Table::new(["policy", "avg speedup"]);
    for (label, policy) in [
        ("LRU (paper)", Replacement::Lru),
        ("FIFO", Replacement::Fifo),
        ("random", Replacement::Random),
    ] {
        let crb = CrbConfig {
            replacement: policy,
            ..CrbConfig::paper()
        };
        t.row([
            label.to_string(),
            speedup(average_speedup(&paper, &machine, crb)),
        ]);
    }
    println!("{t}");

    println!("Ablation 2 — region granularity");
    let mut t = Table::new(["granularity", "avg speedup"]);
    t.row([
        "full regions (paper)".to_string(),
        speedup(average_speedup(&paper, &machine, CrbConfig::paper())),
    ]);
    t.row([
        "single block only".to_string(),
        speedup(average_speedup(
            &RegionConfig::block_level(),
            &machine,
            CrbConfig::paper(),
        )),
    ]);
    println!("{t}");

    println!("Ablation 3 — memory-dependent regions");
    let mut t = Table::new(["classes", "avg speedup"]);
    t.row([
        "SL + MD (paper)".to_string(),
        speedup(average_speedup(&paper, &machine, CrbConfig::paper())),
    ]);
    t.row([
        "SL only".to_string(),
        speedup(average_speedup(
            &RegionConfig::stateless_only(),
            &machine,
            CrbConfig::paper(),
        )),
    ]);
    println!("{t}");

    println!("Ablation 4 — reusability threshold R");
    let mut t = Table::new(["R", "avg speedup"]);
    for r in [0.50, 0.65, 0.80] {
        let region = RegionConfig {
            r_threshold: r,
            rm_threshold: r,
            ..paper
        };
        t.row([
            format!("{r:.2}{}", if r == 0.65 { " (paper)" } else { "" }),
            speedup(average_speedup(&region, &machine, CrbConfig::paper())),
        ]);
    }
    println!("{t}");

    println!("Ablation 5 — reuse-failure penalty");
    let mut t = Table::new(["penalty (cycles)", "avg speedup"]);
    for pen in [0u64, 4, 8, 16] {
        let m = MachineConfig {
            reuse_miss_penalty: pen,
            ..machine
        };
        t.row([
            format!("{pen}{}", if pen == 8 { " (paper)" } else { "" }),
            speedup(average_speedup(&paper, &m, CrbConfig::paper())),
        ]);
    }
    println!("{t}");

    println!("Ablation 6 — function-level reuse (paper §6 future work)");
    let mut t = Table::new(["regions", "avg speedup"]);
    t.row([
        "interior only (paper)".to_string(),
        speedup(average_speedup(&paper, &machine, CrbConfig::paper())),
    ]);
    t.row([
        "interior + function-level".to_string(),
        speedup(average_speedup(
            &RegionConfig::with_function_level(),
            &machine,
            CrbConfig::paper(),
        )),
    ]);
    println!("{t}");

    println!("Ablation 7 — speculative reuse validation (paper §6 future work)");
    let mut t = Table::new(["validation", "avg speedup"]);
    t.row([
        "architectural (paper)".to_string(),
        speedup(average_speedup(&paper, &machine, CrbConfig::paper())),
    ]);
    t.row([
        "value-speculated".to_string(),
        speedup(average_speedup(
            &paper,
            &MachineConfig::with_speculative_validation(),
            CrbConfig::paper(),
        )),
    ]);
    println!("{t}");

    println!("Ablation 8 — nonuniform CRB capacities (paper §6 future work)");
    let mut t = Table::new(["geometry", "storage (CIs)", "avg speedup"]);
    t.row([
        "uniform 128 x 8 (paper)".to_string(),
        "1024".to_string(),
        speedup(average_speedup(&paper, &machine, CrbConfig::paper())),
    ]);
    // Same total instance storage, skewed: every 4th entry holds 20,
    // the rest hold 4.
    let skewed = CrbConfig {
        instances: 4,
        nonuniform: Some(NonuniformConfig {
            boost_every: 4,
            boosted_instances: 20,
            mem_capable_percent: 100,
        }),
        ..CrbConfig::paper()
    };
    t.row([
        "skewed 32 x 20 + 96 x 4".to_string(),
        "1024".to_string(),
        speedup(average_speedup(&paper, &machine, skewed)),
    ]);
    // Half the entries without memory-validation hardware.
    let half_mem = CrbConfig {
        nonuniform: Some(NonuniformConfig {
            boost_every: 1,
            boosted_instances: 8,
            mem_capable_percent: 50,
        }),
        ..CrbConfig::paper()
    };
    t.row([
        "50% entries memory-capable".to_string(),
        "1024".to_string(),
        speedup(average_speedup(&paper, &machine, half_mem)),
    ]);
    println!("{t}");
}

//! Figure 9: static and dynamic distribution of computation groups.
//!
//! Groups classify each region by class and input type: `SL_{n}` for
//! stateless with ≤ n register inputs, `MD_{n}_{m}` for
//! memory-dependent with ≤ n inputs and m distinguishable structures.
//!
//! Paper shape: the seven groups cover ~90 % of formed computations;
//! stateless groups are ~65 % of the static count and ~60 % of the
//! dynamic reuse.

use std::collections::HashMap;

use ccr_bench::{cli_jobs, run_suite, SCALE};
use ccr_core::report::{pct, Table};
use ccr_regions::{ComputationGroup, GroupDistribution};
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::InputSet;

fn main() {
    let runs = run_suite(
        InputSet::Train,
        SCALE,
        &ccr_regions::RegionConfig::paper(),
        &MachineConfig::paper(),
        CrbConfig::paper(),
        cli_jobs(),
    );

    let mut header = vec!["benchmark".to_string()];
    header.extend(ComputationGroup::ALL.iter().map(|g| g.label().to_string()));
    let mut static_table = Table::new(header.clone());
    let mut dynamic_table = Table::new(header);

    let mut all_static = GroupDistribution::default();
    let mut all_dynamic = GroupDistribution::default();

    for run in &runs {
        let stat = GroupDistribution::static_of(&run.compiled.regions);
        let weights: HashMap<_, _> = run
            .measurement
            .ccr
            .stats
            .regions
            .iter()
            .map(|(id, s)| (*id, s.skipped_instrs))
            .collect();
        let dynamic = GroupDistribution::dynamic_of(&run.compiled.regions, &weights);
        let render = |d: &GroupDistribution| -> Vec<String> {
            ComputationGroup::ALL
                .iter()
                .map(|g| {
                    if d.total() == 0.0 {
                        "-".to_string()
                    } else {
                        pct(d.fraction(*g))
                    }
                })
                .collect()
        };
        let mut srow = vec![run.name.to_string()];
        srow.extend(render(&stat));
        static_table.row(srow);
        let mut drow = vec![run.name.to_string()];
        drow.extend(render(&dynamic));
        dynamic_table.row(drow);
        for g in ComputationGroup::ALL {
            all_static.add(g, stat.fraction(g));
            if dynamic.total() > 0.0 {
                all_dynamic.add(g, dynamic.fraction(g));
            }
        }
    }
    let avg_row = |d: &GroupDistribution, t: &mut Table| {
        let mut row = vec!["average".to_string()];
        row.extend(
            ComputationGroup::ALL
                .iter()
                .map(|g| pct(d.fraction(*g)))
                .collect::<Vec<_>>(),
        );
        t.row(row);
    };
    avg_row(&all_static, &mut static_table);
    avg_row(&all_dynamic, &mut dynamic_table);

    println!("Figure 9(a) — static computation-group distribution");
    println!("{static_table}");
    println!(
        "stateless static fraction: {}",
        pct(all_static.stateless_fraction())
    );
    println!();
    println!("Figure 9(b) — dynamic computation-group distribution (by eliminated instructions)");
    println!("{dynamic_table}");
    println!(
        "stateless dynamic fraction: {}",
        pct(all_dynamic.stateless_fraction())
    );
    println!();
    println!("Paper: ~90% of computations in the seven groups; SL ≈ 65% static, ≈ 60% dynamic.");

    // Section 5.2: acyclic regions replace ~10 instructions on average.
    let mut sizes = Vec::new();
    for run in &runs {
        for info in &run.compiled.regions {
            if !info.spec.is_cyclic() {
                sizes.push(info.spec.static_instrs as f64);
            }
        }
    }
    if !sizes.is_empty() {
        println!(
            "acyclic regions replace on average {:.1} instructions (paper: ~10)",
            sizes.iter().sum::<f64>() / sizes.len() as f64
        );
    }
}

//! Figure 9 — thin shim over the experiment engine.
//!
//! `ccr exp fig9` is the canonical entry point; this binary is kept
//! for one release so existing scripts keep working. Output is
//! byte-identical to the pre-engine binary.

fn main() {
    ccr_bench::exp::shim_main("fig9_groups");
}

//! Criterion benchmarks over the paper's experiments themselves: the
//! time to regenerate one benchmark's Figure 8 data point (compile +
//! baseline + CCR simulation) and one Figure 4 data point (limit
//! study).

use ccr_bench::emu_config;
use ccr_core::measure::{measure, reuse_potential};
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::{build, InputSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figure8_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure8");
    g.sample_size(10);
    for name in ["124.m88ksim", "099.go", "pgpencode"] {
        g.bench_function(format!("speedup_{name}"), |b| {
            b.iter(|| {
                let compiled =
                    ccr_bench::compile_benchmark(name, InputSet::Train, 1, &RegionConfig::paper());
                let m = measure(
                    &compiled,
                    &MachineConfig::paper(),
                    CrbConfig::paper(),
                    emu_config(),
                )
                .unwrap();
                black_box(m.speedup());
            });
        });
    }
    g.finish();
}

fn bench_figure4_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure4");
    g.sample_size(10);
    let program = build("132.ijpeg", InputSet::Train, 1).unwrap();
    g.bench_function("potential_ijpeg", |b| {
        b.iter(|| {
            black_box(reuse_potential(&program, emu_config()).unwrap());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_figure8_point, bench_figure4_point);
criterion_main!(benches);

//! Microbenchmarks for the simulator's hot paths — the code the
//! host-performance work in DESIGN.md §9 targets: CRB instance
//! scanning (fingerprint pre-filter on vs off), ghost scanning, and
//! the pipeline's register ready-tracking.

use ccr_ir::{Reg, RegionId, Value};
use ccr_profile::{CrbModel, RecordedInstance};
use ccr_sim::{simulate_baseline, CrbConfig, MachineConfig, ReuseBuffer};
use ccr_workloads::{build, InputSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A 4-input instance whose values are derived from `seed`.
fn wide_instance(seed: i64) -> RecordedInstance {
    RecordedInstance {
        inputs: (1..=4)
            .map(|r| (Reg(r), Value::from_int(seed * 10 + r as i64)))
            .collect(),
        outputs: vec![(Reg(5), Value::from_int(seed))],
        accesses_memory: false,
        body_instrs: 12,
    }
}

/// A buffer whose entry for region 7 holds `CrbConfig::paper()`'s full
/// eight 4-input instances (seeds 0..8).
fn full_entry() -> ReuseBuffer {
    let mut buf = ReuseBuffer::new(CrbConfig::paper());
    for seed in 0..8 {
        buf.record(RegionId(7), wide_instance(seed));
    }
    buf
}

/// A buffer whose entry for region 7 holds sixty-four 4-input
/// instances — the long-entry case the chunked fingerprint-lane
/// compare targets.
fn long_entry() -> ReuseBuffer {
    let mut buf = ReuseBuffer::new(CrbConfig {
        instances: 64,
        ..CrbConfig::paper()
    });
    for seed in 0..64 {
        buf.record(RegionId(7), wide_instance(seed));
    }
    buf
}

fn bench_crb_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("crb_hotpath");

    // Hit on the oldest instance: the scan walks all eight input
    // banks; the fingerprint filter skips the seven non-matching full
    // compares.
    g.bench_function("lookup_hit", |b| {
        let mut buf = full_entry();
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });

    // Mismatch miss: eight live instances, none matching — the
    // filter's best case (eight fingerprint folds, zero full
    // compares).
    g.bench_function("lookup_mismatch_miss", |b| {
        let mut buf = full_entry();
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |_r| Value::from_int(-1)));
        });
    });

    // The same miss with the filter disabled: every instance pays a
    // full input-bank compare. The gap to `lookup_mismatch_miss` is
    // the fingerprint's win.
    g.bench_function("lookup_mismatch_miss_unfiltered", |b| {
        let mut buf = full_entry();
        buf.set_fingerprint_filter(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |_r| Value::from_int(-1)));
        });
    });

    // Ghost scan: sixteen further records evicted the original eight,
    // so a lookup for seed 0 misses the live instances and walks the
    // ghost list to classify the miss as a capacity casualty.
    g.bench_function("lookup_ghost_scan", |b| {
        let mut buf = full_entry();
        for seed in 8..24 {
            buf.record(RegionId(7), wide_instance(seed));
        }
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });

    // ---- SoA batched scan vs the scalar reference path ----
    // `set_batched_scan(false)` forces the per-candidate walk the
    // pre-SoA layout performed; the `_scalar` twins measure what the
    // structure-of-arrays banks buy on identical probes.

    g.bench_function("lookup_hit_scalar", |b| {
        let mut buf = full_entry();
        buf.set_batched_scan(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });

    g.bench_function("lookup_mismatch_miss_scalar", |b| {
        let mut buf = full_entry();
        buf.set_batched_scan(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |_r| Value::from_int(-1)));
        });
    });

    // Long entry: a 64-instance bank, mismatch probe — the chunked
    // fingerprint-lane compare's best case (sixteen 4-wide chunks,
    // zero full verifies) against sixty-four scalar fp folds.
    g.bench_function("lookup_mismatch_long_entry", |b| {
        let mut buf = long_entry();
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |_r| Value::from_int(-1)));
        });
    });
    g.bench_function("lookup_mismatch_long_entry_scalar", |b| {
        let mut buf = long_entry();
        buf.set_batched_scan(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |_r| Value::from_int(-1)));
        });
    });

    // Batched ghost classification vs the per-ghost walk.
    g.bench_function("lookup_ghost_scan_scalar", |b| {
        let mut buf = full_entry();
        for seed in 8..24 {
            buf.record(RegionId(7), wide_instance(seed));
        }
        buf.set_batched_scan(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });

    // Contiguous-slice verify vs pointer-chased pairs: with the
    // fingerprint filter off, every candidate pays a full input
    // compare — flat value rows against per-instance Vec walks.
    g.bench_function("lookup_verify_hit_contiguous", |b| {
        let mut buf = full_entry();
        buf.set_fingerprint_filter(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });
    g.bench_function("lookup_verify_hit_scalar", |b| {
        let mut buf = full_entry();
        buf.set_fingerprint_filter(false);
        buf.set_batched_scan(false);
        b.iter(|| {
            black_box(buf.lookup(RegionId(7), &mut |r| Value::from_int(r.0 as i64)));
        });
    });

    g.finish();
}

fn bench_pipeline_ready_tracking(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_hotpath");
    g.sample_size(10);
    // A call-heavy workload: every call pushes a frame with a dense
    // ready vector, every return merges results back — the paths the
    // register ready-tracking rewrite targets.
    let program = build("130.li", InputSet::Train, 1).unwrap();
    g.bench_function("ready_tracking_li", |b| {
        b.iter(|| {
            let out = simulate_baseline(&program, &MachineConfig::paper(), ccr_bench::emu_config())
                .unwrap();
            black_box(out.stats.cycles);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_crb_lookup, bench_pipeline_ready_tracking);
criterion_main!(benches);

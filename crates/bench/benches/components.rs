//! Criterion microbenchmarks for the framework's building blocks:
//! CRB lookup/record, cache and BTB accesses, raw emulation
//! throughput, the optimizer, and region formation.

use ccr_core::opt;
use ccr_ir::{Reg, RegionId, Value};
use ccr_profile::{CrbModel, Emulator, NullCrb, NullSink, RecordedInstance, ValueProfiler};
use ccr_regions::RegionConfig;
use ccr_sim::{Btb, Cache, CacheConfig, CrbConfig, ReuseBuffer};
use ccr_workloads::{build, InputSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_crb(c: &mut Criterion) {
    let mut g = c.benchmark_group("crb");
    g.bench_function("lookup_hit", |b| {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        buf.record(
            RegionId(5),
            RecordedInstance {
                inputs: vec![(Reg(1), Value::from_int(42))],
                outputs: vec![(Reg(2), Value::from_int(99))],
                accesses_memory: false,
                body_instrs: 10,
            },
        );
        b.iter(|| {
            black_box(buf.lookup(RegionId(5), &mut |_r| Value::from_int(42)));
        });
    });
    g.bench_function("lookup_miss", |b| {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        b.iter(|| {
            black_box(buf.lookup(RegionId(9), &mut |_r| Value::from_int(1)));
        });
    });
    g.bench_function("record_lru", |b| {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let mut v = 0i64;
        b.iter(|| {
            v = v.wrapping_add(1);
            buf.record(
                RegionId(3),
                RecordedInstance {
                    inputs: vec![(Reg(1), Value::from_int(v))],
                    outputs: vec![(Reg(2), Value::from_int(v * 2))],
                    accesses_memory: false,
                    body_instrs: 10,
                },
            );
        });
    });
    g.finish();
}

fn bench_cache_btb(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("dcache_sweep", |b| {
        let mut cache = Cache::new(CacheConfig::paper());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(32) & 0xf_ffff;
            black_box(cache.access(addr));
        });
    });
    g.bench_function("btb_update", |b| {
        let mut btb = Btb::paper();
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xffff;
            black_box(btb.update(pc, pc & 8 == 0));
        });
    });
    g.finish();
}

fn bench_emulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    g.sample_size(10);
    let program = build("008.espresso", InputSet::Train, 1).unwrap();
    g.bench_function("espresso_functional", |b| {
        b.iter(|| {
            let out = Emulator::new(&program)
                .run(&mut NullCrb, &mut NullSink)
                .unwrap();
            black_box(out.dyn_instrs);
        });
    });
    g.bench_function("espresso_profiled", |b| {
        b.iter(|| {
            let mut prof = ValueProfiler::for_program(&program);
            Emulator::new(&program)
                .run(&mut NullCrb, &mut prof)
                .unwrap();
            black_box(prof.finish().total_dyn_instrs);
        });
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.sample_size(10);
    let program = build("124.m88ksim", InputSet::Train, 1).unwrap();
    g.bench_function("optimize_m88ksim", |b| {
        b.iter(|| {
            let mut p = program.clone();
            black_box(opt::optimize(&mut p, opt::OptConfig::default()));
        });
    });
    let mut optimized = program.clone();
    opt::optimize(&mut optimized, opt::OptConfig::default());
    let mut prof = ValueProfiler::for_program(&optimized);
    Emulator::new(&optimized)
        .run(&mut NullCrb, &mut prof)
        .unwrap();
    let profile = prof.finish();
    g.bench_function("form_regions_m88ksim", |b| {
        b.iter(|| {
            black_box(ccr_regions::form_regions(
                &optimized,
                &profile,
                &RegionConfig::paper(),
            ));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crb,
    bench_cache_btb,
    bench_emulation,
    bench_compiler
);
criterion_main!(benches);

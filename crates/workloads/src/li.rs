//! `130.li` — XLISP interpreter.
//!
//! Models the evaluator's hot path: the same small s-expressions are
//! evaluated over and over (lisp benchmarks loop over a handful of
//! forms). Each form is a `(op, lhs, rhs)` triple from a small pool;
//! `eval_form` dispatches on the operator and applies a read-only
//! environment lookup — a textbook region-reuse target.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 2600;
const FORMS: i64 = 128;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0130, input);
    let mut pb = ProgramBuilder::new();
    // Six distinct forms; the form stream repeats them (lisp
    // benchmarks loop over the same handful of expressions).
    let form_ids = pb.table("form_ids", g.pooled(FORMS as usize, 6, 0, 6));
    let ops = pb.table("form_op", g.noise(6, 0, 4));
    let lhss = pb.table("form_lhs", g.noise(6, 0, 32));
    let rhss = pb.table("form_rhs", g.noise(6, 0, 32));
    let env = pb.table("environment", g.noise(32, -64, 64));
    let heap_meta = rw_table(&mut pb, "heap_meta", vec![0; 128]);

    // eval_form(op, l, r): symbol lookup + operator dispatch.
    let eval_form = pb.declare("eval_form", 3, 1);
    {
        let mut f = pb.function_body(eval_form);
        let (op, l, r) = (f.param(0), f.param(1), f.param(2));
        let lv = f.load(env, l);
        let rv = f.load(env, r);
        let result = f.fresh();
        let arm_add = f.block();
        let arm_sub = f.block();
        let arm_mul = f.block();
        let arm_cons = f.block();
        let hi = f.block();
        let out = f.block();
        // nil result for operators without a dedicated arm (op = 3).
        f.assign(result, -1);
        f.br(CmpPred::Le, op, 1, arm_add, hi);
        f.switch_to(arm_add);
        f.br(CmpPred::Eq, op, 0, arm_sub, arm_mul);
        f.switch_to(arm_sub);
        f.bin_into(BinKind::Add, result, lv, rv);
        f.jump(out);
        f.switch_to(arm_mul);
        f.bin_into(BinKind::Sub, result, lv, rv);
        f.jump(out);
        f.switch_to(hi);
        f.br(CmpPred::Eq, op, 2, arm_cons, out);
        f.switch_to(arm_cons);
        f.bin_into(BinKind::Mul, result, lv, rv);
        f.jump(out);
        f.switch_to(out);
        // Boxing and type-tag plumbing: a serial chain on the result
        // (this is where reuse beats the dataflow limit).
        let b1 = f.mul(result, 31);
        let b2 = f.add(b1, op);
        let b3 = f.xor(b2, l);
        let b4 = f.mul(b3, 17);
        let b5 = f.add(b4, r);
        let b6 = f.shl(b5, 3);
        let b7 = f.xor(b6, b5);
        let b8 = f.add(b7, 42);
        let b9 = f.mul(b8, 7);
        let boxed = f.xor(b9, result);
        f.ret(&[Operand::Reg(boxed)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "li", 5);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, FORMS - 1);
        let fid = f.load(form_ids, idx);
        let op = f.load(ops, fid);
        let l = f.load(lhss, fid);
        let r = f.load(rhss, fid);
        let v = f.call(
            eval_form,
            &[Operand::Reg(op), Operand::Reg(l), Operand::Reg(r)],
            1,
        )[0];
        // Allocator/GC bookkeeping: free-list cursors never repeat.
        let book = emit_bookkeeping(f, i, heap_meta, 127, 7);
        let tagged = f.shl(v, 2);
        let cell = f.or(tagged, 1);
        let w = f.add(cell, book);
        f.bin_into(BinKind::Add, check, check, w);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn result_register_defined_on_every_arm() {
        // op=3 reaches `out` without a dedicated arm; the verifier
        // must still accept (result defaults are set on all paths) —
        // guard against builder regressions.
        let p = build(InputSet::Ref, 1);
        ccr_ir::verify_program(&p).unwrap();
    }
}

//! `mpeg2enc` — MPEG-2 video encoder (MediaBench).
//!
//! Models macroblock quantization: coefficient rows are mostly zero
//! or drawn from a few recurring patterns (static backgrounds repeat
//! across frames), and each row goes through scale/round/clip
//! arithmetic including a floating-point rate-control factor — the
//! suite's FP-unit exerciser.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder, UnKind};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 1800;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x2e2c, input);
    let mut pb = ProgramBuilder::new();
    // Coefficient stream: 70% zeros, the rest from a small pool.
    let coeffs: Vec<i64> = {
        let pool = g.pooled(512, 5, -128, 128);
        pool.into_iter()
            .enumerate()
            .map(|(k, v)| if k % 10 < 7 { 0 } else { v })
            .collect()
    };
    let coeff_tbl = pb.table("coeffs", coeffs);
    let qscale_bits = pb.table(
        "qscale",
        vec![
            f64::to_bits(1.0) as i64,
            f64::to_bits(1.25) as i64,
            f64::to_bits(1.5) as i64,
            f64::to_bits(2.0) as i64,
        ],
    );

    // quant(c, qsel): scale, round, clip one coefficient.
    let quant = pb.declare("quant", 2, 1);
    {
        let mut f = pb.function_body(quant);
        let (c, qsel) = (f.param(0), f.param(1));
        let zero_blk = f.block();
        let work_blk = f.block();
        let out = f.block();
        let q = f.fresh();
        f.br(CmpPred::Eq, c, 0, zero_blk, work_blk);
        f.switch_to(zero_blk);
        // Fast path: zero coefficients quantize to zero.
        f.assign(q, 0);
        f.jump(out);
        f.switch_to(work_blk);
        let fc = f.un(UnKind::IntToFloat, c);
        let qs = f.load(qscale_bits, qsel);
        let scaled = f.bin(BinKind::FDiv, fc, qs);
        let iv = f.un(UnKind::FloatToInt, scaled);
        let clipped_hi = f.bin(BinKind::Min, iv, 127);
        f.bin_into(BinKind::Max, q, clipped_hi, -128);
        f.jump(out);
        f.switch_to(out);
        // Reconstruction feedback (dequantize): serial on the
        // quantized value.
        let d1 = f.mul(q, 13);
        let d2 = f.add(d1, qsel);
        let d3 = f.xor(d2, q);
        let recon = f.sar(d3, 1);
        f.ret(&[Operand::Reg(recon)]);
        pb.finish_function(f);
    }

    // Rate control changes the quantizer scale rarely.
    let qsel_stream = pb.table("qsel_stream", g.pooled(256, 2, 0, 4));
    let vlc_buf = rw_table(&mut pb, "vlc_buf", vec![0; 256]);

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "mpg", 3);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx0 = f.shl(i, 2);
        let qm = f.and(i, 255);
        let qsel = f.load(qsel_stream, qm);
        // Quantize a 4-coefficient group per trip.
        let mut acc = None;
        for k in 0..4 {
            let idxk = f.add(idx0, k);
            let im = f.and(idxk, 511);
            let c = f.load(coeff_tbl, im);
            let q = f.call(quant, &[Operand::Reg(c), Operand::Reg(qsel)], 1)[0];
            acc = Some(match acc {
                None => q,
                Some(prev) => f.add(prev, q),
            });
        }
        let row = acc.expect("non-empty group");
        // Run-length flavoured checksum.
        let nz = f.cmp(CmpPred::Ne, row, 0);
        // Variable-length-code output: bit-position dependent.
        let book = emit_bookkeeping(f, i, vlc_buf, 255, 4);
        let w = f.shl(row, 1);
        let w2 = f.or(w, nz);
        let w3 = f.add(w2, book);
        f.bin_into(BinKind::Add, check, check, w3);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::OpClass;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn exercises_the_fp_units() {
        let p = build(InputSet::Train, 1);
        struct C(u64);
        impl ccr_profile::TraceSink for C {
            fn on_exec(&mut self, e: &ccr_profile::ExecEvent<'_>) {
                if e.instr.class() == OpClass::FpAlu {
                    self.0 += 1;
                }
            }
        }
        let mut c = C(0);
        Emulator::new(&p).run(&mut NullCrb, &mut c).unwrap();
        assert!(c.0 > 1000, "fp ops executed: {}", c.0);
    }

    #[test]
    fn most_coefficients_are_zero() {
        let p = build(InputSet::Train, 1);
        let t = p.objects().iter().find(|o| o.name() == "coeffs").unwrap();
        let zeros = t.init().iter().filter(|v| v.as_int() == 0).count();
        assert!(zeros as f64 > 0.6 * t.init().len() as f64);
    }
}

//! `bitcount` — the paper's Figure 2 `count_ones` macro as a tiny
//! standalone smoke workload.
//!
//! A few hundred trips over a pooled word stream feeding the
//! four-byte `bit_count[]` decomposition. Small enough for CI smoke
//! runs and telemetry fixtures, with the same high block-level value
//! locality as `008.espresso`'s motivating kernel. Not part of
//! [`crate::NAMES`] — it models a figure, not a paper benchmark.

use ccr_ir::{BinKind, Operand, Program, ProgramBuilder};

use crate::util::{bit_count_table, counted_loop, DataGen};
use crate::InputSet;

/// Base driver trips at scale 1.
const TRIPS: i64 = 300;

/// Builds the workload.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0xb17c, input);
    let mut pb = ProgramBuilder::new();
    let bit_count = pb.table("bit_count", bit_count_table());
    // The examined words repeat: a 64-slot stream from a 6-word pool.
    let words = pb.table("words", g.pooled(64, 6, 0, 1 << 31));

    // count_ones(v): the Figure 2 macro, verbatim structure.
    let count_ones = pb.declare("count_ones", 1, 1);
    {
        let mut f = pb.function_body(count_ones);
        let v = f.param(0);
        let b0 = f.and(v, 255);
        let c0 = f.load(bit_count, b0);
        let s1 = f.shr(v, 8);
        let b1 = f.and(s1, 255);
        let c1 = f.load(bit_count, b1);
        let s2 = f.shr(v, 16);
        let b2 = f.and(s2, 255);
        let c2 = f.load(bit_count, b2);
        let s3 = f.shr(v, 24);
        let b3 = f.and(s3, 255);
        let c3 = f.load(bit_count, b3);
        let t0 = f.add(c0, c1);
        let t1 = f.add(c2, c3);
        let n = f.add(t0, t1);
        f.ret(&[Operand::Reg(n)]);
        pb.finish_function(f);
    }

    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    counted_loop(&mut f, TRIPS * i64::from(scale), |f, i, _exit| {
        let sel = f.and(i, 63);
        let v = f.load(words, sel);
        let ones = f.call(count_ones, &[Operand::Reg(v)], 1)[0];
        f.bin_into(BinKind::Add, acc, acc, ones);
    });
    f.ret(&[Operand::Reg(acc)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

//! `132.ijpeg` — image compression.
//!
//! Models the forward-DCT + quantization kernel over an image whose
//! rows repeat heavily (flat backgrounds dominate photographs at the
//! block level). The 8-point butterfly is one long straight-line
//! stateless computation per row — exactly the "large acyclic region"
//! shape; rows come from a small pool, so the region's input row
//! index repeats.

use ccr_ir::{BinKind, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 1400;
const ROW_POOL: usize = 6;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0132, input);
    let mut pb = ProgramBuilder::new();
    // The image: 64 rows of 8 pixels, each row one of ROW_POOL
    // patterns, flattened row-major. Encode as row_id stream + pooled
    // row contents.
    let row_patterns: Vec<i64> = (0..ROW_POOL * 8).map(|_| g.int(0, 256)).collect();
    let rows = pb.table("row_patterns", row_patterns);
    let row_ids = pb.table("row_ids", g.pooled(256, ROW_POOL, 0, ROW_POOL as i64));
    let quant = pb.table("quant_tbl", g.noise(8, 1, 32));
    let bitstream = rw_table(&mut pb, "bitstream", vec![0; 512]);

    // dct_row(row_base): 8 loads + butterfly network + quantization.
    let dct_row = pb.declare("dct_row", 1, 1);
    {
        let mut f = pb.function_body(dct_row);
        let base = f.param(0);
        let xs: Vec<_> = (0..8).map(|k| f.load_off(rows, base, k)).collect();
        // Stage 1 butterflies.
        let s0 = f.add(xs[0], xs[7]);
        let s1 = f.add(xs[1], xs[6]);
        let s2 = f.add(xs[2], xs[5]);
        let s3 = f.add(xs[3], xs[4]);
        let d0 = f.sub(xs[0], xs[7]);
        let d1 = f.sub(xs[1], xs[6]);
        let d2 = f.sub(xs[2], xs[5]);
        let d3 = f.sub(xs[3], xs[4]);
        // Stage 2.
        let t0 = f.add(s0, s3);
        let t1 = f.add(s1, s2);
        let t2 = f.sub(s0, s3);
        let t3 = f.sub(s1, s2);
        // Fixed-point rotations (integer DCT approximations).
        let c0 = f.add(t0, t1);
        let c4 = f.sub(t0, t1);
        let m2 = f.mul(t2, 277);
        let m3 = f.mul(t3, 669);
        let c2 = f.add(m2, m3);
        let m6a = f.mul(t2, 669);
        let m6b = f.mul(t3, 277);
        let c6 = f.sub(m6a, m6b);
        let o1 = f.mul(d0, 251);
        let o3 = f.mul(d1, 213);
        let o5 = f.mul(d2, 142);
        let o7 = f.mul(d3, 49);
        // Quantize the four even coefficients.
        let q0t = f.load(quant, 0);
        let q0 = f.div(c0, q0t);
        let q2t = f.load(quant, 2);
        let q2 = f.div(c2, q2t);
        let q4t = f.load(quant, 4);
        let q4 = f.div(c4, q4t);
        let q6t = f.load(quant, 6);
        let q6 = f.div(c6, q6t);
        let e0 = f.add(q0, q2);
        let e1 = f.add(q4, q6);
        let odd0 = f.add(o1, o3);
        let odd1 = f.add(o5, o7);
        let even = f.add(e0, e1);
        let odd = f.sar(odd0, 8);
        let odd2 = f.sar(odd1, 8);
        let acc0 = f.add(even, odd);
        let acc = f.add(acc0, odd2);
        f.ret(&[Operand::Reg(acc)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "jpg", 4);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 255);
        let rid = f.load(row_ids, idx);
        let base = f.shl(rid, 3);
        let coeff = f.call(dct_row, &[Operand::Reg(base)], 1)[0];
        // Entropy-coding emulation: bit packing into the output
        // stream depends on the running bit position, never repeats.
        let book = emit_bookkeeping(f, i, bitstream, 511, 11);
        let w = f.add(coeff, book);
        f.bin_into(BinKind::Add, check, check, w);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink, PotentialStudy};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn dct_rows_repeat_making_paths_reusable() {
        let p = build(InputSet::Train, 1);
        let mut study = PotentialStudy::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut study).unwrap();
        let pot = study.finish();
        assert!(
            pot.region_ratio() > 0.35,
            "repeated rows should be region-reusable: {}",
            pot.region_ratio()
        );
    }
}

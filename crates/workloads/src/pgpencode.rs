//! `pgpencode` — public-key encryption (UNIX suite).
//!
//! The paper notes pgpencode's speedup grows sharply with the number
//! of computation instances: "a number of stateless computation
//! regions were formed ... but the computations have considerable
//! dynamic variation. A large number of computation instances is able
//! to effectively handle this variation." We model that: a modular
//! multiply-square chain whose message blocks come from a pool of
//! *twelve* distinct values — more than a 4- or 8-instance entry can
//! hold, comfortably within 16.

use ccr_ir::{BinKind, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 2400;
/// Distinct message blocks: between 8 and 16 CIs by design.
const BLOCK_POOL: usize = 12;
const MODULUS: i64 = 65_521; // largest prime below 2^16

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x9690, input);
    let mut pb = ProgramBuilder::new();
    let blocks = pb.table("blocks", g.zipfish(512, BLOCK_POOL, 1, MODULUS));
    let out_buf = rw_table(&mut pb, "out_buf", vec![0; 256]);
    let key = g.int(3, MODULUS);

    // modpow_step(m): (m*k % p) squared twice mod p — the RSA-flavoured
    // kernel, all stateless arithmetic from one input register.
    let modpow = pb.declare("modpow_step", 1, 1);
    {
        let mut f = pb.function_body(modpow);
        let m = f.param(0);
        let t0 = f.mul(m, key);
        let x0 = f.rem(t0, MODULUS);
        let t1 = f.mul(x0, x0);
        let x1 = f.rem(t1, MODULUS);
        let t2 = f.mul(x1, x1);
        let x2 = f.rem(t2, MODULUS);
        let t3 = f.mul(x2, x0);
        let x3 = f.rem(t3, MODULUS);
        let folded = f.xor(x3, x1);
        f.ret(&[Operand::Reg(folded)]);
        pb.finish_function(f);
    }

    // armor(v): base64-ish output armoring (stateless bit slicing).
    let armor = pb.declare("armor", 1, 1);
    {
        let mut f = pb.function_body(armor);
        let v = f.param(0);
        let a = f.and(v, 63);
        let bsh = f.shr(v, 6);
        let b = f.and(bsh, 63);
        let csh = f.shr(v, 12);
        let c = f.and(csh, 63);
        let s1 = f.add(a, b);
        let s2 = f.add(s1, c);
        let packed = f.shl(s2, 2);
        f.ret(&[Operand::Reg(packed)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "pgp", 4);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 511);
        let m = f.load(blocks, idx);
        let enc = f.call(modpow, &[Operand::Reg(m)], 1)[0];
        let arm = f.call(armor, &[Operand::Reg(enc)], 1)[0];
        // Output framing: packet headers, lengths, CRC state — all
        // position-dependent.
        let book = emit_bookkeeping(f, i, out_buf, 255, 8);
        let w = f.add(arm, book);
        f.bin_into(BinKind::Add, check, check, w);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn block_pool_is_between_eight_and_sixteen() {
        let p = build(InputSet::Train, 1);
        let t = p.objects().iter().find(|o| o.name() == "blocks").unwrap();
        let mut vals: Vec<i64> = t.init().iter().map(|v| v.as_int()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(
            vals.len() > 8 && vals.len() <= 16,
            "pool size {} must straddle the 8-CI capacity",
            vals.len()
        );
    }
}

//! `129.compress` — LZW-style compression.
//!
//! Models the benchmark the paper singles out in Figure 10 as having
//! a *flat* reuse distribution: the dictionary hash evolves with the
//! input (stores to the hash table are frequent), the `prefix` value
//! changes nearly every step, and no single computation dominates.
//! Reuse exists only in the per-character class/shift arithmetic.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 3200;
const DICT: i64 = 512;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0129, input);
    let mut pb = ProgramBuilder::new();
    let text = pb.table("text", g.zipfish(1024, 20, 0, 96));
    let dict = rw_table(&mut pb, "dict", vec![0; DICT as usize]);
    let classes = pb.table("char_class", g.noise(96, 0, 8));
    let out_stream = rw_table(&mut pb, "out_stream", vec![0; 256]);

    // step(prefix, c): the LZW probe-and-insert kernel.
    let step = pb.declare("lzw_step", 2, 2);
    {
        let mut f = pb.function_body(step);
        let (prefix, c) = (f.param(0), f.param(1));
        let key = f.shl(prefix, 7);
        let key2 = f.xor(key, c);
        let km = f.and(key2, (1 << 20) - 1);
        let h1 = f.mul(km, 31);
        let h = f.and(h1, DICT - 1);
        let entry = f.load(dict, h);
        let hit_blk = f.block();
        let miss_blk = f.block();
        let out = f.block();
        let code = f.fresh();
        f.br(CmpPred::Eq, entry, km, hit_blk, miss_blk);
        f.switch_to(hit_blk);
        // Match: extend the phrase.
        f.assign(code, km);
        f.jump(out);
        f.switch_to(miss_blk);
        // Miss: emit + install new phrase (the store that keeps the
        // memory state churning).
        f.store(dict, h, km);
        f.assign(code, c);
        f.jump(out);
        f.switch_to(out);
        f.ret(&[Operand::Reg(code), Operand::Reg(h)]);
        pb.finish_function(f);
    }

    // classify(c): small reusable per-character arithmetic.
    let classify = pb.declare("classify", 1, 1);
    {
        let mut f = pb.function_body(classify);
        let c = f.param(0);
        let cls = f.load(classes, c);
        let w = f.shl(cls, 3);
        let v = f.or(w, cls);
        let u1 = f.add(v, 13);
        let u2 = f.mul(u1, 37);
        let u3 = f.xor(u2, c);
        let u4 = f.sar(u3, 2);
        let u5 = f.add(u4, cls);
        let u = f.mul(u5, 3);
        f.ret(&[Operand::Reg(u)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "cmp", 4);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    let prefix = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 1023);
        let c = f.load(text, idx);
        let res = f.call(step, &[Operand::Reg(prefix), Operand::Reg(c)], 2);
        f.assign(prefix, res[0]);
        let cls = f.call(classify, &[Operand::Reg(c)], 1)[0];
        // Output code emission: bit-position dependent.
        let book = emit_bookkeeping(f, i, out_stream, 255, 5);
        let w = f.add(res[1], cls);
        let w2 = f.add(w, book);
        f.bin_into(BinKind::Add, check, check, w2);
        call_battery(f, &battery, i, check);
    });
    let c = f.xor(check, prefix);
    f.ret(&[Operand::Reg(c)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn dictionary_stores_are_frequent() {
        let p = build(InputSet::Train, 1);
        struct C(u64);
        impl ccr_profile::TraceSink for C {
            fn on_exec(&mut self, e: &ccr_profile::ExecEvent<'_>) {
                if e.mem.is_some_and(|m| m.is_store) {
                    self.0 += 1;
                }
            }
        }
        let mut c = C(0);
        Emulator::new(&p).run(&mut NullCrb, &mut c).unwrap();
        assert!(c.0 > 100, "dictionary churn expected, got {} stores", c.0);
    }
}

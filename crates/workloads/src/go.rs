//! `099.go` — game playing.
//!
//! The paper's hardest benchmark (smallest CCR win): board evaluation
//! walks continually-changing state with data-dependent branches, so
//! little of the execution repeats. The board mutates every move, the
//! position stream is noise, and only a small 3-point pattern matcher
//! retains any locality.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{call_battery, counted_loop, kernel_battery, rw_table, DataGen};
use crate::InputSet;

const TRIPS: i64 = 2400;
const BOARD: i64 = 64;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0099, input);
    let mut pb = ProgramBuilder::new();
    // A realistic position: most points are empty.
    let board_init: Vec<i64> = (0..BOARD)
        .map(|k| {
            let v = g.int(0, 10);
            if k % 3 == 0 || v < 7 {
                0
            } else {
                v % 2 + 1
            }
        })
        .collect();
    let board = rw_table(&mut pb, "board", board_init);
    let moves = pb.table("move_stream", g.noise(1024, 0, BOARD));
    let patterns = pb.table("pattern_value", g.noise(27, -4, 5));

    // liberties(pos): branchy neighborhood evaluation over evolving
    // board state — the non-reusable core.
    let liberties = pb.declare("liberties", 1, 1);
    {
        let mut f = pb.function_body(liberties);
        let pos = f.param(0);
        let score = f.movi(0);
        let left = f.sub(pos, 1);
        let lm = f.and(left, BOARD - 1);
        let lv = f.load(board, lm);
        let right = f.add(pos, 1);
        let rm = f.and(right, BOARD - 1);
        let rv = f.load(board, rm);
        let up = f.sub(pos, 8);
        let um = f.and(up, BOARD - 1);
        let uv = f.load(board, um);
        let l_empty = f.block();
        let after_l = f.block();
        f.br(CmpPred::Eq, lv, 0, l_empty, after_l);
        f.switch_to(l_empty);
        f.bin_into(BinKind::Add, score, score, 1);
        f.jump(after_l);
        f.switch_to(after_l);
        let r_empty = f.block();
        let after_r = f.block();
        f.br(CmpPred::Eq, rv, 0, r_empty, after_r);
        f.switch_to(r_empty);
        f.bin_into(BinKind::Add, score, score, 1);
        f.jump(after_r);
        f.switch_to(after_r);
        let u_mine = f.block();
        let after_u = f.block();
        f.br(CmpPred::Eq, uv, 1, u_mine, after_u);
        f.switch_to(u_mine);
        f.bin_into(BinKind::Add, score, score, 2);
        f.jump(after_u);
        f.switch_to(after_u);
        f.ret(&[Operand::Reg(score)]);
        pb.finish_function(f);
    }

    // pattern3(a, b, c): ternary 3-point pattern value — the one
    // kernel with some input locality (27 possible patterns).
    let pattern3 = pb.declare("pattern3", 3, 1);
    {
        let mut f = pb.function_body(pattern3);
        let (a, b, c) = (f.param(0), f.param(1), f.param(2));
        let t1 = f.mul(a, 9);
        let t2 = f.mul(b, 3);
        let t3 = f.add(t1, t2);
        let key = f.add(t3, c);
        let v = f.load(patterns, key);
        // Symmetry folding: rotate/reflect canonicalization chain.
        let s1 = f.mul(v, 5);
        let s2 = f.add(s1, key);
        let s3 = f.xor(s2, a);
        let s4 = f.mul(s3, 3);
        let s5 = f.sub(s4, b);
        let s6 = f.shl(s5, 1);
        let folded = f.add(s6, c);
        f.ret(&[Operand::Reg(folded)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "go", 3);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 1023);
        let pos = f.load(moves, idx);
        let libs = f.call(liberties, &[Operand::Reg(pos)], 1)[0];
        let a = f.load(board, pos);
        let p1 = f.add(pos, 1);
        let p1m = f.and(p1, BOARD - 1);
        let b = f.load(board, p1m);
        let p2 = f.add(pos, 8);
        let p2m = f.and(p2, BOARD - 1);
        let c = f.load(board, p2m);
        let pat = f.call(
            pattern3,
            &[Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
            1,
        )[0];
        // Play the move: the board never stops changing.
        let stone = f.and(i, 1);
        let stone1 = f.add(stone, 1);
        f.store(board, pos, stone1);
        let w = f.add(libs, pat);
        f.bin_into(BinKind::Add, check, check, w);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink, PotentialStudy};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn reuse_potential_is_low() {
        let p = build(InputSet::Train, 1);
        let mut study = PotentialStudy::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut study).unwrap();
        let pot = study.finish();
        assert!(
            pot.region_ratio() < 0.45,
            "go must be reuse-poor: {}",
            pot.region_ratio()
        );
    }
}

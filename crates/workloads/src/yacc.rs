//! `yacc` — LALR parser generator runtime.
//!
//! Models the generated parser's hot loop: index the action table by
//! `(state, token)`, follow the goto table on reductions, and compute
//! semantic-value plumbing. Grammars see a small token vocabulary
//! with a few dominating productions, so the action/goto chains
//! repeat heavily.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{call_battery, counted_loop, kernel_battery, DataGen};
use crate::InputSet;

const TRIPS: i64 = 2600;
const STATES: i64 = 8;
const TOKENS: i64 = 16;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0xacc, input);
    let mut pb = ProgramBuilder::new();
    let stream = pb.table("token_stream", g.zipfish(512, TOKENS as usize, 0, TOKENS));
    let action = pb.table("action_tbl", g.noise((STATES * TOKENS) as usize, 0, 4));
    let goto_t = pb.table("goto_tbl", g.noise((STATES * 4) as usize, 0, STATES));
    let rule_len = pb.table("rule_len", g.noise(4, 1, 4));

    // parse_step(state, tok): action lookup + reduce/goto arithmetic.
    let parse_step = pb.declare("parse_step", 2, 2);
    {
        let mut f = pb.function_body(parse_step);
        let (state, tok) = (f.param(0), f.param(1));
        let row = f.mul(state, TOKENS);
        let cell = f.add(row, tok);
        let act = f.load(action, cell);
        let next = f.fresh();
        let val = f.fresh();
        let shift = f.block();
        let reduce = f.block();
        let out = f.block();
        f.br(CmpPred::Le, act, 1, shift, reduce);
        f.switch_to(shift);
        // Shift: goto-row walk keyed by action.
        let srow = f.mul(state, 4);
        let scell = f.add(srow, act);
        f.load_into(next, goto_t, scell, 0);
        f.bin_into(BinKind::Add, val, tok, 100);
        f.jump(out);
        f.switch_to(reduce);
        // Reduce: pop rule_len symbols, push the nonterminal.
        let rlx = f.and(act, 3);
        let rl = f.load(rule_len, rlx);
        let popped = f.sub(state, rl);
        let pm = f.and(popped, STATES - 1);
        let grow = f.mul(pm, 4);
        let gcell = f.add(grow, rlx);
        f.load_into(next, goto_t, gcell, 0);
        f.bin_into(BinKind::Mul, val, rl, 7);
        f.jump(out);
        f.switch_to(out);
        // Semantic-value plumbing: serial on (state, tok, val).
        let v1 = f.mul(val, 11);
        let v2 = f.add(v1, tok);
        let v3 = f.xor(v2, state);
        let v4 = f.mul(v3, 5);
        let v5 = f.add(v4, val);
        let v6 = f.sar(v5, 1);
        let v7 = f.xor(v6, v4);
        let sem = f.add(v7, 29);
        f.ret(&[Operand::Reg(next), Operand::Reg(sem)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "yac", 5);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    let state = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 511);
        let tok = f.load(stream, idx);
        let res = f.call(parse_step, &[Operand::Reg(state), Operand::Reg(tok)], 2);
        f.assign(state, res[0]);
        f.bin_into(BinKind::Add, check, check, res[1]);
        call_battery(f, &battery, i, check);
    });
    let c = f.xor(check, state);
    f.ret(&[Operand::Reg(c)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn parser_state_stays_in_range() {
        let p = build(InputSet::Train, 1);
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        // The checksum folds the final state; just ensure it halted
        // normally with one return value.
        assert_eq!(out.returned.len(), 1);
    }
}

//! `lex` — lexical-analyzer generator runtime.
//!
//! Models the generated scanner's inner kernel: classify a character,
//! step the automaton through the transition table, and accumulate
//! token attributes. Program text is extremely repetitive (a dozen
//! characters dominate), so the per-character classify/transition
//! chain sees few distinct inputs — one of the paper's strongest
//! UNIX-benchmark results.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 3000;
const STATES: i64 = 4;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x1e4, input);
    let mut pb = ProgramBuilder::new();
    let text = pb.table("text", g.zipfish(1024, 8, 0, 96));
    let classes = pb.table("char_class", g.noise(96, 0, 6));
    let delta = pb.table("delta", g.noise((STATES * 6) as usize, 0, 2));
    let accept = pb.table("accept_tbl", g.noise(STATES as usize, 0, 2));
    let yytext = rw_table(&mut pb, "yytext", vec![0; 128]);

    // scan_char(state, c): classify + transition + attribute.
    let scan_char = pb.declare("scan_char", 2, 2);
    {
        let mut f = pb.function_body(scan_char);
        let (state, c) = (f.param(0), f.param(1));
        let cls = f.load(classes, c);
        let row = f.mul(state, 6);
        let cell = f.add(row, cls);
        let next = f.load(delta, cell);
        let acc = f.load(accept, next);
        // Token-attribute computation: case folding, escape
        // detection, and yytext hashing — all pure functions of
        // (state, c).
        let upper = f.sub(c, 32);
        let folded = f.bin(BinKind::Max, upper, 0);
        let esc = f.xor(c, 92);
        let is_esc = f.cmp(CmpPred::Eq, esc, 0);
        let h1 = f.mul(folded, 131);
        let h2 = f.add(h1, cls);
        let h3 = f.shl(h2, 1);
        let h4 = f.xor(h3, c);
        let attr1 = f.shl(cls, 4);
        let attr2 = f.or(attr1, acc);
        let attr3 = f.add(attr2, 3);
        let attr4 = f.add(attr3, h4);
        let attr5 = f.shl(is_esc, 7);
        let attr = f.or(attr4, attr5);
        f.ret(&[Operand::Reg(next), Operand::Reg(attr)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "lex", 4);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    let state = f.movi(0);
    let tokens = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 1023);
        let c = f.load(text, idx);
        let res = f.call(scan_char, &[Operand::Reg(state), Operand::Reg(c)], 2);
        f.assign(state, res[0]);
        // Token boundary on return to state 0.
        let tok = f.block();
        let merge = f.block();
        f.br(CmpPred::Eq, state, 0, tok, merge);
        f.switch_to(tok);
        f.bin_into(BinKind::Add, tokens, tokens, 1);
        f.jump(merge);
        f.switch_to(merge);
        // yytext buffer append: cursor-dependent, never repeats.
        let book = emit_bookkeeping(f, i, yytext, 127, 3);
        let w = f.add(res[1], book);
        f.bin_into(BinKind::Add, check, check, w);
        call_battery(f, &battery, i, check);
    });
    let c = f.xor(check, tokens);
    f.ret(&[Operand::Reg(c)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink, PotentialStudy};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn scanner_has_strong_region_reuse_potential() {
        let p = build(InputSet::Train, 1);
        let mut study = PotentialStudy::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut study).unwrap();
        let pot = study.finish();
        assert!(
            pot.region_ratio() > 0.25,
            "lex should be reuse-rich: {}",
            pot.region_ratio()
        );
    }
}

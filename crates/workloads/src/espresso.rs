//! `008.espresso` — two-level logic minimization.
//!
//! Models the paper's own motivating example (Figure 2): the
//! `count_ones` macro splitting a 32-bit word into four bytes indexed
//! into the static `bit_count[]` table, plus cube set operations
//! (intersection / containment) over a working set drawn from a small
//! pool of cube words. Block-level value locality is high: the same
//! cubes are examined again and again during minimization.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{bit_count_table, call_battery, counted_loop, kernel_battery, DataGen};
use crate::InputSet;

/// Base driver trips at scale 1.
const TRIPS: i64 = 2600;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0008, input);
    let mut pb = ProgramBuilder::new();
    let bit_count = pb.table("bit_count", bit_count_table());
    // Cube working set: 256 slots drawn from a 5-cube pool.
    let cubes_a = pb.table("cubes_a", g.pooled(256, 5, 0, 1 << 31));
    let cubes_b = pb.table("cubes_b", g.pooled(256, 5, 0, 1 << 31));

    // count_ones(v): the paper's Figure 2 macro, verbatim structure.
    let count_ones = pb.declare("count_ones", 1, 1);
    {
        let mut f = pb.function_body(count_ones);
        let v = f.param(0);
        let b0 = f.and(v, 255);
        let c0 = f.load(bit_count, b0);
        let s1 = f.shr(v, 8);
        let b1 = f.and(s1, 255);
        let c1 = f.load(bit_count, b1);
        let s2 = f.shr(v, 16);
        let b2 = f.and(s2, 255);
        let c2 = f.load(bit_count, b2);
        let s3 = f.shr(v, 24);
        let b3 = f.and(s3, 255);
        let c3 = f.load(bit_count, b3);
        let t0 = f.add(c0, c1);
        let t1 = f.add(c2, c3);
        let n = f.add(t0, t1);
        f.ret(&[Operand::Reg(n)]);
        pb.finish_function(f);
    }

    // cube_ops(a, b): intersection emptiness + containment checks,
    // the inner kernel of espresso's cover manipulation.
    let cube_ops = pb.declare("cube_ops", 2, 1);
    {
        let mut f = pb.function_body(cube_ops);
        let (a, b) = (f.param(0), f.param(1));
        let inter = f.and(a, b);
        let uni = f.or(a, b);
        let contains = f.cmp(CmpPred::Eq, inter, b);
        let disjoint = f.cmp(CmpPred::Eq, inter, 0);
        let sig = f.xor(uni, inter);
        let t = f.shl(contains, 1);
        let t2 = f.or(t, disjoint);
        let mixed = f.add(sig, t2);
        f.ret(&[Operand::Reg(mixed)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "esp", 6);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    let ones = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 255);
        let a = f.load(cubes_a, idx);
        let b = f.load(cubes_b, idx);
        let na = f.call(count_ones, &[Operand::Reg(a)], 1)[0];
        let inter = f.and(a, b);
        let ni = f.call(count_ones, &[Operand::Reg(inter)], 1)[0];
        let ops = f.call(cube_ops, &[Operand::Reg(a), Operand::Reg(b)], 1)[0];
        let w = f.add(na, ni);
        let w2 = f.add(w, ops);
        f.bin_into(BinKind::Add, check, check, w2);
        f.bin_into(BinKind::Add, ones, ones, na);
        call_battery(f, &battery, i, check);
    });
    let c = f.xor(check, ones);
    f.ret(&[Operand::Reg(c)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_and_is_deterministic() {
        let p1 = build(InputSet::Train, 1);
        let p2 = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p1).unwrap();
        let run = |p: &Program| {
            Emulator::new(p)
                .run(&mut NullCrb, &mut NullSink)
                .unwrap()
                .returned[0]
        };
        assert_eq!(run(&p1), run(&p2));
    }

    #[test]
    fn count_ones_agrees_with_popcount() {
        // Spot-check via a tiny driver using the same bit_count table.
        let p = build(InputSet::Train, 1);
        let tbl = p
            .objects()
            .iter()
            .find(|o| o.name() == "bit_count")
            .unwrap();
        for v in [0usize, 1, 37, 255] {
            assert_eq!(tbl.init()[v].as_int(), v.count_ones() as i64);
        }
    }

    #[test]
    fn cube_pool_is_small() {
        let p = build(InputSet::Train, 1);
        let cubes = p.objects().iter().find(|o| o.name() == "cubes_a").unwrap();
        let mut vals: Vec<i64> = cubes.init().iter().map(|v| v.as_int()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 5, "pool of {} cubes", vals.len());
    }
}

//! `072.sc` — spreadsheet calculator.
//!
//! Models recalculation: the same cell formulas are re-evaluated on
//! every screen refresh, while only a few cells actually change
//! between refreshes. Formula evaluation reads the (writable) cell
//! array — memory-dependent reuse with occasional invalidation —
//! and per-cell formatting arithmetic is stateless.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 1800;
const CELLS: i64 = 64;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0072, input);
    let mut pb = ProgramBuilder::new();
    let cells = rw_table(&mut pb, "cells", g.noise(CELLS as usize, -500, 500));
    // Formula operand slots: which cells each of 16 formulas read.
    let f_lhs = pb.table("formula_lhs", g.noise(16, 0, CELLS));
    let f_rhs = pb.table("formula_rhs", g.noise(16, 0, CELLS));
    let edits = pb.table("edit_stream", g.noise(256, 0, CELLS));
    // Visible formulas: the screen shows the same few cells between
    // scrolls.
    let visible = pb.table("visible_stream", g.pooled(256, 4, 0, 16));
    let screen_log = rw_table(&mut pb, "screen_log", vec![0; 128]);

    // eval_cell(k): formula k over the cell array.
    let eval_cell = pb.declare("eval_cell", 1, 1);
    {
        let mut f = pb.function_body(eval_cell);
        let k = f.param(0);
        let li = f.load(f_lhs, k);
        let ri = f.load(f_rhs, k);
        let lv = f.load(cells, li);
        let rv = f.load(cells, ri);
        let sum = f.add(lv, rv);
        let scaled = f.mul(sum, 100);
        let avg = f.div(scaled, 2);
        f.ret(&[Operand::Reg(avg)]);
        pb.finish_function(f);
    }

    // format(v): fixed-point rendering arithmetic (stateless).
    let format = pb.declare("format_cell", 1, 1);
    {
        let mut f = pb.function_body(format);
        let v = f.param(0);
        let whole = f.div(v, 100);
        let frac = f.rem(v, 100);
        let afrac = f.bin(BinKind::Max, frac, 0);
        let w = f.shl(whole, 8);
        let packed = f.or(w, afrac);
        f.ret(&[Operand::Reg(packed)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "sc", 4);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        // Refresh: re-evaluate the visible formulas (a handful of
        // cells dominate until the user scrolls).
        let vis = f.and(i, 255);
        let base = f.load(visible, vis);
        let v1 = f.call(eval_cell, &[Operand::Reg(base)], 1)[0];
        let k2x = f.add(base, 1);
        let k2 = f.and(k2x, 15);
        let v2 = f.call(eval_cell, &[Operand::Reg(k2)], 1)[0];
        let p1 = f.call(format, &[Operand::Reg(v1)], 1)[0];
        let p2 = f.call(format, &[Operand::Reg(v2)], 1)[0];
        // Occasional user edit: one cell changes every 64 refreshes.
        let phase = f.and(i, 63);
        let edit = f.block();
        let merge = f.block();
        f.br(CmpPred::Eq, phase, 63, edit, merge);
        f.switch_to(edit);
        let ei = f.shr(i, 6);
        let em = f.and(ei, 255);
        let target = f.load(edits, em);
        f.store(cells, target, i);
        f.jump(merge);
        f.switch_to(merge);
        // Screen-update bookkeeping (cursor movement, damage lists).
        let book = emit_bookkeeping(f, i, screen_log, 127, 9);
        let w = f.add(p1, p2);
        let w2 = f.add(w, book);
        f.bin_into(BinKind::Add, check, check, w2);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn cell_edits_are_infrequent() {
        let p = build(InputSet::Train, 1);
        let cells = p
            .objects()
            .iter()
            .find(|o| o.name() == "cells")
            .unwrap()
            .id();
        struct C {
            cell_stores: u64,
            total: u64,
            target: ccr_ir::MemObjectId,
        }
        impl ccr_profile::TraceSink for C {
            fn on_exec(&mut self, e: &ccr_profile::ExecEvent<'_>) {
                self.total += 1;
                if e.mem.is_some_and(|m| m.is_store && m.object == self.target) {
                    self.cell_stores += 1;
                }
            }
        }
        let mut c = C {
            cell_stores: 0,
            total: 0,
            target: cells,
        };
        Emulator::new(&p).run(&mut NullCrb, &mut c).unwrap();
        assert!((c.cell_stores as f64) < 0.002 * c.total as f64);
    }
}

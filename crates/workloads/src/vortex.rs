//! `147.vortex` — object-oriented database.
//!
//! Models Vortex's dominant activity: validating object handles
//! against schema metadata. A handful of live object kinds are
//! validated over and over; each validation chains three lookups
//! through read-only schema tables plus range checks — a
//! memory-dependent region with one distinguishable structure when
//! the schema is writable, stateless when frozen.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

const TRIPS: i64 = 2400;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0147, input);
    let mut pb = ProgramBuilder::new();
    let handles = pb.table("handle_stream", g.pooled(512, 6, 0, 64));
    let schema = rw_table(&mut pb, "schema", g.noise(64, 0, 16));
    let fields = pb.table("field_tbl", g.noise(64, 0, 1 << 10));
    let parents = pb.table("parent_tbl", g.noise(16, 0, 16));
    let txn_log = rw_table(&mut pb, "txn_log", vec![0; 256]);

    // validate(handle): the three-level schema walk.
    let validate = pb.declare("validate", 1, 1);
    {
        let mut f = pb.function_body(validate);
        let h = f.param(0);
        let kind = f.load(schema, h);
        let km = f.and(kind, 15);
        let parent = f.load(parents, km);
        let pm = f.and(parent, 63);
        let field = f.load(fields, pm);
        let ok_blk = f.block();
        let bad_blk = f.block();
        let out = f.block();
        let status = f.fresh();
        f.br(CmpPred::Lt, field, 1000, ok_blk, bad_blk);
        f.switch_to(ok_blk);
        let sig1 = f.mul(field, 3);
        let sig2 = f.add(sig1, km);
        f.bin_into(BinKind::Xor, status, sig2, pm);
        f.jump(out);
        f.switch_to(bad_blk);
        f.bin_into(BinKind::Sub, status, field, 1000);
        f.jump(out);
        f.switch_to(out);
        f.ret(&[Operand::Reg(status)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "vtx", 5);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 511);
        let h = f.load(handles, idx);
        let v1 = f.call(validate, &[Operand::Reg(h)], 1)[0];
        // Most transactions validate two handles.
        let h2x = f.add(h, 1);
        let h2 = f.and(h2x, 63);
        let v2 = f.call(validate, &[Operand::Reg(h2)], 1)[0];
        // Schema migration: rare writes that invalidate the region.
        let phase = f.and(i, 1023);
        let migrate = f.block();
        let merge = f.block();
        f.br(CmpPred::Eq, phase, 1023, migrate, merge);
        f.switch_to(migrate);
        let slot = f.and(i, 63);
        f.store(schema, slot, v1);
        f.jump(merge);
        f.switch_to(merge);
        // Transaction journaling: sequence numbers and log cursors
        // never repeat.
        let book = emit_bookkeeping(f, i, txn_log, 255, 7);
        let w = f.add(v1, v2);
        let w2 = f.add(w, book);
        f.bin_into(BinKind::Add, check, check, w2);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn handle_pool_is_small() {
        let p = build(InputSet::Train, 1);
        let hs = p
            .objects()
            .iter()
            .find(|o| o.name() == "handle_stream")
            .unwrap();
        let mut vals: Vec<i64> = hs.init().iter().map(|v| v.as_int()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 6);
    }
}

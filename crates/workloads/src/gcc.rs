//! `126.gcc` — compiler front end.
//!
//! Models the hash-and-dispatch pattern that dominates compiler
//! symbol handling: hash an identifier token, probe a (static) symbol
//! table, then dispatch through a small decision tree to a per-class
//! attribute computation. Token streams are Zipf-distributed, so each
//! static region sees a concentrated but non-trivial value set —
//! yielding the paper's "many small regions, moderate speedup"
//! profile.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{call_battery, counted_loop, kernel_battery, DataGen};
use crate::InputSet;

const TRIPS: i64 = 2800;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0126, input);
    let mut pb = ProgramBuilder::new();
    let tokens = pb.table("token_stream", g.zipfish(512, 28, 1, 1 << 16));
    let symtab = pb.table("symtab", g.noise(256, 0, 5));
    let attrs = pb.table("attr_tbl", g.noise(256, 0, 1 << 12));

    // hash(token): multiplicative hash + table class probe.
    let hash = pb.declare("hash_probe", 1, 2);
    {
        let mut f = pb.function_body(hash);
        let t = f.param(0);
        let m = f.mul(t, 0x9E37_79B1);
        let s = f.shr(m, 12);
        let x1 = f.xor(m, s);
        let x2 = f.mul(x1, 0x85EB_CA77);
        let x3 = f.shr(x2, 9);
        let x4 = f.xor(x2, x3);
        let x5 = f.add(x4, t);
        let h = f.and(x5, 255);
        let class = f.load(symtab, h);
        f.ret(&[Operand::Reg(h), Operand::Reg(class)]);
        pb.finish_function(f);
    }

    // attr_of(h, class): per-class attribute computation (decision
    // tree with a small straight-line kernel per arm).
    let attr_of = pb.declare("attr_of", 2, 1);
    {
        let mut f = pb.function_body(attr_of);
        let (h, class) = (f.param(0), f.param(1));
        let arm_decl = f.block();
        let arm_expr = f.block();
        let arm_stmt = f.block();
        let arm_type = f.block();
        let out = f.block();
        let r = f.fresh();
        let low = f.block();
        // Default attribute for classes without a dedicated arm.
        f.assign(r, 9);
        f.br(CmpPred::Le, class, 1, low, arm_stmt);
        f.switch_to(low);
        f.br(CmpPred::Eq, class, 0, arm_decl, arm_expr);
        f.switch_to(arm_decl);
        let a = f.load(attrs, h);
        let b = f.mul(a, 3);
        f.bin_into(BinKind::Add, r, b, 17);
        f.jump(out);
        f.switch_to(arm_expr);
        let a = f.load_off(attrs, h, 1);
        let b = f.xor(a, h);
        f.bin_into(BinKind::Sub, r, b, 5);
        f.jump(out);
        f.switch_to(arm_stmt);
        f.br(CmpPred::Eq, class, 2, arm_type, out);
        f.switch_to(arm_type);
        let a = f.load_off(attrs, h, 2);
        let b = f.shl(a, 2);
        f.bin_into(BinKind::Or, r, b, 1);
        f.jump(out);
        f.switch_to(out);
        f.ret(&[Operand::Reg(r)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "gcc", 9);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let idx = f.and(i, 511);
        let tok = f.load(tokens, idx);
        let hc = f.call(hash, &[Operand::Reg(tok)], 2);
        let attr = f.call(attr_of, &[Operand::Reg(hc[0]), Operand::Reg(hc[1])], 1)[0];
        let folded = f.xor(attr, hc[1]);
        f.bin_into(BinKind::Add, check, check, folded);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink};

    #[test]
    fn builds_verifies_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 40_000);
    }

    #[test]
    fn token_stream_is_skewed() {
        let p = build(InputSet::Train, 1);
        let toks = p
            .objects()
            .iter()
            .find(|o| o.name() == "token_stream")
            .unwrap();
        let mut counts = std::collections::HashMap::new();
        for v in toks.init() {
            *counts.entry(v.as_int()).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 40, "dominant token appears {max} times");
    }
}

//! `124.m88ksim` — Motorola 88100 simulator.
//!
//! Models the paper's Figure 3 region: `ckbrkpts` scans the
//! `brktable` breakpoint array, which is "updated from a set of only
//! four functions" and rarely changes between scans, plus an
//! instruction-decode kernel with a small dynamic opcode vocabulary.
//! This is the paper's best case (≈1.6× with a 128-entry CRB): a
//! large memory-dependent cyclic region reused on almost every
//! invocation.

use ccr_ir::{BinKind, CmpPred, Operand, Program, ProgramBuilder};

use crate::util::{
    call_battery, counted_loop, emit_bookkeeping, kernel_battery, rw_table, DataGen,
};
use crate::InputSet;

/// Breakpoint-table entries (paper: TMPBRK = 16, scanned pairwise).
const BRK_ENTRIES: i64 = 8;
/// Base driver trips at scale 1.
const TRIPS: i64 = 2200;

/// Builds the benchmark.
pub fn build(input: InputSet, scale: u32) -> Program {
    let mut g = DataGen::new(0x0124, input);
    let mut pb = ProgramBuilder::new();
    // brktable: (code, adr) pairs, flattened.
    let mut brk_init = Vec::new();
    for k in 0..BRK_ENTRIES {
        brk_init.push(i64::from(k % 3 == 0)); // code
        brk_init.push(g.int(0, 1 << 20) & !3); // adr
    }
    let brktable = rw_table(&mut pb, "brktable", brk_init);
    // Monitored addresses repeat heavily (the simulated program loops).
    let addrs = pb.table("addr_stream", g.pooled(256, 3, 0, 1 << 20));
    // Simulated instruction stream: small opcode vocabulary.
    let insns = pb.table("insn_stream", g.zipfish(256, 24, 0, 1 << 26));
    let cycle_log = rw_table(&mut pb, "cycle_log", vec![0; 256]);
    let decode_tbl = pb.table("decode_tbl", g.noise(64, 0, 1 << 16));

    // ckbrkpts(addr): branch-free scan of brktable, single exit.
    let ckbrkpts = pb.declare("ckbrkpts", 1, 1);
    {
        let mut f = pb.function_body(ckbrkpts);
        let addr = f.param(0);
        let found = f.movi(0);
        let j = f.movi(0);
        let scan = f.block();
        let out = f.block();
        f.jump(scan);
        f.switch_to(scan);
        let base = f.shl(j, 1);
        let code = f.load(brktable, base);
        let adr = f.load_off(brktable, base, 1);
        let masked = f.and(adr, !3);
        let armed = f.cmp(CmpPred::Ne, code, 0);
        let hit = f.cmp(CmpPred::Eq, masked, addr);
        let m = f.and(armed, hit);
        f.bin_into(BinKind::Or, found, found, m);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, BRK_ENTRIES, scan, out);
        f.switch_to(out);
        f.ret(&[Operand::Reg(found)]);
        pb.finish_function(f);
    }

    // settmpbrk / rsttmpbrk: the rare brktable writers.
    let settmpbrk = pb.declare("settmpbrk", 1, 0);
    {
        let mut f = pb.function_body(settmpbrk);
        let addr = f.param(0);
        f.store(brktable, (BRK_ENTRIES - 1) * 2, 1);
        f.store_off(brktable, (BRK_ENTRIES - 1) * 2, 1, addr);
        f.ret(&[]);
        pb.finish_function(f);
    }
    let rsttmpbrk = pb.declare("rsttmpbrk", 0, 0);
    {
        let mut f = pb.function_body(rsttmpbrk);
        f.store(brktable, (BRK_ENTRIES - 1) * 2, 0);
        f.ret(&[]);
        pb.finish_function(f);
    }

    // decode(insn): field extraction + table classification.
    let decode = pb.declare("decode", 1, 1);
    {
        let mut f = pb.function_body(decode);
        let insn = f.param(0);
        let op = f.shr(insn, 20);
        let op6 = f.and(op, 63);
        let class = f.load(decode_tbl, op6);
        let rd = f.shr(insn, 15);
        let rd5 = f.and(rd, 31);
        let rs = f.shr(insn, 10);
        let rs5 = f.and(rs, 31);
        let imm = f.and(insn, 1023);
        let a = f.mul(class, 7);
        let b = f.add(a, rd5);
        let c = f.xor(b, rs5);
        let d = f.add(c, imm);
        f.ret(&[Operand::Reg(d)]);
        pb.finish_function(f);
    }

    // Auxiliary phases: the secondary hot kernels every real
    // benchmark carries around its primary one.
    let battery = kernel_battery(&mut pb, &mut g, "m88k", 5);

    let mut f = pb.function("main", 0, 1);
    let check = f.movi(0);
    counted_loop(&mut f, TRIPS * scale as i64, |f, i, _exit| {
        let mask = f.and(i, 255);
        let addr = f.load(addrs, mask);
        let brk = f.call(ckbrkpts, &[Operand::Reg(addr)], 1)[0];
        let insn = f.load(insns, mask);
        let dec = f.call(decode, &[Operand::Reg(insn)], 1)[0];
        // Rare breakpoint churn: every 512 simulated instructions.
        let phase = f.and(i, 511);
        let do_set = f.block();
        let do_rst = f.block();
        let merge = f.block();
        let cont = f.block();
        f.br(CmpPred::Eq, phase, 511, do_set, merge);
        f.switch_to(do_set);
        let which = f.and(i, 1024);
        f.br(CmpPred::Eq, which, 0, do_rst, cont);
        f.switch_to(do_rst);
        let _ = f.call(rsttmpbrk, &[], 0);
        f.jump(merge);
        f.switch_to(cont);
        let _ = f.call(settmpbrk, &[Operand::Reg(addr)], 0);
        f.jump(merge);
        f.switch_to(merge);
        // Simulator bookkeeping: cycle accounting, statistics, trace
        // buffer — none of it repeats.
        let book = emit_bookkeeping(f, i, cycle_log, 255, 9);
        let w = f.add(brk, dec);
        let w2 = f.add(w, book);
        f.bin_into(BinKind::Add, check, check, w2);
        call_battery(f, &battery, i, check);
    });
    f.ret(&[Operand::Reg(check)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{Emulator, NullCrb, NullSink, ValueProfiler};

    #[test]
    fn builds_and_runs() {
        let p = build(InputSet::Train, 1);
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 50_000);
    }

    #[test]
    fn ckbrkpts_scan_loop_has_high_cyclic_reuse() {
        let p = build(InputSet::Train, 1);
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        // Find the scan loop's cyclic profile (the only loop inside
        // ckbrkpts).
        let ck = p.function_by_name("ckbrkpts").unwrap();
        let (key, cyc) = profile
            .iter_cyclic()
            .find(|(k, _)| k.func == ck.id())
            .expect("scan loop profiled");
        assert_eq!(key.func, ck.id());
        assert!(cyc.invocations >= 2000);
        assert!(
            cyc.reuse_ratio() > 0.8,
            "breakpoint scans should repeat: {}",
            cyc.reuse_ratio()
        );
        assert!(cyc.multi_iteration_ratio() > 0.99);
    }

    #[test]
    fn brktable_is_written_rarely() {
        let p = build(InputSet::Train, 1);
        struct StoreCounter(u64, u64);
        impl ccr_profile::TraceSink for StoreCounter {
            fn on_exec(&mut self, e: &ccr_profile::ExecEvent<'_>) {
                self.1 += 1;
                if e.mem.is_some_and(|m| m.is_store) {
                    self.0 += 1;
                }
            }
        }
        let mut c = StoreCounter(0, 0);
        Emulator::new(&p).run(&mut NullCrb, &mut c).unwrap();
        assert!(
            (c.0 as f64) < 0.01 * c.1 as f64,
            "stores must be rare: {} of {}",
            c.0,
            c.1
        );
    }
}

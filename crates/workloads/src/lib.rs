#![warn(missing_docs)]

//! # ccr-workloads — the benchmark suite
//!
//! The paper evaluates on SPECINT92/95, UNIX, and MediaBench programs.
//! Those binaries (and their inputs) cannot be run on our IR, so this
//! crate provides thirteen synthetic programs — one per paper
//! benchmark — each engineered to exhibit the *kind* and *amount* of
//! value locality the paper reports for its namesake:
//!
//! | name | character |
//! |---|---|
//! | `008.espresso` | bit-count macro + cube set operations over pooled words (high block-level reuse, stateless) |
//! | `072.sc` | spreadsheet formula re-evaluation over rarely-changing cells (memory-dependent) |
//! | `099.go` | board evaluation with data-dependent branching (little reuse — the paper's worst case) |
//! | `124.m88ksim` | `ckbrkpts`-style breakpoint-table scan + decode lookup (the paper's best case) |
//! | `126.gcc` | hash-and-dispatch over a token stream (many small regions) |
//! | `129.compress` | LZW-style hashing with an evolving dictionary (flat reuse distribution) |
//! | `130.li` | s-expression evaluator over repeated small forms |
//! | `132.ijpeg` | 8-point DCT over images with repeated flat rows |
//! | `147.vortex` | object-validation chains against schema tables |
//! | `lex` | character-class scanner over repetitive text |
//! | `yacc` | LR action-table walker over a small token vocabulary |
//! | `mpeg2enc` | quantization of mostly-zero coefficient blocks |
//! | `pgpencode` | modular-arithmetic stream with a wide value set (needs many computation instances) |
//!
//! Two input sets are generated per benchmark ([`InputSet::Train`] and
//! [`InputSet::Ref`]) from different seeds, preserving each program's
//! locality *character* while changing the concrete values — exactly
//! the situation Figure 11 of the paper examines.

use ccr_ir::Program;

mod bitcount;
mod compress;
mod espresso;
mod gcc;
mod go;
mod ijpeg;
mod lex;
mod li;
mod m88ksim;
mod mpeg2enc;
mod pgpencode;
mod sc;
mod util;
mod vortex;
mod yacc;

/// Which input data set to generate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InputSet {
    /// The profiling ("training") input.
    Train,
    /// The evaluation ("reference") input.
    Ref,
}

impl InputSet {
    /// Seed material distinguishing the two input sets.
    pub fn seed(self) -> u64 {
        match self {
            InputSet::Train => 0x7261_696e,
            InputSet::Ref => 0x5245_4631,
        }
    }
}

/// A named, ready-to-run benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Paper benchmark name.
    pub name: &'static str,
    /// The program with its input data image installed.
    pub program: Program,
}

/// The thirteen benchmark names, in the paper's presentation order.
pub const NAMES: [&str; 13] = [
    "008.espresso",
    "072.sc",
    "099.go",
    "124.m88ksim",
    "126.gcc",
    "129.compress",
    "130.li",
    "132.ijpeg",
    "147.vortex",
    "lex",
    "yacc",
    "mpeg2enc",
    "pgpencode",
];

/// Builds one benchmark. `scale` multiplies the main driver's trip
/// count (1 ≈ a few hundred thousand dynamic instructions).
///
/// Besides the thirteen [`NAMES`], accepts `bitcount` — a tiny
/// Figure 2 smoke workload for CI and telemetry fixtures that is not
/// part of the measured suite.
///
/// Returns `None` for unknown names.
pub fn build(name: &str, input: InputSet, scale: u32) -> Option<Program> {
    let scale = scale.max(1);
    Some(match name {
        "bitcount" => bitcount::build(input, scale),
        "008.espresso" => espresso::build(input, scale),
        "072.sc" => sc::build(input, scale),
        "099.go" => go::build(input, scale),
        "124.m88ksim" => m88ksim::build(input, scale),
        "126.gcc" => gcc::build(input, scale),
        "129.compress" => compress::build(input, scale),
        "130.li" => li::build(input, scale),
        "132.ijpeg" => ijpeg::build(input, scale),
        "147.vortex" => vortex::build(input, scale),
        "lex" => lex::build(input, scale),
        "yacc" => yacc::build(input, scale),
        "mpeg2enc" => mpeg2enc::build(input, scale),
        "pgpencode" => pgpencode::build(input, scale),
        _ => return None,
    })
}

/// Builds the whole suite.
pub fn all(input: InputSet, scale: u32) -> Vec<Workload> {
    NAMES
        .iter()
        .map(|name| Workload {
            name,
            program: build(name, input, scale).expect("known name"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::{EmuConfig, Emulator, NullCrb, NullSink};

    #[test]
    fn every_benchmark_builds_verifies_and_runs() {
        for name in NAMES {
            let p = build(name, InputSet::Train, 1).unwrap();
            ccr_ir::verify_program(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out = Emulator::with_config(
                &p,
                EmuConfig {
                    max_instrs: 20_000_000,
                    max_depth: 256,
                },
            )
            .run(&mut NullCrb, &mut NullSink)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                out.dyn_instrs > 10_000,
                "{name} too small: {} instrs",
                out.dyn_instrs
            );
            assert!(
                out.dyn_instrs < 10_000_000,
                "{name} too large at scale 1: {} instrs",
                out.dyn_instrs
            );
        }
    }

    #[test]
    fn train_and_ref_inputs_differ() {
        for name in NAMES {
            let train = build(name, InputSet::Train, 1).unwrap();
            let reference = build(name, InputSet::Ref, 1).unwrap();
            let run = |p: &Program| {
                Emulator::with_config(
                    p,
                    EmuConfig {
                        max_instrs: 20_000_000,
                        max_depth: 256,
                    },
                )
                .run(&mut NullCrb, &mut NullSink)
                .unwrap()
                .returned
            };
            assert_ne!(run(&train), run(&reference), "{name} inputs identical");
        }
    }

    #[test]
    fn scale_increases_work() {
        let small = build("008.espresso", InputSet::Train, 1).unwrap();
        let big = build("008.espresso", InputSet::Train, 3).unwrap();
        let count = |p: &Program| {
            Emulator::new(p)
                .run(&mut NullCrb, &mut NullSink)
                .unwrap()
                .dyn_instrs
        };
        assert!(count(&big) > count(&small) * 2);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("999.nope", InputSet::Train, 1).is_none());
    }

    #[test]
    fn bitcount_smoke_workload_builds_but_stays_out_of_the_suite() {
        assert!(!NAMES.contains(&"bitcount"));
        let p = build("bitcount", InputSet::Train, 1).unwrap();
        ccr_ir::verify_program(&p).unwrap();
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 1_000, "{}", out.dyn_instrs);
        assert!(out.dyn_instrs < 100_000, "{}", out.dyn_instrs);
        let reference = build("bitcount", InputSet::Ref, 1).unwrap();
        let ref_out = Emulator::new(&reference)
            .run(&mut NullCrb, &mut NullSink)
            .unwrap();
        assert_ne!(out.returned, ref_out.returned);
    }

    #[test]
    fn all_builds_thirteen() {
        let suite = all(InputSet::Train, 1);
        assert_eq!(suite.len(), 13);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names, NAMES.to_vec());
    }
}

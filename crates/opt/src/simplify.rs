//! Control-flow simplification: constant-branch folding, jump
//! threading, and unreachable-block removal.

use ccr_analysis::reachable_blocks;
use ccr_ir::{BlockId, Function, Op, Program};

/// Runs CFG simplification on every function. Returns the number of
/// changes (folded branches + threaded edges + removed blocks).
pub fn run(program: &mut Program) -> usize {
    let mut changed = 0;
    for i in 0..program.functions().len() {
        changed += run_function(program.function_mut(ccr_ir::FuncId(i as u32)));
    }
    changed
}

fn run_function(func: &mut Function) -> usize {
    let mut changed = 0;
    changed += fold_constant_branches(func);
    changed += thread_jumps(func);
    changed += merge_blocks(func);
    changed += remove_unreachable(func);
    changed
}

/// Merges `A: ...; jump B` with `B` when `A` is `B`'s only
/// predecessor. This re-forms the long straight-line blocks
/// (superblock-style) that inlining fragments, which both the loop
/// unroller and the acyclic region former rely on.
fn merge_blocks(func: &mut Function) -> usize {
    let mut changed = 0;
    loop {
        let preds = func.predecessors();
        let mut candidate: Option<(BlockId, BlockId)> = None;
        for (bid, block) in func.iter_blocks() {
            let Some(term) = block.terminator() else {
                continue;
            };
            // Never merge away an annotated control instruction
            // (region endpoints/exits carry semantics).
            if !term.ext.is_empty() {
                continue;
            }
            if let Op::Jump { target } = term.op {
                if target != bid && target != func.entry() && preds[target.index()].len() == 1 {
                    candidate = Some((bid, target));
                    break;
                }
            }
        }
        let Some((a, b)) = candidate else {
            break;
        };
        let moved = std::mem::take(&mut func.block_mut(b).instrs);
        let ablock = func.block_mut(a);
        ablock.instrs.pop(); // the jump
        ablock.instrs.extend(moved);
        // Block b is now empty and unreachable; give it a placeholder
        // terminator so intermediate states stay printable, then let
        // remove_unreachable drop it.
        func.block_mut(b).instrs.push(ccr_ir::Instr::new(
            ccr_ir::InstrId(u32::MAX),
            Op::Jump { target: b },
        ));
        changed += 1;
    }
    changed
}

/// Rewrites `br` with two immediate operands into a `jump`.
fn fold_constant_branches(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        let Some(t) = block.terminator_mut() else {
            continue;
        };
        if let Op::Branch {
            pred,
            lhs,
            rhs,
            taken,
            not_taken,
        } = &t.op
        {
            if let (Some(a), Some(b)) = (lhs.as_imm(), rhs.as_imm()) {
                let target = if pred.eval(a, b) { *taken } else { *not_taken };
                t.op = Op::Jump { target };
                changed += 1;
            }
        }
    }
    changed
}

/// Redirects edges that target a block consisting solely of a `jump`
/// straight to that jump's destination.
fn thread_jumps(func: &mut Function) -> usize {
    // trampoline[b] = Some(c) if block b is exactly `jump c`.
    let trampoline: Vec<Option<BlockId>> = func
        .blocks
        .iter()
        .map(|b| match (&b.instrs[..], b.terminator()) {
            ([only], Some(t)) if only.id == t.id => match t.op {
                Op::Jump { target } => Some(target),
                _ => None,
            },
            _ => None,
        })
        .collect();
    // Resolve chains with cycle protection.
    let resolve = |mut b: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(next) = trampoline[b.index()] {
            if hops > trampoline.len() {
                break; // jump cycle: leave as-is
            }
            b = next;
            hops += 1;
        }
        b
    };
    let mut changed = 0;
    for block in &mut func.blocks {
        if let Some(t) = block.terminator_mut() {
            t.map_successors(|s| {
                let r = resolve(s);
                if r != s {
                    changed += 1;
                }
                r
            });
        }
    }
    changed
}

/// Deletes blocks unreachable from the entry, remapping block ids.
fn remove_unreachable(func: &mut Function) -> usize {
    let reachable = reachable_blocks(func);
    if reachable.iter().all(|r| *r) {
        return 0;
    }
    assert_eq!(
        func.entry(),
        BlockId(0),
        "entry must be block 0 for compaction"
    );
    let mut remap: Vec<Option<BlockId>> = Vec::with_capacity(func.blocks.len());
    let mut next = 0u32;
    for r in &reachable {
        if *r {
            remap.push(Some(BlockId(next)));
            next += 1;
        } else {
            remap.push(None);
        }
    }
    let removed = func.blocks.len() - next as usize;
    let old_blocks = std::mem::take(&mut func.blocks);
    for (i, block) in old_blocks.into_iter().enumerate() {
        if remap[i].is_some() {
            func.blocks.push(block);
        }
    }
    for block in &mut func.blocks {
        if let Some(t) = block.terminator_mut() {
            t.map_successors(|s| remap[s.index()].expect("edge to unreachable block"));
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, Operand, ProgramBuilder};

    #[test]
    fn constant_branch_becomes_jump_and_dead_arm_removed() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Lt, 1, 2, t, e);
        f.switch_to(t);
        f.ret(&[Operand::Imm(1)]);
        f.switch_to(e);
        f.ret(&[Operand::Imm(2)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let changed = run(&mut p);
        assert!(changed >= 2, "fold + removal, got {changed}");
        let func = p.function(p.main());
        // Fold -> jump, then the taken arm merges into the entry and
        // the dead arm is removed: a single straight-line block.
        assert_eq!(func.blocks.len(), 1);
        assert!(matches!(
            func.block(func.entry()).terminator().unwrap().op,
            Op::Ret { .. }
        ));
        ccr_ir::verify_program(&p).unwrap();
    }

    #[test]
    fn jump_chains_are_threaded() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let a = f.block();
        let b = f.block();
        let end = f.block();
        f.jump(a);
        f.switch_to(a);
        f.jump(b);
        f.switch_to(b);
        f.jump(end);
        f.switch_to(end);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let func = p.function(p.main());
        // Entry jumps straight to the return block; trampolines gone.
        assert_eq!(func.blocks.len(), 2);
        let entry_t = func.block(func.entry()).terminator().unwrap();
        assert_eq!(entry_t.successors(), vec![BlockId(1)]);
        assert!(matches!(
            func.block(BlockId(1)).terminator().unwrap().op,
            Op::Ret { .. }
        ));
    }

    #[test]
    fn self_loop_jump_is_not_infinitely_threaded() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let spin = f.block();
        f.jump(spin);
        f.switch_to(spin);
        f.jump(spin);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p); // must terminate
        ccr_ir::verify_program(&p).unwrap();
    }

    #[test]
    fn reachable_cfg_is_untouched() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let o = pb.object("o", 1);
        let x = f.load(o, 0);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Lt, x, 5, t, e);
        f.switch_to(t);
        f.ret(&[]);
        f.switch_to(e);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0);
        assert_eq!(p.function(p.main()).blocks.len(), 3);
    }
}

//! Bottom-up inlining of small functions.
//!
//! Inlining is part of the paper's base-code recipe and also matters
//! for CCR itself: a region cannot contain a call, so a small helper
//! called from a hot computation would otherwise split an RCR in two.

use ccr_analysis::CallGraph;
use ccr_ir::{BlockId, FuncId, Instr, Op, Operand, Program, Reg, UnKind};

/// Inlining parameters.
#[derive(Clone, Copy, Debug)]
pub struct InlineConfig {
    /// Maximum callee size eligible for inlining.
    pub max_callee_instrs: usize,
    /// Stop growing a caller past this size.
    pub max_caller_instrs: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_instrs: 24,
            max_caller_instrs: 2048,
        }
    }
}

/// Inlines eligible call sites until none remain (or budgets stop
/// further growth). Returns the number of inlined sites.
pub fn run(program: &mut Program, config: InlineConfig) -> usize {
    let mut inlined = 0;
    loop {
        let cg = CallGraph::compute(program);
        let Some((caller, bid, pos, callee)) = find_site(program, &cg, config) else {
            break;
        };
        inline_call(program, caller, bid, pos, callee);
        inlined += 1;
    }
    inlined
}

fn find_site(
    program: &Program,
    cg: &CallGraph,
    config: InlineConfig,
) -> Option<(FuncId, BlockId, usize, FuncId)> {
    for func in program.functions() {
        if func.instr_count() > config.max_caller_instrs {
            continue;
        }
        for (bid, block) in func.iter_blocks() {
            for (pos, instr) in block.instrs.iter().enumerate() {
                if let Op::Call { callee, .. } = &instr.op {
                    if *callee == func.id() {
                        continue; // direct recursion
                    }
                    let target = program.function(*callee);
                    if target.instr_count() > config.max_callee_instrs {
                        continue;
                    }
                    // Transitively recursive callees stay out-of-line:
                    // a cycle exists iff some direct callee can reach
                    // back to the callee.
                    let recursive = cg
                        .callees(*callee)
                        .iter()
                        .any(|g| cg.reachable_from(*g).contains(callee));
                    if recursive {
                        continue;
                    }
                    return Some((func.id(), bid, pos, *callee));
                }
            }
        }
    }
    None
}

/// Splices `callee`'s body into `caller` at the given call site.
fn inline_call(program: &mut Program, caller: FuncId, bid: BlockId, pos: usize, callee: FuncId) {
    let callee_fn = program.function(callee).clone();
    let (args, rets) = {
        let site = &program.function(caller).block(bid).instrs[pos];
        match &site.op {
            Op::Call { args, rets, .. } => (args.clone(), rets.clone()),
            other => panic!("inline target is not a call: {other:?}"),
        }
    };

    // Allocate a register window for the callee's registers.
    let reg_base = program.function(caller).reg_limit();
    for _ in 0..callee_fn.reg_limit() {
        program.function_mut(caller).fresh_reg();
    }
    let map_reg = |r: Reg| Reg(r.0 + reg_base);
    let map_operand = |o: Operand| match o {
        Operand::Reg(r) => Operand::Reg(map_reg(r)),
        imm => imm,
    };

    // Allocate destination blocks: one per callee block, plus the
    // continuation holding the caller instructions after the call.
    let block_base = program.function(caller).blocks.len() as u32;
    for _ in 0..callee_fn.blocks.len() {
        program.function_mut(caller).add_block();
    }
    let cont = program.function_mut(caller).add_block();
    let map_block = |b: BlockId| BlockId(b.0 + block_base);

    // Move the post-call tail of the call block into `cont`.
    let tail: Vec<Instr> = program
        .function_mut(caller)
        .block_mut(bid)
        .instrs
        .split_off(pos + 1);
    program.function_mut(caller).block_mut(cont).instrs = tail;

    // Replace the call with parameter moves + jump to the body copy.
    {
        let mut setup: Vec<Instr> = Vec::with_capacity(args.len() + 1);
        for (i, a) in args.iter().enumerate() {
            setup.push(program.new_instr(Op::Unary {
                kind: UnKind::Mov,
                dst: map_reg(Reg(i as u32)),
                src: *a,
            }));
        }
        setup.push(program.new_instr(Op::Jump {
            target: map_block(callee_fn.entry()),
        }));
        let block = program.function_mut(caller).block_mut(bid);
        block.instrs.pop(); // the call itself
        block.instrs.extend(setup);
    }

    // Copy the callee body, remapping registers and blocks; returns
    // become result moves + jump to the continuation.
    for (src_bid, src_block) in callee_fn.iter_blocks() {
        let mut instrs: Vec<Instr> = Vec::with_capacity(src_block.instrs.len());
        for instr in &src_block.instrs {
            match &instr.op {
                Op::Ret { values } => {
                    for (dst, v) in rets.iter().zip(values.iter()) {
                        instrs.push(program.new_instr(Op::Unary {
                            kind: UnKind::Mov,
                            dst: *dst,
                            src: map_operand(*v),
                        }));
                    }
                    instrs.push(program.new_instr(Op::Jump { target: cont }));
                }
                op => {
                    let mut op = op.clone();
                    remap_op(&mut op, &map_reg, &map_operand, &map_block);
                    let mut ni = program.new_instr(op);
                    ni.ext = instr.ext;
                    instrs.push(ni);
                }
            }
        }
        program
            .function_mut(caller)
            .block_mut(map_block(src_bid))
            .instrs = instrs;
    }
}

fn remap_op(
    op: &mut Op,
    map_reg: &impl Fn(Reg) -> Reg,
    map_operand: &impl Fn(Operand) -> Operand,
    map_block: &impl Fn(BlockId) -> BlockId,
) {
    match op {
        Op::Binary { dst, lhs, rhs, .. } => {
            *dst = map_reg(*dst);
            *lhs = map_operand(*lhs);
            *rhs = map_operand(*rhs);
        }
        Op::Cmp { dst, lhs, rhs, .. } => {
            *dst = map_reg(*dst);
            *lhs = map_operand(*lhs);
            *rhs = map_operand(*rhs);
        }
        Op::Unary { dst, src, .. } => {
            *dst = map_reg(*dst);
            *src = map_operand(*src);
        }
        Op::Load { dst, addr, .. } => {
            *dst = map_reg(*dst);
            *addr = map_operand(*addr);
        }
        Op::Store { addr, value, .. } => {
            *addr = map_operand(*addr);
            *value = map_operand(*value);
        }
        Op::Branch {
            lhs,
            rhs,
            taken,
            not_taken,
            ..
        } => {
            *lhs = map_operand(*lhs);
            *rhs = map_operand(*rhs);
            *taken = map_block(*taken);
            *not_taken = map_block(*not_taken);
        }
        Op::Jump { target } => *target = map_block(*target),
        Op::Call { args, rets, .. } => {
            for a in args {
                *a = map_operand(*a);
            }
            for r in rets {
                *r = map_reg(*r);
            }
        }
        Op::Reuse { body, cont, .. } => {
            *body = map_block(*body);
            *cont = map_block(*cont);
        }
        Op::Ret { .. } => unreachable!("rets handled by caller"),
        Op::Invalidate { .. } | Op::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, NullSink};

    fn run_outcome(p: &Program) -> Vec<i64> {
        Emulator::new(p)
            .run(&mut NullCrb, &mut NullSink)
            .unwrap()
            .returned
            .iter()
            .map(|v| v.as_int())
            .collect()
    }

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let sq = pb.declare("clamp_square", 1, 1);
        let mut g = pb.function_body(sq);
        let x = g.param(0);
        let big = g.block();
        let small = g.block();
        g.br(CmpPred::Gt, x, 10, big, small);
        g.switch_to(big);
        g.ret(&[Operand::Imm(100)]);
        g.switch_to(small);
        let y = g.mul(x, x);
        g.ret(&[Operand::Reg(y)]);
        pb.finish_function(g);

        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let r = f.call(sq, &[Operand::Reg(i)], 1);
        f.bin_into(ccr_ir::BinKind::Add, acc, acc, r[0]);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 15, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    #[test]
    fn inlining_preserves_result() {
        let base = sample_program();
        let expect = run_outcome(&base);
        let mut p = sample_program();
        let n = run(&mut p, InlineConfig::default());
        assert_eq!(n, 1);
        ccr_ir::verify_program(&p).unwrap();
        assert_eq!(run_outcome(&p), expect);
        // No calls remain in main.
        assert!(p
            .function(p.main())
            .iter_instrs()
            .all(|(_, i)| !i.is_call()));
    }

    #[test]
    fn recursive_callee_is_skipped() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec", 1, 1);
        let mut g = pb.function_body(rec);
        let x = g.param(0);
        let base = g.block();
        let step = g.block();
        g.br(CmpPred::Le, x, 0, base, step);
        g.switch_to(base);
        g.ret(&[Operand::Imm(0)]);
        g.switch_to(step);
        let xm1 = g.sub(x, 1);
        let r = g.call(rec, &[Operand::Reg(xm1)], 1);
        let s = g.add(r[0], x);
        g.ret(&[Operand::Reg(s)]);
        pb.finish_function(g);
        let mut f = pb.function("main", 0, 1);
        let r = f.call(rec, &[Operand::Imm(5)], 1);
        f.ret(&[Operand::Reg(r[0])]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p, InlineConfig::default()), 0);
        assert_eq!(run_outcome(&p), vec![15]);
    }

    #[test]
    fn oversized_callee_is_skipped() {
        let mut p = sample_program();
        assert_eq!(
            run(
                &mut p,
                InlineConfig {
                    max_callee_instrs: 2,
                    max_caller_instrs: 2048
                }
            ),
            0
        );
    }

    #[test]
    fn nested_calls_inline_bottom_up() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare("leaf", 1, 1);
        let mut l = pb.function_body(leaf);
        let x = l.param(0);
        let y = l.add(x, 1);
        l.ret(&[Operand::Reg(y)]);
        pb.finish_function(l);
        let mid = pb.declare("mid", 1, 1);
        let mut m = pb.function_body(mid);
        let x = m.param(0);
        let r = m.call(leaf, &[Operand::Reg(x)], 1);
        let d = m.mul(r[0], 2);
        m.ret(&[Operand::Reg(d)]);
        pb.finish_function(m);
        let mut f = pb.function("main", 0, 1);
        let r = f.call(mid, &[Operand::Imm(20)], 1);
        f.ret(&[Operand::Reg(r[0])]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let n = run(&mut p, InlineConfig::default());
        assert!(n >= 2, "both levels inline, got {n}");
        assert_eq!(run_outcome(&p), vec![42]);
        assert!(p
            .function(p.main())
            .iter_instrs()
            .all(|(_, i)| !i.is_call()));
    }
}

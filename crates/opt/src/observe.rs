//! Pass-level observation hooks.
//!
//! The optimizer reports one [`PassRecord`] per pass *invocation*
//! (cleanup passes run to a fixpoint, so `constprop` & friends appear
//! once per iteration) to a caller-supplied [`PassObserver`]. The
//! trait lives here, not in the telemetry crate, so `ccr-opt` stays
//! dependency-free; `ccr-core` bridges records into telemetry events.

use ccr_ir::Program;

/// What one optimizer pass invocation did to the IR, and how long it
/// took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassRecord {
    /// Pass name (`"inline"`, `"constprop"`, `"cse"`, `"dce"`,
    /// `"simplify"`, `"unroll"`).
    pub pass: &'static str,
    /// Wall-clock time of this invocation, in microseconds.
    pub wall_us: u64,
    /// Number of rewrites/changes the pass reported.
    pub changes: usize,
    /// Static instruction count before the pass.
    pub instrs_before: usize,
    /// Static instruction count after the pass.
    pub instrs_after: usize,
    /// Basic-block count before the pass.
    pub blocks_before: usize,
    /// Basic-block count after the pass.
    pub blocks_after: usize,
}

impl PassRecord {
    /// Signed instruction delta (negative = the pass shrank the IR).
    pub fn instr_delta(&self) -> i64 {
        self.instrs_after as i64 - self.instrs_before as i64
    }

    /// Signed basic-block delta.
    pub fn block_delta(&self) -> i64 {
        self.blocks_after as i64 - self.blocks_before as i64
    }
}

/// Receives a [`PassRecord`] after each pass invocation.
pub trait PassObserver {
    /// Called once per pass invocation, in execution order.
    fn on_pass(&mut self, record: &PassRecord);
}

/// Ignores all records (the default for [`crate::optimize`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPassObserver;

impl PassObserver for NullPassObserver {
    fn on_pass(&mut self, _record: &PassRecord) {}
}

/// Collects every record in order — handy for tests and for callers
/// that aggregate after the fact.
#[derive(Clone, Debug, Default)]
pub struct RecordingObserver {
    /// The records, in execution order.
    pub records: Vec<PassRecord>,
}

impl PassObserver for RecordingObserver {
    fn on_pass(&mut self, record: &PassRecord) {
        self.records.push(*record);
    }
}

/// Total basic-block count across all functions.
pub fn block_count(program: &Program) -> usize {
    program.functions().iter().map(|f| f.blocks.len()).sum()
}

//! The pass manager: composes the individual passes into the paper's
//! "best base code" pipeline.

use std::time::Instant;

use ccr_ir::Program;

use crate::inline::InlineConfig;
use crate::observe::{block_count, NullPassObserver, PassObserver, PassRecord};
use crate::unroll::UnrollConfig;
use crate::{constprop, cse, dce, inline, simplify, unroll};

/// Optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Inlining parameters.
    pub inline: InlineConfig,
    /// Unrolling parameters.
    pub unroll: UnrollConfig,
    /// Enable inlining.
    pub do_inline: bool,
    /// Enable loop unrolling.
    pub do_unroll: bool,
    /// Maximum scalar-cleanup iterations per phase.
    pub max_iterations: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            inline: InlineConfig::default(),
            unroll: UnrollConfig::default(),
            do_inline: true,
            do_unroll: true,
            max_iterations: 8,
        }
    }
}

/// Per-pass change counts reported by [`optimize`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inlined: usize,
    /// Loops unrolled.
    pub unrolled: usize,
    /// Constant/copy propagation rewrites.
    pub constprop: usize,
    /// CSE replacements.
    pub cse: usize,
    /// Instructions removed by DCE.
    pub dce: usize,
    /// CFG simplifications.
    pub simplify: usize,
}

impl OptStats {
    /// Total number of changes across all passes.
    pub fn total(&self) -> usize {
        self.inlined + self.unrolled + self.constprop + self.cse + self.dce + self.simplify
    }
}

/// Runs the full baseline pipeline: inline, scalar cleanup to a
/// fixpoint, unroll, then cleanup again.
///
/// ```
/// use ccr_ir::{Operand, ProgramBuilder};
/// use ccr_opt::{optimize, OptConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0, 1);
/// let a = f.movi(6);
/// let b = f.mul(a, 7);       // folds to 42
/// let _dead = f.add(b, 1);   // removed by DCE
/// f.ret(&[Operand::Reg(b)]);
/// let id = pb.finish_function(f);
/// pb.set_main(id);
/// let mut program = pb.finish();
///
/// let stats = optimize(&mut program, OptConfig::default());
/// assert!(stats.constprop > 0 && stats.dce > 0);
/// assert!(program.instr_count() <= 2, "mov + ret remain");
/// ```
///
/// # Panics
///
/// Panics (in debug builds) if any pass breaks program invariants —
/// the verifier runs after each phase.
pub fn optimize(program: &mut Program, config: OptConfig) -> OptStats {
    optimize_observed(program, config, &mut NullPassObserver)
}

/// Like [`optimize`], but reports a [`PassRecord`] (wall time plus
/// instruction/block deltas) to `observer` after every pass
/// invocation. Cleanup passes run to a fixpoint, so they report once
/// per iteration, in execution order.
pub fn optimize_observed(
    program: &mut Program,
    config: OptConfig,
    observer: &mut dyn PassObserver,
) -> OptStats {
    let mut stats = OptStats::default();
    if config.do_inline {
        stats.inlined = observed(program, "inline", observer, |p| {
            inline::run(p, config.inline)
        });
        debug_assert_verified(program, "inline");
    }
    cleanup(program, config.max_iterations, &mut stats, observer);
    if config.do_unroll {
        stats.unrolled = observed(program, "unroll", observer, |p| {
            unroll::run(p, config.unroll)
        });
        debug_assert_verified(program, "unroll");
        cleanup(program, config.max_iterations, &mut stats, observer);
    }
    stats
}

fn cleanup(
    program: &mut Program,
    max_iterations: usize,
    stats: &mut OptStats,
    observer: &mut dyn PassObserver,
) {
    for _ in 0..max_iterations {
        let mut round = 0;
        let n = observed(program, "constprop", observer, constprop::run);
        stats.constprop += n;
        round += n;
        let n = observed(program, "cse", observer, cse::run);
        stats.cse += n;
        round += n;
        let n = observed(program, "dce", observer, dce::run);
        stats.dce += n;
        round += n;
        let n = observed(program, "simplify", observer, simplify::run);
        stats.simplify += n;
        round += n;
        debug_assert_verified(program, "cleanup");
        if round == 0 {
            break;
        }
    }
}

/// Runs one pass under the observer: snapshots IR size, times the
/// pass, and reports the record.
fn observed(
    program: &mut Program,
    pass: &'static str,
    observer: &mut dyn PassObserver,
    run: impl FnOnce(&mut Program) -> usize,
) -> usize {
    let instrs_before = program.instr_count();
    let blocks_before = block_count(program);
    let started = Instant::now();
    let changes = run(program);
    observer.on_pass(&PassRecord {
        pass,
        wall_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        changes,
        instrs_before,
        instrs_after: program.instr_count(),
        blocks_before,
        blocks_after: block_count(program),
    });
    changes
}

fn debug_assert_verified(program: &Program, phase: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = ccr_ir::verify_program(program) {
            panic!("optimizer phase '{phase}' broke the program: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{EmuConfig, Emulator, NullCrb, NullSink};

    /// A program exercising every pass: a small helper to inline, a
    /// constant-foldable preamble, a CSE-able body, dead code, and an
    /// unrollable loop.
    fn kitchen_sink() -> Program {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("weights", vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let helper = pb.declare("scale", 2, 1);
        let mut h = pb.function_body(helper);
        let (a, b) = (h.param(0), h.param(1));
        let m = h.mul(a, b);
        let s = h.sar(m, 1);
        h.ret(&[Operand::Reg(s)]);
        pb.finish_function(h);

        let mut f = pb.function("main", 0, 1);
        let k1 = f.movi(3);
        let k2 = f.add(k1, 4); // folds to 7
        let _dead = f.mul(k2, k2); // dead
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let w = f.load(t, i);
        let x1 = f.add(w, k2);
        let x2 = f.add(w, k2); // CSE
        let r = f.call(helper, &[Operand::Reg(x1), Operand::Reg(x2)], 1);
        f.bin_into(ccr_ir::BinKind::Add, acc, acc, r[0]);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 8, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    fn result_of(p: &Program) -> (i64, u64) {
        let out = Emulator::with_config(
            p,
            EmuConfig {
                max_instrs: 1_000_000,
                max_depth: 64,
            },
        )
        .run(&mut NullCrb, &mut NullSink)
        .unwrap();
        (out.returned[0].as_int(), out.dyn_instrs)
    }

    #[test]
    fn full_pipeline_preserves_semantics_and_reduces_work() {
        let base = kitchen_sink();
        let (expect, base_instrs) = result_of(&base);
        let mut p = kitchen_sink();
        let stats = optimize(&mut p, OptConfig::default());
        assert!(stats.inlined >= 1, "{stats:?}");
        assert!(stats.unrolled >= 1, "{stats:?}");
        assert!(stats.constprop >= 1, "{stats:?}");
        assert!(stats.dce >= 1, "{stats:?}");
        assert!(stats.total() > 4);
        ccr_ir::verify_program(&p).unwrap();
        let (got, opt_instrs) = result_of(&p);
        assert_eq!(got, expect);
        assert!(
            opt_instrs < base_instrs,
            "optimized code must execute fewer instructions: {opt_instrs} vs {base_instrs}"
        );
    }

    #[test]
    fn optimize_is_idempotent_at_fixpoint() {
        let mut p = kitchen_sink();
        optimize(&mut p, OptConfig::default());
        let snapshot = p.clone();
        let stats = optimize(
            &mut p,
            OptConfig {
                do_inline: true,
                do_unroll: false, // unrolling again would duplicate more
                ..OptConfig::default()
            },
        );
        assert_eq!(stats.total(), 0, "{stats:?}");
        assert_eq!(p, snapshot);
    }

    #[test]
    fn observer_sees_every_pass_with_consistent_deltas() {
        use crate::observe::RecordingObserver;
        let mut p = kitchen_sink();
        let mut obs = RecordingObserver::default();
        let stats = optimize_observed(&mut p, OptConfig::default(), &mut obs);
        // Every enabled pass appears at least once.
        for pass in ["inline", "constprop", "cse", "dce", "simplify", "unroll"] {
            assert!(
                obs.records.iter().any(|r| r.pass == pass),
                "no record for {pass}"
            );
        }
        // Records chain: each invocation starts from the IR size the
        // previous one left behind.
        for w in obs.records.windows(2) {
            assert_eq!(w[0].instrs_after, w[1].instrs_before);
            assert_eq!(w[0].blocks_after, w[1].blocks_before);
        }
        // The change totals agree with the returned stats.
        let changes: usize = obs.records.iter().map(|r| r.changes).sum();
        assert_eq!(changes, stats.total());
        // Observation must not perturb the result.
        let mut q = kitchen_sink();
        let unobserved = optimize(&mut q, OptConfig::default());
        assert_eq!(unobserved, stats);
        assert_eq!(p, q);
    }

    #[test]
    fn passes_can_be_disabled() {
        let mut p = kitchen_sink();
        let stats = optimize(
            &mut p,
            OptConfig {
                do_inline: false,
                do_unroll: false,
                ..OptConfig::default()
            },
        );
        assert_eq!(stats.inlined, 0);
        assert_eq!(stats.unrolled, 0);
        // The call must still be present.
        assert!(p.function(p.main()).iter_instrs().any(|(_, i)| i.is_call()));
    }
}

//! Local common-subexpression elimination.
//!
//! Within a block, a pure computation that repeats with identical
//! operands is replaced by a move from the register holding the first
//! result. Loads participate until any store intervenes (stores in our
//! IR may write any index of their object, so the pass conservatively
//! kills all loads on any store). This removes the *static* redundancy
//! the paper assumes is already gone from the base code, leaving CCR
//! only the dynamic kind.

use std::collections::HashMap;

use ccr_ir::{BinKind, CmpPred, Function, MemObjectId, Op, Operand, Program, Reg, UnKind};

/// An expression key for value numbering within a block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ExprKey {
    Bin(BinKind, Operand, Operand),
    Un(UnKind, Operand),
    Cmp(CmpPred, Operand, Operand),
    Load(MemObjectId, Operand, i64),
}

/// Runs local CSE on every function. Returns replaced instructions.
pub fn run(program: &mut Program) -> usize {
    let mut changed = 0;
    for i in 0..program.functions().len() {
        changed += run_function(program.function_mut(ccr_ir::FuncId(i as u32)));
    }
    changed
}

fn run_function(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        let mut available: HashMap<ExprKey, Reg> = HashMap::new();
        for instr in &mut block.instrs {
            let key = match &instr.op {
                Op::Binary { kind, lhs, rhs, .. } => {
                    let (a, b) = commutative_order(*kind, *lhs, *rhs);
                    Some(ExprKey::Bin(*kind, a, b))
                }
                Op::Unary { kind, src, .. } if *kind != UnKind::Mov => {
                    Some(ExprKey::Un(*kind, *src))
                }
                Op::Cmp { pred, lhs, rhs, .. } => Some(ExprKey::Cmp(*pred, *lhs, *rhs)),
                Op::Load {
                    object,
                    addr,
                    offset,
                    ..
                } => Some(ExprKey::Load(*object, *addr, *offset)),
                _ => None,
            };
            if let (Some(key), Some(dst)) = (key.clone(), instr.dst()) {
                if let Some(prev) = available.get(&key) {
                    if *prev != dst {
                        instr.op = Op::Unary {
                            kind: UnKind::Mov,
                            dst,
                            src: Operand::Reg(*prev),
                        };
                        changed += 1;
                    }
                } else {
                    available.insert(key, dst);
                }
            }
            // Kill rules.
            match &instr.op {
                Op::Store { .. } => {
                    available.retain(|k, _| !matches!(k, ExprKey::Load(..)));
                }
                Op::Call { .. } => {
                    // Callee may store anywhere.
                    available.retain(|k, _| !matches!(k, ExprKey::Load(..)));
                }
                _ => {}
            }
            // Redefining a register invalidates expressions mentioning
            // it (as operand or as the available result).
            for d in instr.dsts() {
                let dop = Operand::Reg(d);
                available.retain(|k, r| {
                    *r != d
                        && match k {
                            ExprKey::Bin(_, a, b) | ExprKey::Cmp(_, a, b) => *a != dop && *b != dop,
                            ExprKey::Un(_, a) => *a != dop,
                            ExprKey::Load(_, a, _) => *a != dop,
                        }
                });
            }
            // Re-admit the instruction's own expression if it was
            // removed by its own redefinition (dst overlaps operand).
            if let (Some(key), Some(dst)) = (key, instr.dst()) {
                let self_referential = instr.src_regs().contains(&dst);
                if !self_referential
                    && !matches!(
                        instr.op,
                        Op::Unary {
                            kind: UnKind::Mov,
                            ..
                        }
                    )
                {
                    available.entry(key).or_insert(dst);
                }
            }
        }
    }
    changed
}

/// Orders operands of commutative operations canonically so `a+b` and
/// `b+a` share a key.
fn commutative_order(kind: BinKind, a: Operand, b: Operand) -> (Operand, Operand) {
    let commutative = matches!(
        kind,
        BinKind::Add
            | BinKind::Mul
            | BinKind::And
            | BinKind::Or
            | BinKind::Xor
            | BinKind::Min
            | BinKind::Max
            | BinKind::FAdd
            | BinKind::FMul
    );
    if !commutative {
        return (a, b);
    }
    let rank = |o: Operand| match o {
        Operand::Reg(r) => (0u8, r.0 as i64),
        Operand::Imm(v) => (1u8, v),
    };
    if rank(a) <= rank(b) {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::ProgramBuilder;

    fn main_ops(p: &Program) -> Vec<String> {
        p.function(p.main())
            .iter_instrs()
            .map(|(_, i)| i.to_string())
            .collect()
    }

    #[test]
    fn duplicate_add_becomes_move() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 1);
        let x = f.load(o, 0);
        let a = f.add(x, 5);
        let b = f.add(x, 5);
        let c = f.add(a, b);
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 1);
        let ops = main_ops(&p);
        assert!(ops[2].contains(&format!("mov {a}")), "{ops:?}");
    }

    #[test]
    fn commutative_operands_share_key() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 2);
        let mut f = pb.function("main", 0, 1);
        let x = f.load(o, 0);
        let y = f.load(o, 1);
        let a = f.add(x, y);
        let b = f.add(y, x);
        let c = f.add(a, b);
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 1);
        let _ = (a, b);
    }

    #[test]
    fn non_commutative_not_merged() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 2);
        let mut f = pb.function("main", 0, 1);
        let x = f.load(o, 0);
        let y = f.load(o, 1);
        let a = f.sub(x, y);
        let b = f.sub(y, x);
        let c = f.add(a, b);
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0);
    }

    #[test]
    fn store_kills_loads_but_not_arith() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 2);
        let mut f = pb.function("main", 0, 2);
        let x = f.load(o, 0);
        let a = f.add(x, 1);
        f.store(o, 0, 99);
        let y = f.load(o, 0); // must NOT merge with x
        let b = f.add(x, 1); // may merge with a
        f.ret(&[Operand::Reg(y), Operand::Reg(b)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 1);
        let ops = main_ops(&p);
        assert!(ops[3].contains("load"), "{ops:?}");
        assert!(ops[4].contains(&format!("mov {a}")), "{ops:?}");
    }

    #[test]
    fn redefined_operand_kills_expression() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 2);
        let mut f = pb.function("main", 0, 1);
        let x = f.fresh();
        f.load_into(x, o, 0, 0);
        let a = f.add(x, 1);
        f.load_into(x, o, 1, 0); // x changes
        let b = f.add(x, 1); // must not merge with a
        let c = f.add(a, b);
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0);
    }

    #[test]
    fn self_update_is_not_available() {
        // i = i + 1 twice: the second is a different value, never CSE.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        f.inc(i, 1);
        f.inc(i, 1);
        f.ret(&[Operand::Reg(i)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0);
    }
}

//! Liveness-based dead-code elimination.
//!
//! Removes pure instructions (arithmetic, moves, comparisons, loads)
//! whose results are dead, plus `nop`s. Stores, calls, control flow,
//! and the CCR instructions always stay: they have effects beyond
//! their destination registers.

use ccr_analysis::Liveness;
use ccr_ir::{Function, Op, Program, Reg};

/// Runs DCE on every function. Returns the number of removed
/// instructions.
pub fn run(program: &mut Program) -> usize {
    let mut removed = 0;
    for i in 0..program.functions().len() {
        removed += run_function(program.function_mut(ccr_ir::FuncId(i as u32)));
    }
    removed
}

fn is_pure(op: &Op) -> bool {
    matches!(
        op,
        Op::Binary { .. } | Op::Unary { .. } | Op::Cmp { .. } | Op::Load { .. } | Op::Nop
    )
}

fn run_function(func: &mut Function) -> usize {
    let mut removed = 0;
    // Iterate: removing one instruction can make another dead.
    loop {
        let live = Liveness::compute(func);
        let mut round = 0;
        for (bid, _) in func.iter_blocks().map(|(b, _)| (b, ())).collect::<Vec<_>>() {
            let mut live_set: std::collections::HashSet<Reg> = live.live_out(bid).clone();
            let block = func.block_mut(bid);
            // Walk backward, collecting kept instructions.
            let mut kept: Vec<ccr_ir::Instr> = Vec::with_capacity(block.instrs.len());
            for instr in block.instrs.drain(..).rev() {
                let dead = is_pure(&instr.op)
                    && instr
                        .dst()
                        .map_or(matches!(instr.op, Op::Nop), |d| !live_set.contains(&d));
                if dead {
                    round += 1;
                    continue;
                }
                for d in instr.dsts() {
                    live_set.remove(&d);
                }
                for r in instr.src_regs() {
                    live_set.insert(r);
                }
                kept.push(instr);
            }
            kept.reverse();
            block.instrs = kept;
        }
        removed += round;
        if round == 0 {
            break;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, Operand, ProgramBuilder};

    #[test]
    fn removes_dead_chain() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(1);
        let b = f.add(a, 2); // feeds only the dead mul
        let _dead = f.mul(b, b);
        let kept = f.movi(9);
        f.ret(&[Operand::Reg(kept)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let removed = run(&mut p);
        // mul dead -> b dead -> a dead: three removals.
        assert_eq!(removed, 3);
        assert_eq!(p.function(p.main()).instr_count(), 2);
        ccr_ir::verify_program(&p).unwrap();
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let g = pb.declare("g", 0, 1);
        let mut gb = pb.function_body(g);
        gb.ret(&[Operand::Imm(1)]);
        pb.finish_function(gb);
        let mut f = pb.function("main", 0, 0);
        f.store(o, 0, 5);
        let _unused = f.call(g, &[], 1); // result unused, call kept
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let kinds: Vec<bool> = p
            .function(id)
            .iter_instrs()
            .map(|(_, i)| i.is_store() || i.is_call())
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k).count(), 2);
    }

    #[test]
    fn dead_load_is_removed() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 0);
        let _v = f.load(o, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 1);
        assert_eq!(p.function(id).instr_count(), 1);
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let sum = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.bin_into(ccr_ir::BinKind::Add, sum, sum, i);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 10, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(sum)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0, "nothing is dead in the loop");
    }

    #[test]
    fn branch_never_removed_even_if_result_unused() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Lt, 0, 1, t, e);
        f.switch_to(t);
        f.ret(&[]);
        f.switch_to(e);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        assert_eq!(run(&mut p), 0);
    }
}

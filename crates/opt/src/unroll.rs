//! Loop unrolling for single-block inner loops.
//!
//! The paper's base code employs loop unrolling; this pass unrolls
//! self-loops (`H: body; br cond -> H else E`) by duplicating the body
//! along the back edge. Each copy keeps the exit test, so any trip
//! count remains correct — the transformation only reduces the number
//! of taken back-edge branches per iteration group.

use ccr_ir::{BlockId, Op, Program};

/// Unrolling parameters.
#[derive(Clone, Copy, Debug)]
pub struct UnrollConfig {
    /// Total copies of the body after unrolling (1 = no change).
    pub factor: usize,
    /// Only loops with at most this many instructions are unrolled.
    pub max_body_instrs: usize,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        UnrollConfig {
            factor: 4,
            max_body_instrs: 24,
        }
    }
}

/// Unrolls eligible loops in every function. Returns the number of
/// loops unrolled.
pub fn run(program: &mut Program, config: UnrollConfig) -> usize {
    if config.factor <= 1 {
        return 0;
    }
    let mut unrolled = 0;
    for fi in 0..program.functions().len() {
        let fid = ccr_ir::FuncId(fi as u32);
        // Find self-loop headers: block whose terminator is a branch
        // with itself as one target.
        let headers: Vec<BlockId> = program
            .function(fid)
            .iter_blocks()
            .filter_map(|(bid, block)| {
                let t = block.terminator()?;
                match t.op {
                    Op::Branch {
                        taken, not_taken, ..
                    } if (taken == bid) != (not_taken == bid) => {
                        (block.len() <= config.max_body_instrs).then_some(bid)
                    }
                    _ => None,
                }
            })
            .collect();
        for header in headers {
            unroll_self_loop(program, fid, header, config.factor);
            unrolled += 1;
        }
    }
    unrolled
}

/// Duplicates the body of a self-loop `factor - 1` times. The original
/// header's back edge is redirected to the first copy; each copy's
/// back edge goes to the next copy, and the last copy's back edge
/// returns to the header. Exit edges are preserved in every copy.
fn unroll_self_loop(program: &mut Program, fid: ccr_ir::FuncId, header: BlockId, factor: usize) {
    // Snapshot the body.
    let body: Vec<ccr_ir::Op> = program
        .function(fid)
        .block(header)
        .instrs
        .iter()
        .map(|i| i.op.clone())
        .collect();
    // Allocate the copy blocks.
    let copies: Vec<BlockId> = (1..factor)
        .map(|_| program.function_mut(fid).add_block())
        .collect();
    // Fill each copy with fresh-id clones, retargeting back edges.
    for (k, &copy_bid) in copies.iter().enumerate() {
        let next = if k + 1 < copies.len() {
            copies[k + 1]
        } else {
            header
        };
        let mut instrs = Vec::with_capacity(body.len());
        for op in &body {
            let mut op = op.clone();
            if let Op::Branch {
                taken, not_taken, ..
            } = &mut op
            {
                if *taken == header {
                    *taken = next;
                } else if *not_taken == header {
                    *not_taken = next;
                }
            }
            instrs.push(program.new_instr(op));
        }
        program.function_mut(fid).block_mut(copy_bid).instrs = instrs;
    }
    // Redirect the original header's back edge to the first copy.
    if let Some(&first) = copies.first() {
        let func = program.function_mut(fid);
        if let Some(t) = func.block_mut(header).terminator_mut() {
            if let Op::Branch {
                taken, not_taken, ..
            } = &mut t.op
            {
                if *taken == header {
                    *taken = first;
                } else if *not_taken == header {
                    *not_taken = first;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};

    fn counting_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let sum = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.bin_into(BinKind::Add, sum, sum, i);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, n, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(sum)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    #[test]
    fn unrolled_loop_computes_same_sum() {
        for n in [0, 1, 3, 4, 7, 16, 17] {
            let mut p = counting_loop(n);
            let expect = (0..n).sum::<i64>();
            assert_eq!(run(&mut p, UnrollConfig::default()), 1);
            ccr_ir::verify_program(&p).unwrap();
            let out = ccr_profile::Emulator::new(&p)
                .run(&mut ccr_profile::NullCrb, &mut ccr_profile::NullSink)
                .unwrap();
            assert_eq!(out.returned[0].as_int(), expect, "n={n}");
        }
    }

    #[test]
    fn unrolling_lengthens_back_edge_period() {
        // Duplication-unroll leaves the dynamic instruction stream
        // unchanged but multiplies the static code along the back
        // edge: the loop re-enters the *same* block only once every
        // `factor` iterations, giving the acyclic region former
        // `factor`× longer straight-line paths.
        let mut p = counting_loop(100);
        let before_blocks = p.function(p.main()).blocks.len();
        run(&mut p, UnrollConfig::default());
        let after_blocks = p.function(p.main()).blocks.len();
        assert_eq!(after_blocks, before_blocks + 3, "factor 4 adds 3 copies");
        // Count how often the original header block re-executes.
        struct C {
            header_entries: u64,
        }
        impl ccr_profile::TraceSink for C {
            fn on_block_enter(&mut self, _f: ccr_ir::FuncId, b: ccr_ir::BlockId) {
                if b == ccr_ir::BlockId(1) {
                    self.header_entries += 1;
                }
            }
        }
        let mut c = C { header_entries: 0 };
        ccr_profile::Emulator::new(&p)
            .run(&mut ccr_profile::NullCrb, &mut c)
            .unwrap();
        // 100 iterations / factor 4 = 25 header entries.
        assert_eq!(c.header_entries, 25);
    }

    #[test]
    fn factor_one_is_identity() {
        let mut p = counting_loop(10);
        let before = p.function(p.main()).blocks.len();
        assert_eq!(
            run(
                &mut p,
                UnrollConfig {
                    factor: 1,
                    max_body_instrs: 24
                }
            ),
            0
        );
        assert_eq!(p.function(p.main()).blocks.len(), before);
    }

    #[test]
    fn oversized_bodies_are_skipped() {
        let mut p = counting_loop(10);
        assert_eq!(
            run(
                &mut p,
                UnrollConfig {
                    factor: 4,
                    max_body_instrs: 1
                }
            ),
            0
        );
    }

    #[test]
    fn fresh_instruction_ids_remain_unique() {
        let mut p = counting_loop(10);
        run(&mut p, UnrollConfig::default());
        let mut seen = std::collections::HashSet::new();
        for (_, i) in p.iter_instrs() {
            assert!(seen.insert(i.id), "duplicate {:?}", i.id);
        }
    }
}

//! Local constant propagation / folding and copy propagation.
//!
//! Within each basic block the pass tracks registers known to hold a
//! constant or to be a copy of another register, rewrites operands,
//! and folds fully-constant operations into immediate moves. The
//! arithmetic used for folding is [`ccr_ir::semantics`], the same
//! definitions the emulator executes, so folding is exact.

use std::collections::HashMap;

use ccr_ir::semantics::{eval_binary, eval_cmp, eval_unary};
use ccr_ir::{Function, Op, Operand, Program, Reg, UnKind, Value};

/// Runs the pass on every function. Returns the number of rewritten
/// instructions.
pub fn run(program: &mut Program) -> usize {
    let mut changed = 0;
    for i in 0..program.functions().len() {
        changed += run_function(program.function_mut(ccr_ir::FuncId(i as u32)));
    }
    changed
}

/// What a register is locally known to hold.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Known {
    Const(Value),
    Copy(Reg),
}

fn run_function(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        let mut env: HashMap<Reg, Known> = HashMap::new();
        for instr in &mut block.instrs {
            // Rewrite source operands through the environment.
            changed += rewrite_operands(instr, &env);

            // Fold fully-constant operations.
            let folded: Option<Value> = match &instr.op {
                Op::Binary { kind, lhs, rhs, .. } => match (lhs.as_imm(), rhs.as_imm()) {
                    (Some(a), Some(b)) => {
                        Some(eval_binary(*kind, Value::from_int(a), Value::from_int(b)))
                    }
                    _ => None,
                },
                Op::Unary {
                    kind: UnKind::Mov, ..
                } => None, // moves are handled via the environment
                Op::Unary { kind, src, .. } => {
                    src.as_imm().map(|a| eval_unary(*kind, Value::from_int(a)))
                }
                Op::Cmp { pred, lhs, rhs, .. } => match (lhs.as_imm(), rhs.as_imm()) {
                    (Some(a), Some(b)) => {
                        Some(eval_cmp(*pred, Value::from_int(a), Value::from_int(b)))
                    }
                    _ => None,
                },
                _ => None,
            };
            if let (Some(v), Some(dst)) = (folded, instr.dst()) {
                instr.op = Op::Unary {
                    kind: UnKind::Mov,
                    dst,
                    src: Operand::Imm(v.as_int()),
                };
                changed += 1;
            }

            // Update the environment with this instruction's effect.
            let defs = instr.dsts();
            // Any register copying a now-redefined register is stale.
            for d in &defs {
                env.retain(|_, k| *k != Known::Copy(*d));
                env.remove(d);
            }
            if let Op::Unary {
                kind: UnKind::Mov,
                dst,
                src,
            } = &instr.op
            {
                match src {
                    Operand::Imm(v) => {
                        env.insert(*dst, Known::Const(Value::from_int(*v)));
                    }
                    Operand::Reg(s) if s != dst => {
                        // Propagate transitively at record time.
                        let k = match env.get(s) {
                            Some(k) => *k,
                            None => Known::Copy(*s),
                        };
                        env.insert(*dst, k);
                    }
                    Operand::Reg(_) => {}
                }
            }
        }
    }
    changed
}

fn rewrite_operands(instr: &mut ccr_ir::Instr, env: &HashMap<Reg, Known>) -> usize {
    let mut n = 0;
    let mut subst = |op: &mut Operand| {
        if let Operand::Reg(r) = op {
            match env.get(r) {
                Some(Known::Const(v)) => {
                    *op = Operand::Imm(v.as_int());
                    n += 1;
                }
                Some(Known::Copy(s)) if s != r => {
                    *op = Operand::Reg(*s);
                    n += 1;
                }
                Some(Known::Copy(_)) => {}
                None => {}
            }
        }
    };
    match &mut instr.op {
        Op::Binary { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } | Op::Branch { lhs, rhs, .. } => {
            subst(lhs);
            subst(rhs);
        }
        Op::Unary { src, .. } => subst(src),
        Op::Load { addr, .. } => subst(addr),
        Op::Store { addr, value, .. } => {
            subst(addr);
            subst(value);
        }
        Op::Call { args, .. } => {
            for a in args {
                subst(a);
            }
        }
        Op::Ret { values } => {
            for v in values {
                subst(v);
            }
        }
        Op::Jump { .. } | Op::Reuse { .. } | Op::Invalidate { .. } | Op::Nop => {}
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, ProgramBuilder};

    fn ops_of(p: &Program) -> Vec<String> {
        p.function(p.main())
            .iter_instrs()
            .map(|(_, i)| i.to_string())
            .collect()
    }

    #[test]
    fn folds_constant_chain() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(6);
        let b = f.add(a, 4); // 10
        let c = f.mul(b, b); // 100
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let n = run(&mut p);
        assert!(n > 0);
        let ops = ops_of(&p);
        assert!(ops[1].contains("mov 10"), "{ops:?}");
        assert!(ops[2].contains("mov 100"), "{ops:?}");
        assert!(ops[3].contains("ret 100"), "{ops:?}");
        ccr_ir::verify_program(&p).unwrap();
    }

    #[test]
    fn copy_propagation_chases_chains() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.fresh();
        f.assign(x, 3);
        let y = f.mov(x);
        let z = f.mov(y);
        let w = f.add(z, 0);
        f.ret(&[Operand::Reg(w)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let ops = ops_of(&p);
        // z's use in the add collapsed to the constant 3.
        assert!(ops[3].contains("mov 3"), "{ops:?}");
    }

    #[test]
    fn redefinition_invalidates_knowledge() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(1);
        let y = f.mov(x); // y = 1
        f.load_into(x, o, 0, 0); // x redefined with unknown value
        let z = f.add(y, x); // must NOT fold x
        f.ret(&[Operand::Reg(z)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let ops = ops_of(&p);
        assert!(ops[3].contains("add 1, r0"), "{ops:?}");
    }

    #[test]
    fn copies_of_redefined_registers_are_dropped() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 1);
        let x = f.fresh();
        f.load_into(x, o, 0, 0);
        let y = f.mov(x); // y copies x
        f.load_into(x, o, 0, 0); // x redefined: y may no longer alias x
        let z = f.add(y, x);
        f.ret(&[Operand::Reg(z)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let ops = ops_of(&p);
        // The add must keep reading y (r1), not be rewritten to x.
        assert!(ops[3].contains(&format!("add {y}, {x}")), "{ops:?}");
    }

    #[test]
    fn environment_is_per_block() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(5);
        let next = f.block();
        f.jump(next);
        f.switch_to(next);
        // In a fresh block, x is not locally known: no fold.
        let y = f.add(x, 1);
        f.ret(&[Operand::Reg(y)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let func = p.function(p.main());
        let add = &func.block(next).instrs[0];
        assert!(add.to_string().contains("add r0, 1"), "{add}");
    }

    #[test]
    fn branch_operands_are_rewritten() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let x = f.movi(2);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Lt, x, 10, t, e);
        f.switch_to(t);
        f.ret(&[]);
        f.switch_to(e);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let func = p.function(p.main());
        let br = func.block(func.entry()).terminator().unwrap();
        assert!(br.to_string().contains("br.lt 2, 10"), "{br}");
    }

    #[test]
    fn folding_matches_emulator_semantics() {
        // shl by 64 must fold to the wrapped result, not zero.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let v = f.bin(BinKind::Shl, 1, 64);
        f.ret(&[Operand::Reg(v)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        run(&mut p);
        let ops = ops_of(&p);
        assert!(ops[0].contains("mov 1"), "{ops:?}");
    }
}

//! Per-pass semantic-preservation property tests: each optimizer pass
//! individually (and the full pipeline) must leave a random program's
//! observable behaviour unchanged.

use ccr_ir::{BinKind, CmpPred, ObjectKind, Operand, Program, ProgramBuilder, Value};
use ccr_profile::{EmuConfig, Emulator, NullCrb, NullSink};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    consts: Vec<i64>,
    ops: Vec<(u8, u8, u8)>,
    trips: i64,
    with_call: bool,
    with_branch: bool,
    stores: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(-100i64..100, 1..5),
        prop::collection::vec((0u8..10, 0u8..10, 0u8..10), 1..14),
        1i64..40,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(consts, ops, trips, with_call, with_branch, stores)| Spec {
                consts,
                ops,
                trips,
                with_call,
                with_branch,
                stores,
            },
        )
}

const KINDS: [BinKind; 10] = [
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::Div,
    BinKind::Rem,
    BinKind::And,
    BinKind::Xor,
    BinKind::Shl,
    BinKind::Sar,
    BinKind::Min,
];

fn build(spec: &Spec) -> Program {
    let mut pb = ProgramBuilder::new();
    let mem = pb.object_with(
        "mem",
        ObjectKind::Named,
        8,
        spec.consts.iter().map(|v| Value::from_int(*v)).collect(),
    );
    // A small helper: inlining fodder.
    let helper = pb.declare("helper", 1, 1);
    {
        let mut h = pb.function_body(helper);
        let x = h.param(0);
        let a = h.mul(x, 3);
        let b = h.add(a, 7);
        h.ret(&[Operand::Reg(b)]);
        pb.finish_function(h);
    }
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let m = f.and(i, 7);
    let v = f.load(mem, m);
    // Constants for folding fodder plus the loaded value.
    let mut window: Vec<ccr_ir::Reg> = vec![v, acc, i];
    for c in &spec.consts {
        window.push(f.movi(*c));
    }
    let mut last = v;
    for &(k, a, b) in &spec.ops {
        let x = window[a as usize % window.len()];
        let y = window[b as usize % window.len()];
        last = f.bin(KINDS[k as usize % KINDS.len()], x, y);
        window.push(last);
    }
    if spec.with_call {
        let r = f.call(helper, &[Operand::Reg(last)], 1);
        last = r[0];
    }
    if spec.with_branch {
        let t = f.block();
        let e = f.block();
        let j = f.block();
        let out = f.fresh();
        f.br(CmpPred::Lt, last, 0, t, e);
        f.switch_to(t);
        f.bin_into(BinKind::Add, out, last, 1);
        f.jump(j);
        f.switch_to(e);
        f.bin_into(BinKind::Sub, out, last, 1);
        f.jump(j);
        f.switch_to(j);
        last = out;
    }
    if spec.stores {
        let slot = f.and(i, 7);
        f.store(mem, slot, last);
    }
    f.bin_into(BinKind::Add, acc, acc, last);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, spec.trips, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    let p = pb.finish();
    ccr_ir::verify_program(&p).expect("generator produces valid programs");
    p
}

fn run(p: &Program) -> Vec<i64> {
    Emulator::with_config(
        p,
        EmuConfig {
            max_instrs: 1_000_000,
            max_depth: 32,
        },
    )
    .run(&mut NullCrb, &mut NullSink)
    .unwrap()
    .returned
    .iter()
    .map(|v| v.as_int())
    .collect()
}

fn check_pass(s: &Spec, pass: impl Fn(&mut Program) -> usize) -> Result<(), TestCaseError> {
    let p = build(s);
    let expect = run(&p);
    let mut q = p.clone();
    pass(&mut q);
    prop_assert!(
        ccr_ir::verify_program(&q).is_ok(),
        "pass broke verification"
    );
    prop_assert_eq!(run(&q), expect);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn constprop_preserves_semantics(s in spec()) {
        check_pass(&s, ccr_opt::constprop::run)?;
    }

    #[test]
    fn cse_preserves_semantics(s in spec()) {
        check_pass(&s, ccr_opt::cse::run)?;
    }

    #[test]
    fn dce_preserves_semantics(s in spec()) {
        check_pass(&s, ccr_opt::dce::run)?;
    }

    #[test]
    fn simplify_preserves_semantics(s in spec()) {
        check_pass(&s, ccr_opt::simplify::run)?;
    }

    #[test]
    fn unroll_preserves_semantics(s in spec()) {
        check_pass(&s, |p| {
            ccr_opt::unroll::run(p, ccr_opt::unroll::UnrollConfig::default())
        })?;
    }

    #[test]
    fn inline_preserves_semantics(s in spec()) {
        check_pass(&s, |p| {
            ccr_opt::inline::run(p, ccr_opt::inline::InlineConfig::default())
        })?;
    }

    #[test]
    fn full_pipeline_preserves_semantics(s in spec()) {
        check_pass(&s, |p| {
            ccr_opt::optimize(p, ccr_opt::OptConfig::default()).total()
        })?;
    }
}

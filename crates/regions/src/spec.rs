//! Region descriptors.

use ccr_ir::{BlockId, FuncId, MemObjectId, Reg, RegionId};

/// The deterministic-computation class of a region (Section 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ComputationClass {
    /// Stateless: results depend only on register operands.
    Stateless,
    /// Memory-dependent: results also depend on named memory
    /// structures whose writers are statically known.
    MemoryDependent,
}

/// Shape of a region in the CFG.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegionShape {
    /// A whole natural loop, reused per invocation.
    Cyclic {
        /// Loop header (entry of the region body).
        header: BlockId,
        /// The unique block before the loop (holds the edge on which
        /// the reuse instruction is inserted).
        preheader: BlockId,
        /// The unique block all loop exits target (the continuation).
        exit_target: BlockId,
        /// All blocks of the loop body.
        body: Vec<BlockId>,
    },
    /// A path of blocks; the region starts at `start_pos` within the
    /// first block and ends at `end_pos` within the last.
    Path {
        /// The blocks on the principal path, in control-flow order.
        blocks: Vec<BlockId>,
        /// Index of the inception instruction in `blocks[0]`.
        start_pos: usize,
        /// Index of the finish instruction in `blocks.last()`.
        end_pos: usize,
    },
    /// A whole function call, reused per invocation — the
    /// function-level reuse of the paper's future-work section
    /// ("directing the CCR architecture at the function level could
    /// potentially reduce a significant amount of time spent
    /// executing calling convention and spill codes").
    Call {
        /// Block containing the call site.
        block: BlockId,
        /// Position of the call instruction in that block.
        pos: usize,
        /// The wrapped callee.
        callee: ccr_ir::FuncId,
    },
}

/// A region selected by formation, before code transformation.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionSpec {
    /// Function containing the region.
    pub func: FuncId,
    /// CFG shape.
    pub shape: RegionShape,
    /// Deterministic-computation class.
    pub class: ComputationClass,
    /// Distinguishable memory structures the region loads from
    /// (empty for stateless regions; read-only tables excluded — they
    /// can never be invalidated).
    pub mem_objects: Vec<MemObjectId>,
    /// Statically estimated live-in registers.
    pub live_ins: Vec<Reg>,
    /// Statically computed live-out registers.
    pub live_outs: Vec<Reg>,
    /// Static instruction count replaced by a reuse hit.
    pub static_instrs: usize,
    /// Profile weight (executions of the inception point).
    pub exec_weight: u64,
}

/// A region after annotation: carries its hardware identity.
#[derive(Clone, PartialEq, Debug)]
pub struct RegionInfo {
    /// The region id carried by the `reuse` instruction (CRB index).
    pub id: RegionId,
    /// The selection-time descriptor.
    pub spec: RegionSpec,
    /// Number of `invalidate` instructions inserted for this region.
    pub invalidation_sites: usize,
}

impl RegionSpec {
    /// True for cyclic regions.
    pub fn is_cyclic(&self) -> bool {
        matches!(self.shape, RegionShape::Cyclic { .. })
    }

    /// True for function-level (whole-call) regions.
    pub fn is_function_level(&self) -> bool {
        matches!(self.shape, RegionShape::Call { .. })
    }

    /// Number of distinguishable (invalidatable) memory structures.
    pub fn mem_count(&self) -> usize {
        self.mem_objects.len()
    }

    /// Number of statically estimated live-in registers.
    pub fn input_count(&self) -> usize {
        self.live_ins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shape: RegionShape) -> RegionSpec {
        RegionSpec {
            func: FuncId(0),
            shape,
            class: ComputationClass::Stateless,
            mem_objects: vec![],
            live_ins: vec![Reg(0), Reg(1)],
            live_outs: vec![Reg(2)],
            static_instrs: 7,
            exec_weight: 1000,
        }
    }

    #[test]
    fn shape_predicates() {
        let cyc = sample(RegionShape::Cyclic {
            header: BlockId(1),
            preheader: BlockId(0),
            exit_target: BlockId(2),
            body: vec![BlockId(1)],
        });
        assert!(cyc.is_cyclic());
        assert_eq!(cyc.input_count(), 2);
        assert_eq!(cyc.mem_count(), 0);
        let path = sample(RegionShape::Path {
            blocks: vec![BlockId(0)],
            start_pos: 2,
            end_pos: 5,
        });
        assert!(!path.is_cyclic());
    }
}

//! Cyclic region formation.
//!
//! Section 4.4: *"Cyclic reusable regions are identified by detecting
//! inner-nested loops with deterministic computation. This restricts
//! the loops from altering memory state with store and subroutine
//! instructions. Similarly, load instructions within the loop must be
//! classified as determinable. ... The cyclic profiling information is
//! used to check that a loop has a greater than 40% opportunity to
//! reuse results and that greater than 60% of the loop invocations
//! have multiple loop iterations."*

use std::collections::BTreeSet;

use ccr_analysis::{AliasInfo, Determinable, Liveness, LoopForest};
use ccr_ir::{Function, ObjectKind, Op, Program, Reg};
use ccr_profile::{LoopKey, ReuseProfile};

use crate::config::RegionConfig;
use crate::spec::{ComputationClass, RegionShape, RegionSpec};
use crate::stats::FormationStats;

/// Finds cyclic RCR candidates in one function.
pub fn find_cyclic_regions(
    program: &Program,
    func: &Function,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
) -> Vec<RegionSpec> {
    find_cyclic_regions_observed(
        program,
        func,
        profile,
        alias,
        config,
        &mut FormationStats::new(),
    )
}

/// Like [`find_cyclic_regions`], recording each examined inner loop
/// and the gate that rejected it in `stats`.
pub fn find_cyclic_regions_observed(
    _program: &Program,
    func: &Function,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    stats: &mut FormationStats,
) -> Vec<RegionSpec> {
    if config.block_level_only {
        return Vec::new();
    }
    let forest = LoopForest::compute(func);
    let liveness = Liveness::compute(func);
    let mut specs = Vec::new();
    for lp in forest.inner_loops() {
        stats.candidate();
        let key = LoopKey {
            func: func.id(),
            header: lp.header,
        };
        // Profile gates.
        let Some(cyc) = profile.cyclic_profile(key) else {
            stats.reject("no_profile");
            continue;
        };
        if cyc.invocations < config.min_seed_exec {
            stats.reject("cold");
            continue;
        }
        if cyc.reuse_ratio() < config.cyclic_reuse_min {
            stats.reject("low_reuse");
            continue;
        }
        if cyc.multi_iteration_ratio() < config.cyclic_multi_iter_min {
            stats.reject("few_multi_iter");
            continue;
        }
        // Structural gates: unique preheader, single exit target.
        let Some(preheader) = lp.preheader(func) else {
            stats.reject("no_preheader");
            continue;
        };
        let Some(exit_target) = lp.single_exit_target() else {
            stats.reject("multi_exit");
            continue;
        };
        // Deterministic-computation gates.
        let mut mem_objects = BTreeSet::new();
        let mut deterministic = true;
        for &b in &lp.body {
            for instr in &func.block(b).instrs {
                match &instr.op {
                    Op::Store { .. }
                    | Op::Call { .. }
                    | Op::Reuse { .. }
                    | Op::Invalidate { .. } => {
                        deterministic = false;
                    }
                    Op::Load { object, .. } => match alias.load_class(instr.id) {
                        Determinable::No => deterministic = false,
                        Determinable::ReadOnly => {}
                        Determinable::Writable => {
                            mem_objects.insert(*object);
                        }
                    },
                    _ => {}
                }
            }
            if !deterministic {
                break;
            }
        }
        if !deterministic {
            stats.reject("nondeterministic");
            continue;
        }
        if !mem_objects.is_empty() && !config.allow_memory_dependent {
            stats.reject("memory_dependent");
            continue;
        }
        if mem_objects.len() > config.max_mem_objects {
            stats.reject("mem_objects_overflow");
            continue;
        }
        // Register capacity gates.
        let reads: BTreeSet<Reg> = lp
            .body
            .iter()
            .flat_map(|&b| func.block(b).instrs.iter())
            .flat_map(|i| i.src_regs())
            .collect();
        // Sort: liveness sets iterate in hash order, and the input
        // bank layout must not vary run to run.
        let mut live_ins: Vec<Reg> = liveness
            .live_in(lp.header)
            .iter()
            .copied()
            .filter(|r| reads.contains(r))
            .collect();
        live_ins.sort_unstable();
        if live_ins.len() > config.max_live_in {
            stats.reject("live_in_overflow");
            continue;
        }
        let defs: BTreeSet<Reg> = lp
            .body
            .iter()
            .flat_map(|&b| func.block(b).instrs.iter())
            .flat_map(|i| i.dsts())
            .collect();
        let mut live_outs: Vec<Reg> = liveness
            .live_in(exit_target)
            .iter()
            .copied()
            .filter(|r| defs.contains(r))
            .collect();
        live_outs.sort_unstable();
        if live_outs.len() > config.max_live_out {
            stats.reject("live_out_overflow");
            continue;
        }
        stats.accept();
        let static_instrs: usize = lp.body.iter().map(|&b| func.block(b).len()).sum();
        specs.push(RegionSpec {
            func: func.id(),
            shape: RegionShape::Cyclic {
                header: lp.header,
                preheader,
                exit_target,
                body: lp.body.iter().copied().collect(),
            },
            class: if mem_objects.is_empty() {
                ComputationClass::Stateless
            } else {
                ComputationClass::MemoryDependent
            },
            mem_objects: mem_objects.into_iter().collect(),
            live_ins,
            live_outs,
            static_instrs,
            exec_weight: cyc.invocations,
        });
    }
    specs
}

/// True when `kind` marks an object whose loads can never be
/// classified determinable.
pub fn object_blocks_determinism(kind: ObjectKind) -> bool {
    matches!(kind, ObjectKind::Anonymous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, ValueProfiler};

    /// Builds main with an inner scan loop over `table_kind` invoked
    /// `outer` times; when `mutate` is set the table is stored to
    /// before each invocation.
    fn scan_program(readonly: bool, outer: i64, mutate: bool) -> ccr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let tbl = if readonly {
            pb.table("tbl", vec![5, 6, 7, 8, 9, 10, 11, 12])
        } else {
            pb.object("tbl", 8)
        };
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer_b = f.block();
        let inner = f.block();
        let after = f.block();
        let done = f.block();
        f.jump(outer_b);
        f.switch_to(outer_b);
        if mutate {
            f.store(tbl, 0, n);
        }
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(tbl, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 8, inner, after);
        f.switch_to(after);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, outer, outer_b, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    fn find(p: &ccr_ir::Program, config: &RegionConfig) -> Vec<RegionSpec> {
        let mut prof = ValueProfiler::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(p);
        find_cyclic_regions(p, p.function(p.main()), &profile, &alias, config)
    }

    #[test]
    fn readonly_scan_loop_becomes_stateless_cyclic_region() {
        let p = scan_program(true, 100, false);
        let specs = find(&p, &RegionConfig::paper());
        assert_eq!(specs.len(), 1, "{specs:?}");
        let s = &specs[0];
        assert!(s.is_cyclic());
        assert_eq!(s.class, ComputationClass::Stateless);
        assert!(s.mem_objects.is_empty());
        assert_eq!(s.exec_weight, 100);
        // Live-outs must include the loop's sum.
        assert!(!s.live_outs.is_empty());
    }

    #[test]
    fn writable_table_gives_memory_dependent_region() {
        let p = scan_program(false, 100, false);
        let specs = find(&p, &RegionConfig::paper());
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].class, ComputationClass::MemoryDependent);
        assert_eq!(specs[0].mem_objects.len(), 1);
    }

    #[test]
    fn stateless_only_config_rejects_md() {
        let p = scan_program(false, 100, false);
        let specs = find(&p, &RegionConfig::stateless_only());
        assert!(specs.is_empty());
    }

    #[test]
    fn mutated_table_fails_reuse_gate() {
        let p = scan_program(false, 100, true);
        let specs = find(&p, &RegionConfig::paper());
        // Every invocation's memory state differs: 0% reuse
        // opportunity < 40% gate.
        assert!(specs.is_empty(), "{specs:?}");
    }

    #[test]
    fn low_invocation_count_fails_seed_gate() {
        let p = scan_program(true, 8, false);
        let specs = find(&p, &RegionConfig::paper());
        assert!(specs.is_empty());
    }

    #[test]
    fn rejection_reasons_are_recorded() {
        // The mutated-table program fails the 40% reuse-opportunity
        // gate; the stats must say so.
        let p = scan_program(false, 100, true);
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(&p);
        let mut stats = FormationStats::new();
        let specs = find_cyclic_regions_observed(
            &p,
            p.function(p.main()),
            &profile,
            &alias,
            &RegionConfig::paper(),
            &mut stats,
        );
        assert!(specs.is_empty());
        stats.check();
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.rejected_for("low_reuse"), 1, "{stats:?}");
        // The accepted path counts too.
        let p = scan_program(true, 100, false);
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(&p);
        let mut stats = FormationStats::new();
        let specs = find_cyclic_regions_observed(
            &p,
            p.function(p.main()),
            &profile,
            &alias,
            &RegionConfig::paper(),
            &mut stats,
        );
        assert_eq!(specs.len(), 1);
        assert_eq!(stats.accepted, 1);
        stats.check();
    }

    #[test]
    fn block_level_only_disables_cyclic() {
        let p = scan_program(true, 100, false);
        let specs = find(&p, &RegionConfig::block_level());
        assert!(specs.is_empty());
    }

    #[test]
    fn anonymous_memory_blocks_determinism() {
        assert!(object_blocks_determinism(ObjectKind::Anonymous));
        assert!(!object_blocks_determinism(ObjectKind::Named));
        let mut pb = ProgramBuilder::new();
        let h = pb.heap("h", 8);
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer_b = f.block();
        let inner = f.block();
        let after = f.block();
        let done = f.block();
        f.jump(outer_b);
        f.switch_to(outer_b);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(h, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 8, inner, after);
        f.switch_to(after);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, 100, outer_b, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let specs = find(&p, &RegionConfig::paper());
        assert!(specs.is_empty(), "anonymous loads must block the region");
    }
}

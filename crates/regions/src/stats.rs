//! Region-formation observability.
//!
//! Every formation pass reports how many candidates it examined, how
//! many became regions, and why the rest were rejected — keyed by a
//! stable reason string (`"no_preheader"`, `"live_in_overflow"`,
//! `"budget"`, …). The driver and `ccr-core` surface these through
//! telemetry so a formation run can be audited without a debugger.

use std::collections::BTreeMap;

/// Candidate / accepted / rejected counts for one formation run.
///
/// Invariant (checked by [`FormationStats::check`]): every candidate
/// is either accepted or rejected exactly once, so
/// `candidates == accepted + rejected_total()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FormationStats {
    /// Candidates examined (inner loops, acyclic seeds, call sites).
    pub candidates: u64,
    /// Candidates that became regions.
    pub accepted: u64,
    rejected: BTreeMap<&'static str, u64>,
}

impl FormationStats {
    /// Creates zeroed stats.
    pub fn new() -> FormationStats {
        FormationStats::default()
    }

    /// Notes one candidate examined.
    pub fn candidate(&mut self) {
        self.candidates += 1;
    }

    /// Notes one candidate accepted.
    pub fn accept(&mut self) {
        self.accepted += 1;
    }

    /// Notes one candidate rejected for `reason`.
    pub fn reject(&mut self, reason: &'static str) {
        *self.rejected.entry(reason).or_insert(0) += 1;
    }

    /// Notes `n` candidates rejected for `reason`.
    pub fn reject_n(&mut self, reason: &'static str, n: u64) {
        if n > 0 {
            *self.rejected.entry(reason).or_insert(0) += n;
        }
    }

    /// Moves `n` previously-accepted candidates to rejected (used by
    /// the driver when the region-id budget truncates the list).
    pub fn demote(&mut self, reason: &'static str, n: u64) {
        debug_assert!(n <= self.accepted, "demoting more than accepted");
        self.accepted -= n.min(self.accepted);
        self.reject_n(reason, n);
    }

    /// Total rejections across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// Count rejected for one reason.
    pub fn rejected_for(&self, reason: &str) -> u64 {
        self.rejected.get(reason).copied().unwrap_or(0)
    }

    /// `(reason, count)` pairs, sorted by reason.
    pub fn rejections(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.rejected.iter().map(|(&r, &c)| (r, c))
    }

    /// Checks the accounting invariant; call once a formation run is
    /// complete. Debug builds panic on violation.
    pub fn check(&self) {
        debug_assert_eq!(
            self.candidates,
            self.accepted + self.rejected_total(),
            "formation stats out of balance: {self:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_balance() {
        let mut s = FormationStats::new();
        for _ in 0..5 {
            s.candidate();
        }
        s.accept();
        s.accept();
        s.reject("cold");
        s.reject("cold");
        s.reject("live_in_overflow");
        s.check();
        assert_eq!(s.candidates, 5);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.rejected_total(), 3);
        assert_eq!(s.rejected_for("cold"), 2);
        assert_eq!(s.rejected_for("missing"), 0);
        let reasons: Vec<_> = s.rejections().collect();
        assert_eq!(reasons, vec![("cold", 2), ("live_in_overflow", 1)]);
    }

    #[test]
    fn demote_moves_accepted_to_rejected() {
        let mut s = FormationStats::new();
        for _ in 0..3 {
            s.candidate();
            s.accept();
        }
        s.demote("budget", 2);
        s.check();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.rejected_for("budget"), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of balance")]
    fn check_catches_imbalance() {
        let mut s = FormationStats::new();
        s.candidate();
        s.check();
    }
}

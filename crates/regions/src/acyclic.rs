//! Acyclic region formation.
//!
//! Section 4.4's five-step decision process: *seed selection* (highest
//! weight among instructions with high value invariance), *successor
//! formation* (extend along the flow of values while instructions stay
//! individually reusable and the region respects the input / memory
//! accordance limits), *predecessor formation* (the same, backwards),
//! *subordinate path formation* (crossing likely control-flow edges to
//! adjacent blocks), and *reiteration*.
//!
//! Our regions are contiguous instruction ranges over a path of basic
//! blocks (the base optimizer's block merging already forms
//! superblock-like traces, so contiguous ranges capture the paper's
//! reordered dataflow regions well). One region claims its blocks
//! exclusively, which keeps the later splitting transformation simple.
//!
//! The static live-in estimate is approximate on purpose: the
//! *hardware* enforces the input-bank capacity exactly (memoization
//! aborts past eight registers), so an optimistic compiler estimate
//! costs performance, never correctness.

use std::collections::{BTreeSet, HashMap, HashSet};

use ccr_analysis::{AliasInfo, Determinable, Liveness};
use ccr_ir::{BlockId, Function, Instr, Op, Program, Reg};
use ccr_profile::ReuseProfile;

use crate::config::RegionConfig;
use crate::spec::{ComputationClass, RegionShape, RegionSpec};
use crate::stats::FormationStats;

/// Maximum blocks on one acyclic path region.
pub const MAX_PATH_BLOCKS: usize = 8;

/// Finds acyclic RCR candidates in one function. Blocks listed in
/// `occupied` (e.g. claimed by cyclic regions) are skipped, and blocks
/// claimed here are added to it.
pub fn find_acyclic_regions(
    program: &Program,
    func: &Function,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    occupied: &mut HashSet<BlockId>,
) -> Vec<RegionSpec> {
    find_acyclic_regions_observed(
        program,
        func,
        profile,
        alias,
        config,
        occupied,
        &mut FormationStats::new(),
    )
}

/// Like [`find_acyclic_regions`], recording each seed-growth attempt
/// and why failed ones died in `stats`.
#[allow(clippy::too_many_arguments)]
pub fn find_acyclic_regions_observed(
    program: &Program,
    func: &Function,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    occupied: &mut HashSet<BlockId>,
    stats: &mut FormationStats,
) -> Vec<RegionSpec> {
    let _ = program;
    let liveness = Liveness::compute(func);
    let mut specs: Vec<RegionSpec> = Vec::new();
    // Instruction ranges already claimed by single-block regions.
    let mut claimed: HashMap<BlockId, Vec<(usize, usize)>> = HashMap::new();

    // Rank candidate blocks hottest-first by the weight of their
    // first instruction.
    let mut blocks: Vec<BlockId> = func
        .iter_blocks()
        .filter(|(b, _)| !occupied.contains(b))
        .map(|(b, _)| b)
        .collect();
    blocks.sort_by_key(|b| {
        std::cmp::Reverse(
            func.block(*b)
                .instrs
                .first()
                .map_or(0, |i| profile.exec(i.id)),
        )
    });

    for seed_block in blocks {
        // Grow as many disjoint regions out of this block as the
        // heuristics find (seed selection skips claimed ranges).
        loop {
            if occupied.contains(&seed_block) {
                break;
            }
            let ranges = claimed.get(&seed_block).cloned().unwrap_or_default();
            let Some(seed_pos) = select_seed(func, seed_block, profile, alias, config, &ranges)
            else {
                break;
            };
            stats.candidate();
            let spec = match grow(
                func, seed_block, seed_pos, profile, alias, config, occupied, &claimed, &liveness,
            ) {
                Ok(spec) => spec,
                Err(reason) => {
                    // The seed could not grow into a viable region;
                    // mark the position consumed so selection moves on.
                    stats.reject(reason);
                    claimed
                        .entry(seed_block)
                        .or_default()
                        .push((seed_pos, seed_pos));
                    continue;
                }
            };
            stats.accept();
            match &spec.shape {
                RegionShape::Path {
                    blocks,
                    start_pos,
                    end_pos,
                } if blocks.len() == 1 => {
                    let ranges = claimed.entry(blocks[0]).or_default();
                    ranges.push((*start_pos, *end_pos));
                    // Tail trimming may have dropped the seed out of
                    // the final range; claim it anyway so selection
                    // cannot loop on the same seed.
                    if !pos_claimed(ranges, seed_pos) {
                        ranges.push((seed_pos, seed_pos));
                    }
                }
                RegionShape::Path { blocks, .. } => {
                    occupied.extend(blocks.iter().copied());
                }
                RegionShape::Cyclic { .. } | RegionShape::Call { .. } => {
                    unreachable!("acyclic formation")
                }
            }
            specs.push(spec);
        }
    }
    specs
}

fn pos_claimed(ranges: &[(usize, usize)], pos: usize) -> bool {
    ranges.iter().any(|&(s, e)| pos >= s && pos <= e)
}

/// Memory cost of including an instruction: `None` if not reusable,
/// otherwise the writable object it adds (if any).
fn interior_reusable(
    instr: &Instr,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
) -> Option<Option<ccr_ir::MemObjectId>> {
    let reusable_ratio = profile.invariance_ratio(instr.id, config.top_k);
    match &instr.op {
        Op::Binary { .. } | Op::Unary { .. } | Op::Cmp { .. } => {
            (reusable_ratio >= config.r_threshold).then_some(None)
        }
        Op::Nop => Some(None),
        Op::Load { object, .. } => {
            if reusable_ratio < config.r_threshold {
                return None;
            }
            match alias.load_class(instr.id) {
                Determinable::No => None,
                Determinable::ReadOnly => Some(None),
                Determinable::Writable => {
                    if !config.allow_memory_dependent {
                        return None;
                    }
                    (profile.mem_unchanged_ratio(instr.id) >= config.rm_threshold)
                        .then_some(Some(*object))
                }
            }
        }
        _ => None,
    }
}

/// Picks the highest-weight reusable instruction in a block as the
/// reuse seed.
fn select_seed(
    func: &Function,
    block: BlockId,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    claimed: &[(usize, usize)],
) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (pos, instr) in func.block(block).instrs.iter().enumerate() {
        if pos_claimed(claimed, pos) {
            continue;
        }
        if interior_reusable(instr, profile, alias, config).is_none() {
            continue;
        }
        let w = profile.exec(instr.id);
        if w < config.min_seed_exec {
            continue;
        }
        if best.is_none_or(|(bw, _)| w > bw) {
            best = Some((w, pos));
        }
    }
    best.map(|(_, pos)| pos)
}

struct Growth {
    blocks: Vec<BlockId>,
    start_pos: usize,
    end_pos: usize,
    mem_objects: BTreeSet<ccr_ir::MemObjectId>,
}

impl Growth {
    fn instrs<'f>(&self, func: &'f Function) -> Vec<&'f Instr> {
        let mut out = Vec::new();
        for (i, &b) in self.blocks.iter().enumerate() {
            let block = func.block(b);
            let lo = if i == 0 { self.start_pos } else { 0 };
            let hi = if i + 1 == self.blocks.len() {
                self.end_pos
            } else {
                block.len() - 1
            };
            out.extend(&block.instrs[lo..=hi]);
        }
        out
    }

    fn live_in_estimate(&self, func: &Function) -> BTreeSet<Reg> {
        let mut written: BTreeSet<Reg> = BTreeSet::new();
        let mut ins = BTreeSet::new();
        for instr in self.instrs(func) {
            for r in instr.src_regs() {
                if !written.contains(&r) {
                    ins.insert(r);
                }
            }
            written.extend(instr.dsts());
        }
        ins
    }

    fn static_len(&self, func: &Function) -> usize {
        self.instrs(func).len()
    }
}

#[allow(clippy::too_many_arguments)]
fn grow(
    func: &Function,
    seed_block: BlockId,
    seed_pos: usize,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    occupied: &HashSet<BlockId>,
    claimed: &HashMap<BlockId, Vec<(usize, usize)>>,
    liveness: &Liveness,
) -> Result<RegionSpec, &'static str> {
    let seed_ranges: &[(usize, usize)] = claimed.get(&seed_block).map_or(&[], Vec::as_slice);
    // A block already hosting other regions keeps new ones local:
    // whole-block claims by a path would collide with the ranges.
    let may_cross = seed_ranges.is_empty();
    let mut g = Growth {
        blocks: vec![seed_block],
        start_pos: seed_pos,
        end_pos: seed_pos,
        mem_objects: BTreeSet::new(),
    };
    if let Some(Some(obj)) = interior_reusable(
        &func.block(seed_block).instrs[seed_pos],
        profile,
        alias,
        config,
    ) {
        g.mem_objects.insert(obj);
    }

    // Successor formation: forward within the block, crossing likely
    // edges when the block is exhausted.
    loop {
        let cur_block = *g.blocks.last().expect("non-empty path");
        let block = func.block(cur_block);
        let next_pos = g.end_pos + 1;
        if next_pos + 1 < block.len() {
            // An interior (non-terminator) instruction.
            if g.blocks.len() == 1 && pos_claimed(seed_ranges, next_pos) {
                break;
            }
            let instr = &block.instrs[next_pos];
            if !try_extend_end(&mut g, func, instr, next_pos, profile, alias, config) {
                break;
            }
        } else if next_pos + 1 == block.len() {
            // Only the terminator remains: try to cross to the next
            // block on the likely edge.
            if config.block_level_only || !may_cross || g.blocks.len() >= MAX_PATH_BLOCKS {
                break;
            }
            let term = block.terminator().expect("verified block");
            let Some(next_block) = likely_successor(term, profile, config) else {
                break;
            };
            if occupied.contains(&next_block)
                || claimed.get(&next_block).is_some_and(|v| !v.is_empty())
                || g.blocks.contains(&next_block)
                || func.block(next_block).is_empty()
            {
                break;
            }
            // Include the terminator and move into the next block.
            g.blocks.push(next_block);
            g.end_pos = 0;
            // The first instruction of the next block must itself be
            // reusable; otherwise retreat.
            let first = &func.block(next_block).instrs[0];
            let ok = func.block(next_block).len() > 1
                && interior_reusable(first, profile, alias, config).is_some()
                && admit(&mut g, func, first, profile, alias, config);
            if !ok {
                g.blocks.pop();
                g.end_pos = func.block(cur_block).len().saturating_sub(2);
                break;
            }
        } else {
            break;
        }
    }

    // Predecessor formation: backward within the first block.
    while g.start_pos > 0 {
        if pos_claimed(seed_ranges, g.start_pos - 1) {
            break;
        }
        let instr = &func.block(g.blocks[0]).instrs[g.start_pos - 1];
        let Some(mem) = interior_reusable(instr, profile, alias, config) else {
            break;
        };
        let mut trial_mem = g.mem_objects.clone();
        if let Some(obj) = mem {
            trial_mem.insert(obj);
        }
        if trial_mem.len() > config.max_mem_objects {
            break;
        }
        g.start_pos -= 1;
        let old_mem = std::mem::replace(&mut g.mem_objects, trial_mem);
        if g.live_in_estimate(func).len() > config.max_live_in {
            g.start_pos += 1;
            g.mem_objects = old_mem;
            break;
        }
    }

    // Live-out computation, shrinking the tail if over budget.
    let live_outs = loop {
        let last = *g.blocks.last().expect("non-empty");
        let after = liveness.live_before(func, last, g.end_pos + 1);
        let defined: BTreeSet<Reg> = g.instrs(func).iter().flat_map(|i| i.dsts()).collect();
        // Sort: liveness sets iterate in hash order, and the output
        // bank layout must not vary run to run.
        let mut louts: Vec<Reg> = after.into_iter().filter(|r| defined.contains(r)).collect();
        louts.sort_unstable();
        if louts.len() <= config.max_live_out {
            break louts;
        }
        if g.blocks.len() > 1 || g.end_pos == g.start_pos {
            return Err("live_out_overflow"); // cannot shrink a path region's tail simply
        }
        g.end_pos -= 1;
    };

    // Size and weight gates.
    if g.static_len(func) < config.min_region_instrs {
        return Err("too_small");
    }
    let inception = &func.block(g.blocks[0]).instrs[g.start_pos];
    let exec_weight = profile.exec(inception.id);
    if exec_weight < config.min_seed_exec {
        return Err("cold");
    }
    let live_ins: Vec<Reg> = g.live_in_estimate(func).into_iter().collect();
    if live_ins.len() > config.max_live_in {
        return Err("live_in_overflow");
    }
    // A region that defines nothing the rest of the program reads is
    // useless (and its reuse would be removed by DCE anyway).
    if live_outs.is_empty() {
        return Err("no_live_outs");
    }
    let class = if g.mem_objects.is_empty() {
        ComputationClass::Stateless
    } else {
        ComputationClass::MemoryDependent
    };
    Ok(RegionSpec {
        func: func.id(),
        shape: RegionShape::Path {
            blocks: g.blocks.clone(),
            start_pos: g.start_pos,
            end_pos: g.end_pos,
        },
        class,
        mem_objects: g.mem_objects.iter().copied().collect(),
        live_ins,
        live_outs,
        static_instrs: g.static_len(func),
        exec_weight,
    })
}

/// Tries to append an interior instruction to the region tail.
fn try_extend_end(
    g: &mut Growth,
    func: &Function,
    instr: &Instr,
    pos: usize,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
) -> bool {
    if interior_reusable(instr, profile, alias, config).is_none() {
        return false;
    }
    let saved = g.end_pos;
    g.end_pos = pos;
    if admit(g, func, instr, profile, alias, config) {
        true
    } else {
        g.end_pos = saved;
        false
    }
}

/// Checks memory/live-in budgets after a tentative extension whose
/// position is already recorded in `g`.
fn admit(
    g: &mut Growth,
    func: &Function,
    instr: &Instr,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
) -> bool {
    let mem = match interior_reusable(instr, profile, alias, config) {
        Some(m) => m,
        None => return false,
    };
    let mut trial = g.mem_objects.clone();
    if let Some(obj) = mem {
        trial.insert(obj);
    }
    if trial.len() > config.max_mem_objects {
        return false;
    }
    if g.live_in_estimate(func).len() > config.max_live_in {
        return false;
    }
    g.mem_objects = trial;
    true
}

/// The successor a region path may cross into: a jump target, or the
/// likely arm of a biased branch whose operands are invariant enough
/// to reuse.
fn likely_successor(
    term: &Instr,
    profile: &ReuseProfile,
    config: &RegionConfig,
) -> Option<BlockId> {
    match &term.op {
        Op::Jump { target } => Some(*target),
        Op::Branch {
            taken, not_taken, ..
        } => {
            if profile.invariance_ratio(term.id, config.top_k) < config.r_threshold {
                return None;
            }
            let ratio = profile.taken_ratio(term.id);
            if ratio >= config.likely_edge_ratio {
                Some(*taken)
            } else if ratio <= 1.0 - config.likely_edge_ratio {
                Some(*not_taken)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, ValueProfiler};

    /// The paper's espresso `count_ones` example, driven with a small
    /// set of repeating words: a straight-line block computing from a
    /// single input register through a read-only table.
    fn bitcount_program() -> ccr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let bits: Vec<i64> = (0..256).map(|v: i64| v.count_ones() as i64).collect();
        let bit_count = pb.table("bit_count", bits);
        // Words repeat from a 3-element pool.
        let words = pb.table("words", vec![0x00ff_00ff, 0x0f0f_0f0f, 0x1234_5678]);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let sel = f.rem(i, 3);
        let v = f.load(words, sel);
        let b0 = f.and(v, 255);
        let c0 = f.load(bit_count, b0);
        let s1 = f.shr(v, 8);
        let b1 = f.and(s1, 255);
        let c1 = f.load(bit_count, b1);
        let s2 = f.shr(v, 16);
        let b2 = f.and(s2, 255);
        let c2 = f.load(bit_count, b2);
        let s3 = f.shr(v, 24);
        let b3 = f.and(s3, 255);
        let c3 = f.load(bit_count, b3);
        let t0 = f.add(c0, c1);
        let t1 = f.add(c2, c3);
        let ones = f.add(t0, t1);
        f.bin_into(BinKind::Add, acc, acc, ones);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 300, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    fn find(p: &ccr_ir::Program, config: &RegionConfig) -> Vec<RegionSpec> {
        let mut prof = ValueProfiler::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(p);
        let mut occupied = HashSet::new();
        find_acyclic_regions(
            p,
            p.function(p.main()),
            &profile,
            &alias,
            config,
            &mut occupied,
        )
    }

    #[test]
    fn bitcount_block_forms_a_stateless_region() {
        let p = bitcount_program();
        let specs = find(&p, &RegionConfig::paper());
        assert!(!specs.is_empty(), "no region formed");
        let s = &specs[0];
        assert!(!s.is_cyclic());
        // The bit_count table is read-only, so the region is
        // stateless despite its four loads.
        assert_eq!(s.class, ComputationClass::Stateless);
        assert!(s.mem_objects.is_empty());
        // The region should capture most of the 16-instruction
        // bit-count computation.
        assert!(s.static_instrs >= 10, "only {} instrs", s.static_instrs);
        assert!(s.live_outs.len() <= 8);
        assert!(!s.live_outs.is_empty());
    }

    #[test]
    fn varying_induction_arithmetic_is_excluded() {
        let p = bitcount_program();
        let specs = find(&p, &RegionConfig::paper());
        let s = &specs[0];
        // The `rem i, 3` and the `acc +=` / `i += 1` updates never
        // repeat their inputs; the region must not include them, so it
        // stays strictly inside the block.
        let RegionShape::Path {
            blocks,
            start_pos,
            end_pos,
        } = &s.shape
        else {
            panic!("expected path");
        };
        assert_eq!(blocks.len(), 1);
        let block = p.function(p.main()).block(blocks[0]);
        assert!(*start_pos > 0, "induction-dependent prefix excluded");
        assert!(
            *end_pos + 1 < block.len() - 1,
            "loop update suffix excluded"
        );
    }

    #[test]
    fn low_threshold_admits_more_instructions() {
        let p = bitcount_program();
        let strict = find(&p, &RegionConfig::paper());
        let loose = find(
            &p,
            &RegionConfig {
                r_threshold: 0.05,
                min_region_instrs: 2,
                ..RegionConfig::paper()
            },
        );
        let strict_len: usize = strict.iter().map(|s| s.static_instrs).sum();
        let loose_len: usize = loose.iter().map(|s| s.static_instrs).sum();
        assert!(loose_len >= strict_len, "{loose_len} < {strict_len}");
    }

    #[test]
    fn occupied_blocks_are_skipped() {
        let p = bitcount_program();
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(&p);
        let mut occupied: HashSet<BlockId> =
            p.function(p.main()).iter_blocks().map(|(b, _)| b).collect();
        let specs = find_acyclic_regions(
            &p,
            p.function(p.main()),
            &profile,
            &alias,
            &RegionConfig::paper(),
            &mut occupied,
        );
        assert!(specs.is_empty());
    }

    #[test]
    fn min_size_gate_rejects_tiny_regions() {
        let p = bitcount_program();
        let specs = find(
            &p,
            &RegionConfig {
                min_region_instrs: 64,
                ..RegionConfig::paper()
            },
        );
        assert!(specs.is_empty());
    }

    #[test]
    fn path_regions_cross_likely_edges() {
        // Two blocks joined by a highly-biased branch whose operands
        // repeat: the region should span both.
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![10, 20]);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let head = f.block();
        let second = f.block();
        let rare = f.block();
        let join = f.block();
        let done = f.block();
        f.jump(head);
        f.switch_to(head);
        let e = f.fresh();
        let sel = f.and(i, 1);
        let v = f.load(t, sel);
        let a = f.mul(v, 3);
        let b = f.add(a, 5);
        // Branch on a repeating value: always not-taken (v*3+5 != 0).
        f.br(CmpPred::Eq, b, 0, rare, second);
        f.switch_to(second);
        let c = f.xor(b, v);
        let d = f.add(c, a);
        f.bin_into(BinKind::Mul, e, d, 2);
        f.jump(join);
        f.switch_to(rare);
        f.assign(e, 0);
        f.jump(join);
        f.switch_to(join);
        f.bin_into(BinKind::Add, acc, acc, e);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 200, head, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        ccr_ir::verify_program(&p).unwrap();
        let specs = find(&p, &RegionConfig::paper());
        let multi = specs.iter().find(|s| match &s.shape {
            RegionShape::Path { blocks, .. } => blocks.len() >= 2,
            _ => false,
        });
        assert!(
            multi.is_some(),
            "expected a multi-block path region: {specs:?}"
        );
    }
}

//! The region annotation transformation.
//!
//! Turns selected [`RegionSpec`]s into the ISA encoding of Section 3.2:
//!
//! * the **inception point** becomes a `reuse` terminator whose `body`
//!   edge enters the original region code and whose `cont` edge skips
//!   it,
//! * the **finish point** is a fresh jump trampoline carrying the
//!   region-endpoint extension (recording happens when it executes),
//! * every **exit point** (control leaving the region mid-way) is
//!   routed through a jump trampoline carrying the region-exit
//!   extension (memoization aborts when it executes) — trampolines
//!   give the *edge* semantics the paper assigns to its control
//!   extensions while keeping extensions per-instruction,
//! * instructions defining the region's live-out registers receive the
//!   **live-out** extension,
//! * for memory-dependent regions, an `invalidate` instruction is
//!   inserted after every store in the whole program that may write
//!   one of the region's input structures (the compiler knows them all
//!   — that is what *determinable* means).

use std::collections::{BTreeSet, HashMap};

use ccr_analysis::AliasInfo;
use ccr_ir::{BlockId, FuncId, InstrExt, Op, Program, Reg, RegionId};

use crate::spec::{RegionInfo, RegionShape, RegionSpec};

/// Applies all region annotations to `program`.
///
/// Regions must not share blocks (formation guarantees this); each
/// transformation only splits blocks it owns and appends new blocks,
/// so the specs' block coordinates remain valid throughout.
pub fn annotate(program: &mut Program, specs: Vec<RegionSpec>) -> Vec<RegionInfo> {
    let alias = AliasInfo::compute(program);
    // Region ids follow the input order (dense from the program's
    // counter), regardless of the order transformations are applied.
    let ids: Vec<_> = specs.iter().map(|_| program.fresh_region_id()).collect();

    // Safe application order: cyclic regions first (no splitting),
    // then path regions grouped so that, within one block, later
    // ranges split before earlier ones — every split leaves the block
    // prefix (where all not-yet-processed coordinates live) intact.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| match &specs[i].shape {
        RegionShape::Cyclic { .. } => (0u8, specs[i].func.0, 0u32, 0i64),
        RegionShape::Path {
            blocks, start_pos, ..
        } => (1, specs[i].func.0, blocks[0].0, -(*start_pos as i64)),
        RegionShape::Call { block, pos, .. } => (1, specs[i].func.0, block.0, -(*pos as i64)),
    });

    let mut inval_sites = vec![0usize; specs.len()];
    for &i in &order {
        let spec = &specs[i];
        let region = ids[i];
        match spec.shape.clone() {
            RegionShape::Cyclic {
                header,
                preheader,
                exit_target,
                body,
            } => apply_cyclic(program, spec, region, header, preheader, exit_target, &body),
            RegionShape::Path {
                blocks,
                start_pos,
                end_pos,
            } => apply_path(program, spec, region, &blocks, start_pos, end_pos),
            RegionShape::Call { block, pos, .. } => apply_call(program, spec, region, block, pos),
        }
        inval_sites[i] = insert_invalidates(program, spec, region, &alias);
    }
    let infos: Vec<RegionInfo> = specs
        .into_iter()
        .zip(ids)
        .zip(inval_sites)
        .map(|((spec, id), invalidation_sites)| RegionInfo {
            id,
            spec,
            invalidation_sites,
        })
        .collect();
    debug_assert!(
        ccr_ir::verify_program(program).is_ok(),
        "annotation broke the program: {:?}",
        ccr_ir::verify_program(program).err()
    );
    infos
}

/// Splits block `b` at `at`, returning the new block holding the tail.
fn split_off(program: &mut Program, func: FuncId, b: BlockId, at: usize) -> BlockId {
    let new = program.function_mut(func).add_block();
    let f = program.function_mut(func);
    let tail = f.block_mut(b).instrs.split_off(at);
    f.block_mut(new).instrs = tail;
    new
}

fn push_marked_jump(
    program: &mut Program,
    func: FuncId,
    b: BlockId,
    target: BlockId,
    ext: InstrExt,
) {
    let mut j = program.new_instr(Op::Jump { target });
    j.ext = ext;
    program.function_mut(func).block_mut(b).instrs.push(j);
}

fn mark_live_outs(program: &mut Program, func: FuncId, blocks: &[BlockId], live_outs: &[Reg]) {
    let set: BTreeSet<Reg> = live_outs.iter().copied().collect();
    let f = program.function_mut(func);
    for &b in blocks {
        for instr in &mut f.block_mut(b).instrs {
            if let Some(d) = instr.dst() {
                if set.contains(&d) {
                    instr.ext = instr.ext | InstrExt::LIVE_OUT;
                }
            }
        }
    }
}

/// Routes every region-leaving edge that is not the designated finish
/// through a `region_exit` trampoline.
fn add_exit_trampolines(
    program: &mut Program,
    func: FuncId,
    region_blocks: &BTreeSet<BlockId>,
    finish_target: BlockId,
) {
    let mut trampolines: HashMap<BlockId, BlockId> = HashMap::new();
    let blocks: Vec<BlockId> = region_blocks.iter().copied().collect();
    for b in blocks {
        let succs: Vec<BlockId> = program.function(func).block(b).successors();
        let needs: Vec<BlockId> = succs
            .into_iter()
            .filter(|s| !region_blocks.contains(s) && *s != finish_target)
            .collect();
        for out in needs {
            let tram = match trampolines.get(&out) {
                Some(t) => *t,
                None => {
                    let t = program.function_mut(func).add_block();
                    push_marked_jump(program, func, t, out, InstrExt::REGION_EXIT);
                    trampolines.insert(out, t);
                    t
                }
            };
            // Skip the marked trampoline/finish jumps themselves.
            let f = program.function_mut(func);
            if let Some(term) = f.block_mut(b).terminator_mut() {
                if term.ext.contains(InstrExt::REGION_END)
                    || term.ext.contains(InstrExt::REGION_EXIT)
                {
                    continue;
                }
                term.map_successors(|s| if s == out { tram } else { s });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_cyclic(
    program: &mut Program,
    spec: &RegionSpec,
    region: RegionId,
    header: BlockId,
    preheader: BlockId,
    exit_target: BlockId,
    body: &[BlockId],
) {
    let func = spec.func;
    // Finish trampoline: executing it leaves the loop normally and
    // records the instance.
    let t_end = program.function_mut(func).add_block();
    push_marked_jump(program, func, t_end, exit_target, InstrExt::REGION_END);
    // Reroute all loop exits through it.
    for &b in body {
        let f = program.function_mut(func);
        if let Some(term) = f.block_mut(b).terminator_mut() {
            term.map_successors(|s| if s == exit_target { t_end } else { s });
        }
    }
    // The reuse instruction sits on the preheader→header edge.
    let rb = program.function_mut(func).add_block();
    let reuse = program.new_instr(Op::Reuse {
        region,
        body: header,
        cont: exit_target,
    });
    program.function_mut(func).block_mut(rb).instrs.push(reuse);
    let f = program.function_mut(func);
    if let Some(term) = f.block_mut(preheader).terminator_mut() {
        term.map_successors(|s| if s == header { rb } else { s });
    }
    mark_live_outs(program, func, body, &spec.live_outs);
}

fn apply_path(
    program: &mut Program,
    spec: &RegionSpec,
    region: RegionId,
    blocks: &[BlockId],
    start_pos: usize,
    end_pos: usize,
) {
    let func = spec.func;
    let first = blocks[0];
    let last = *blocks.last().expect("non-empty path");
    // Split the tail off the last block; the finish jump replaces it.
    let cont = split_off(program, func, last, end_pos + 1);
    push_marked_jump(program, func, last, cont, InstrExt::REGION_END);
    // Split the region start out of the first block. When the path
    // has one block, `last == first`, and the earlier tail split left
    // exactly the range [start..=end] plus the finish jump in it.
    let body_entry = split_off(program, func, first, start_pos);
    let reuse = program.new_instr(Op::Reuse {
        region,
        body: body_entry,
        cont,
    });
    program
        .function_mut(func)
        .block_mut(first)
        .instrs
        .push(reuse);
    // Region blocks after splitting: the new body entry plus the
    // original path minus its first block.
    let mut region_blocks: BTreeSet<BlockId> = blocks[1..].iter().copied().collect();
    region_blocks.insert(body_entry);
    add_exit_trampolines(program, func, &region_blocks, cont);
    let region_block_list: Vec<BlockId> = region_blocks.into_iter().collect();
    mark_live_outs(program, func, &region_block_list, &spec.live_outs);
}

/// Wraps a call site in a reuse region: the body block holds just the
/// call (marked live-out — its result registers fill the output bank)
/// followed by the region-end jump; a hit skips the entire dynamic
/// call.
fn apply_call(
    program: &mut Program,
    spec: &RegionSpec,
    region: RegionId,
    block: BlockId,
    pos: usize,
) {
    let func = spec.func;
    let cont = split_off(program, func, block, pos + 1);
    let body = split_off(program, func, block, pos);
    {
        let f = program.function_mut(func);
        let call = &mut f.block_mut(body).instrs[0];
        debug_assert!(call.is_call(), "call region must wrap a call");
        call.ext = call.ext | InstrExt::LIVE_OUT;
    }
    push_marked_jump(program, func, body, cont, InstrExt::REGION_END);
    let reuse = program.new_instr(Op::Reuse { region, body, cont });
    program
        .function_mut(func)
        .block_mut(block)
        .instrs
        .push(reuse);
}

/// Inserts `invalidate` after every store that may write one of the
/// region's memory structures. Returns the number of sites.
fn insert_invalidates(
    program: &mut Program,
    spec: &RegionSpec,
    region: RegionId,
    alias: &AliasInfo,
) -> usize {
    let mut sites = 0;
    for &obj in &spec.mem_objects {
        for &(func, store_id) in alias.store_sites(obj) {
            let (b, pos) = program
                .function(func)
                .find_instr(store_id)
                .expect("store site survived annotation");
            let inv = program.new_instr(Op::Invalidate { region });
            program
                .function_mut(func)
                .block_mut(b)
                .instrs
                .insert(pos + 1, inv);
            sites += 1;
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ComputationClass;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, NullSink};

    /// Hand-built single-block path region over a bit-trick sequence.
    fn path_program() -> (ccr_ir::Program, RegionSpec) {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![7, 11]);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let sel = f.and(i, 1); // pos 0
        let v = f.load(t, sel); // pos 1 (region start)
        let a = f.mul(v, 3); // pos 2
        let b = f.add(a, 9); // pos 3 (region end)
        f.bin_into(BinKind::Add, acc, acc, b); // pos 4
        f.inc(i, 1); // pos 5
        f.br(CmpPred::Lt, i, 50, body, done); // pos 6
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let program = pb.finish();
        let spec = RegionSpec {
            func: id,
            shape: RegionShape::Path {
                blocks: vec![body],
                start_pos: 1,
                end_pos: 3,
            },
            class: ComputationClass::Stateless,
            mem_objects: vec![],
            live_ins: vec![sel],
            live_outs: vec![b],
            static_instrs: 3,
            exec_weight: 50,
        };
        (program, spec)
    }

    #[test]
    fn path_annotation_produces_valid_equivalent_program() {
        let (mut p, spec) = path_program();
        let base = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        let infos = annotate(&mut p, vec![spec]);
        assert_eq!(infos.len(), 1);
        ccr_ir::verify_program(&p).unwrap();
        // With a null CRB (every reuse misses) the program behaves
        // identically, modulo the extra reuse/jump instructions.
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert_eq!(out.returned, base.returned);
        assert_eq!(out.reuse_misses, 50);
        // The annotated program contains exactly one reuse and one
        // region-end jump.
        let func = p.function(p.main());
        let reuses = func
            .iter_instrs()
            .filter(|(_, i)| matches!(i.op, Op::Reuse { .. }))
            .count();
        let ends = func
            .iter_instrs()
            .filter(|(_, i)| i.ext.contains(InstrExt::REGION_END))
            .count();
        let live_outs = func
            .iter_instrs()
            .filter(|(_, i)| i.ext.contains(InstrExt::LIVE_OUT))
            .count();
        assert_eq!(reuses, 1);
        assert_eq!(ends, 1);
        assert_eq!(live_outs, 1);
    }

    fn cyclic_program() -> (ccr_ir::Program, RegionSpec) {
        let mut pb = ProgramBuilder::new();
        let tbl = pb.object("tbl", 4);
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer = f.block();
        let inner = f.block();
        let after = f.block();
        let done = f.block();
        f.store(tbl, 0, 5);
        f.jump(outer);
        f.switch_to(outer);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(tbl, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 4, inner, after);
        f.switch_to(after);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, 30, outer, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let program = pb.finish();
        let spec = RegionSpec {
            func: id,
            shape: RegionShape::Cyclic {
                header: inner,
                preheader: outer,
                exit_target: after,
                body: vec![inner],
            },
            class: ComputationClass::MemoryDependent,
            mem_objects: vec![tbl],
            live_ins: vec![sum, j],
            live_outs: vec![sum, j],
            static_instrs: 4,
            exec_weight: 30,
        };
        (program, spec)
    }

    #[test]
    fn cyclic_annotation_inserts_reuse_and_invalidate() {
        let (mut p, spec) = cyclic_program();
        let base = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        let infos = annotate(&mut p, vec![spec]);
        ccr_ir::verify_program(&p).unwrap();
        // One invalidation site: the single store to tbl.
        assert_eq!(infos[0].invalidation_sites, 1);
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert_eq!(out.returned, base.returned);
        assert_eq!(out.reuse_misses, 30);
        let func = p.function(p.main());
        assert_eq!(
            func.iter_instrs()
                .filter(|(_, i)| matches!(i.op, Op::Invalidate { .. }))
                .count(),
            1
        );
        // The invalidate immediately follows the store.
        let entry = func.block(func.entry());
        let store_pos = entry.instrs.iter().position(|i| i.is_store()).unwrap();
        assert!(matches!(
            entry.instrs[store_pos + 1].op,
            Op::Invalidate { .. }
        ));
    }

    #[test]
    fn exit_trampolines_cover_side_exits() {
        // A two-block path whose internal branch can leave the region.
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![1, 2]);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let e = f.fresh();
        let head = f.block();
        let second = f.block();
        let bail = f.block();
        let join = f.block();
        let done = f.block();
        f.jump(head);
        f.switch_to(head);
        let sel = f.and(i, 1);
        let v = f.load(t, sel); // region start (pos 1)
        let a = f.mul(v, 5);
        f.br(CmpPred::Gt, a, 100, bail, second); // side exit to bail
        f.switch_to(second);
        f.bin_into(BinKind::Add, e, a, v); // region end (pos 0)
        f.jump(join);
        f.switch_to(bail);
        f.assign(e, 0);
        f.jump(join);
        f.switch_to(join);
        f.bin_into(BinKind::Add, acc, acc, e);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 40, head, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let base = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        let spec = RegionSpec {
            func: id,
            shape: RegionShape::Path {
                blocks: vec![head, second],
                start_pos: 1,
                end_pos: 0,
            },
            class: ComputationClass::Stateless,
            mem_objects: vec![],
            live_ins: vec![sel],
            live_outs: vec![e],
            static_instrs: 4,
            exec_weight: 40,
        };
        annotate(&mut p, vec![spec]);
        ccr_ir::verify_program(&p).unwrap();
        let func = p.function(p.main());
        let exits = func
            .iter_instrs()
            .filter(|(_, i)| i.ext.contains(InstrExt::REGION_EXIT))
            .count();
        assert_eq!(exits, 1, "one side exit to bail");
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert_eq!(out.returned, base.returned);
    }

    #[test]
    fn annotated_region_actually_reuses_with_a_recording_crb() {
        // End-to-end through the emulator with a simple recording CRB.
        use ccr_profile::{CrbModel, RecordedInstance, ReuseLookup};
        #[derive(Default)]
        struct MiniCrb {
            map: Vec<(RegionId, RecordedInstance)>,
        }
        impl CrbModel for MiniCrb {
            fn lookup(
                &mut self,
                region: RegionId,
                read: &mut dyn FnMut(ccr_ir::Reg) -> ccr_ir::Value,
            ) -> Option<ReuseLookup> {
                self.map
                    .iter()
                    .find(|(r, inst)| {
                        *r == region && inst.inputs.iter().all(|(reg, v)| read(*reg) == *v)
                    })
                    .map(|(_, inst)| ReuseLookup {
                        outputs: inst.outputs.clone(),
                        inputs: inst.inputs.iter().map(|(r, _)| *r).collect(),
                        skipped_instrs: inst.body_instrs,
                    })
            }
            fn record(&mut self, region: RegionId, instance: RecordedInstance) {
                self.map.push((region, instance));
            }
            fn invalidate(&mut self, region: RegionId) {
                self.map.retain(|(r, i)| *r != region || !i.accesses_memory);
            }
        }

        let (mut p, spec) = path_program();
        let base = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        annotate(&mut p, vec![spec]);
        let mut crb = MiniCrb::default();
        let out = Emulator::new(&p).run(&mut crb, &mut NullSink).unwrap();
        assert_eq!(out.returned, base.returned);
        // Two distinct inputs (i&1 = 0/1): two misses, 48 hits.
        assert_eq!(out.reuse_misses, 2);
        assert_eq!(out.reuse_hits, 48);
        assert!(out.skipped_instrs > 0);
        assert!(out.dyn_instrs < base.dyn_instrs);
    }
}

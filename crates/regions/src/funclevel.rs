//! Function-level reuse formation (the paper's future work, Section 6:
//! *"the aspect of directing the CCR architecture at the function
//! level could potentially reduce a significant amount of time spent
//! executing calling convention and spill codes"*).
//!
//! A call site becomes a reusable computation region when the callee
//! is a *deterministic computation* in the Section 4.1 sense,
//! transitively: it (and everything it calls) stores nothing and loads
//! only determinable locations. The recorded instance's input bank is
//! the argument registers; its output bank is the return registers; a
//! hit skips the entire dynamic call, including the callee's own
//! control flow.

use std::collections::BTreeSet;

use ccr_analysis::{AliasInfo, CallGraph, Determinable, SideEffects};
use ccr_ir::{FuncId, Op, Program};
use ccr_profile::ReuseProfile;

use crate::config::RegionConfig;
use crate::spec::{ComputationClass, RegionShape, RegionSpec};
use crate::stats::FormationStats;

/// Finds function-level region candidates program-wide. Returns the
/// specs plus the set of wrapped callees (their bodies are excluded
/// from interior region formation: a nested `reuse` executing during
/// memoization aborts the outer recording, so interior regions would
/// starve the function-level ones).
pub fn find_function_regions(
    program: &Program,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
) -> (Vec<RegionSpec>, BTreeSet<FuncId>) {
    find_function_regions_observed(program, profile, alias, config, &mut FormationStats::new())
}

/// Like [`find_function_regions`], recording every call site examined
/// and each gate's rejections in `stats`.
pub fn find_function_regions_observed(
    program: &Program,
    profile: &ReuseProfile,
    alias: &AliasInfo,
    config: &RegionConfig,
    stats: &mut FormationStats,
) -> (Vec<RegionSpec>, BTreeSet<FuncId>) {
    if !config.function_level {
        return (Vec::new(), BTreeSet::new());
    }
    let cg = CallGraph::compute(program);
    let se = SideEffects::compute(program, &cg);

    // Per-callee eligibility, computed once.
    let eligible: Vec<bool> = program
        .functions()
        .iter()
        .map(|g| callee_eligible(program, &cg, &se, alias, config, g.id()))
        .collect();

    let mut specs = Vec::new();
    let mut wrapped = BTreeSet::new();
    for func in program.functions() {
        for (bid, block) in func.iter_blocks() {
            for (pos, instr) in block.instrs.iter().enumerate() {
                let Op::Call { callee, args, rets } = &instr.op else {
                    continue;
                };
                stats.candidate();
                if !eligible[callee.index()] {
                    stats.reject("callee_ineligible");
                    continue;
                }
                // Profile gates at the call site: the argument vector
                // must repeat.
                if profile.exec(instr.id) < config.min_seed_exec {
                    stats.reject("cold");
                    continue;
                }
                if profile.invariance_ratio(instr.id, config.top_k) < config.r_threshold {
                    stats.reject("low_invariance");
                    continue;
                }
                let live_ins: Vec<_> = args.iter().filter_map(|a| a.as_reg()).collect();
                if live_ins.len() > config.max_live_in {
                    stats.reject("live_in_overflow");
                    continue;
                }
                if rets.len() > config.max_live_out {
                    stats.reject("live_out_overflow");
                    continue;
                }
                if rets.is_empty() {
                    stats.reject("no_live_outs");
                    continue; // nothing to reuse
                }
                let mem_objects = writable_reads(program, &se, *callee);
                if mem_objects.len() > config.max_mem_objects {
                    stats.reject("mem_objects_overflow");
                    continue;
                }
                if !mem_objects.is_empty() && !config.allow_memory_dependent {
                    stats.reject("memory_dependent");
                    continue;
                }
                stats.accept();
                let static_instrs: usize = cg
                    .reachable_from(*callee)
                    .iter()
                    .map(|g| program.function(*g).instr_count())
                    .sum();
                let class = if mem_objects.is_empty() {
                    ComputationClass::Stateless
                } else {
                    ComputationClass::MemoryDependent
                };
                wrapped.insert(*callee);
                specs.push(RegionSpec {
                    func: func.id(),
                    shape: RegionShape::Call {
                        block: bid,
                        pos,
                        callee: *callee,
                    },
                    class,
                    mem_objects,
                    live_ins,
                    live_outs: rets.clone(),
                    static_instrs,
                    exec_weight: profile.exec(instr.id),
                });
            }
        }
    }
    (specs, wrapped)
}

/// A callee is a deterministic computation usable at function level:
/// transitively store-free, every load determinable, and large enough
/// that the inliner left it out-of-line.
fn callee_eligible(
    program: &Program,
    cg: &CallGraph,
    se: &SideEffects,
    alias: &AliasInfo,
    config: &RegionConfig,
    callee: FuncId,
) -> bool {
    if se.may_store(callee) {
        return false;
    }
    let g = program.function(callee);
    if g.param_count() > config.max_live_in || g.ret_count() > config.max_live_out {
        return false;
    }
    if g.instr_count() < config.min_region_instrs {
        return false;
    }
    for reach in cg.reachable_from(callee) {
        for (_, instr) in program.function(reach).iter_instrs() {
            match &instr.op {
                Op::Load { .. } if alias.load_class(instr.id) == Determinable::No => {
                    return false;
                }
                Op::Reuse { .. } | Op::Invalidate { .. } => return false,
                _ => {}
            }
        }
    }
    true
}

/// The writable named objects the callee may read, transitively —
/// the invalidation set of the call region.
fn writable_reads(program: &Program, se: &SideEffects, callee: FuncId) -> Vec<ccr_ir::MemObjectId> {
    se.reads(callee)
        .iter()
        .copied()
        .filter(|o| !program.object(*o).is_read_only())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, ValueProfiler};

    /// A big pure function (too large to inline) called with pooled
    /// arguments, plus an impure sibling that must be rejected.
    fn program() -> ccr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("lut", (0..64).map(|v| v * 3).collect());
        let scratch = pb.object("scratch", 8);
        let pool = pb.table("pool", vec![5, 9, 5, 9, 12, 5, 9, 12]);

        let pure_big = pb.declare("pure_big", 2, 1);
        {
            let mut f = pb.function_body(pure_big);
            let (a, b) = (f.param(0), f.param(1));
            let mut x = f.add(a, b);
            for k in 0..30 {
                let m = f.and(x, 63);
                let lv = f.load(t, m);
                let y = f.xor(x, lv);
                x = f.add(y, k);
            }
            f.ret(&[Operand::Reg(x)]);
            pb.finish_function(f);
        }
        let impure = pb.declare("impure", 1, 1);
        {
            let mut f = pb.function_body(impure);
            let a = f.param(0);
            f.store(scratch, 0, a);
            let mut x = f.mul(a, 3);
            for k in 0..28 {
                x = f.add(x, k);
            }
            f.ret(&[Operand::Reg(x)]);
            pb.finish_function(f);
        }

        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let idx = f.and(i, 7);
        let v = f.load(pool, idx);
        let r1 = f.call(pure_big, &[Operand::Reg(v), Operand::Imm(11)], 1);
        let r2 = f.call(impure, &[Operand::Reg(v)], 1);
        let w = f.add(r1[0], r2[0]);
        f.bin_into(BinKind::Add, acc, acc, w);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 300, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let main = pb.finish_function(f);
        pb.set_main(main);
        pb.finish()
    }

    fn find(p: &ccr_ir::Program, config: &RegionConfig) -> (Vec<RegionSpec>, BTreeSet<FuncId>) {
        let mut prof = ValueProfiler::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let alias = AliasInfo::compute(p);
        find_function_regions(p, &profile, &alias, config)
    }

    fn enabled() -> RegionConfig {
        RegionConfig {
            function_level: true,
            ..RegionConfig::paper()
        }
    }

    #[test]
    fn wraps_pure_function_call_sites_only() {
        let p = program();
        let (specs, wrapped) = find(&p, &enabled());
        assert_eq!(specs.len(), 1, "{specs:?}");
        let s = &specs[0];
        assert!(s.is_function_level());
        assert_eq!(s.live_ins.len(), 1, "one register argument");
        assert_eq!(s.live_outs.len(), 1);
        assert!(s.static_instrs > 100, "whole callee counted");
        let pure_id = p.function_by_name("pure_big").unwrap().id();
        assert!(wrapped.contains(&pure_id));
        assert_eq!(wrapped.len(), 1, "impure callee must not be wrapped");
    }

    #[test]
    fn disabled_by_default() {
        let p = program();
        let (specs, wrapped) = find(&p, &RegionConfig::paper());
        assert!(specs.is_empty());
        assert!(wrapped.is_empty());
    }

    #[test]
    fn wrapped_call_reuses_end_to_end() {
        use crate::transform::annotate;
        let p = program();
        let (specs, _) = find(&p, &enabled());
        let base = Emulator::new(&p)
            .run(&mut NullCrb, &mut ccr_profile::NullSink)
            .unwrap();
        let mut annotated = p.clone();
        annotate(&mut annotated, specs);
        ccr_ir::verify_program(&annotated).unwrap();
        // A simple recording CRB: single entry per region, 8 LRU
        // instances (reuse the emulator-side functional model).
        struct Crb(std::collections::HashMap<ccr_ir::RegionId, Vec<ccr_profile::RecordedInstance>>);
        impl ccr_profile::CrbModel for Crb {
            fn lookup(
                &mut self,
                region: ccr_ir::RegionId,
                read: &mut dyn FnMut(ccr_ir::Reg) -> ccr_ir::Value,
            ) -> Option<ccr_profile::ReuseLookup> {
                self.0.get(&region)?.iter().find_map(|inst| {
                    inst.inputs.iter().all(|(r, v)| read(*r) == *v).then(|| {
                        ccr_profile::ReuseLookup {
                            outputs: inst.outputs.clone(),
                            inputs: inst.inputs.iter().map(|(r, _)| *r).collect(),
                            skipped_instrs: inst.body_instrs,
                        }
                    })
                })
            }
            fn record(
                &mut self,
                region: ccr_ir::RegionId,
                instance: ccr_profile::RecordedInstance,
            ) {
                self.0.entry(region).or_default().push(instance);
            }
            fn invalidate(&mut self, region: ccr_ir::RegionId) {
                if let Some(v) = self.0.get_mut(&region) {
                    v.retain(|i| !i.accesses_memory);
                }
            }
        }
        let mut crb = Crb(std::collections::HashMap::new());
        let out = Emulator::new(&annotated)
            .run(&mut crb, &mut ccr_profile::NullSink)
            .unwrap();
        assert_eq!(
            out.returned, base.returned,
            "function reuse changed results"
        );
        // Three distinct pool values: three misses, the rest hits.
        assert_eq!(out.reuse_misses, 3);
        assert_eq!(out.reuse_hits, 297);
        // Each hit skips the whole ~120-instruction callee execution.
        assert!(out.skipped_instrs > 297 * 100, "{}", out.skipped_instrs);
    }

    #[test]
    fn stateless_only_config_still_allows_pure_calls() {
        let p = program();
        let (specs, _) = find(
            &p,
            &RegionConfig {
                function_level: true,
                allow_memory_dependent: false,
                ..RegionConfig::paper()
            },
        );
        // pure_big reads only a read-only table: stateless class.
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].class, ComputationClass::Stateless);
        assert!(specs[0].mem_objects.is_empty());
    }
}

//! Computation-group classification (Figure 9 of the paper).
//!
//! Regions are grouped by input type: `SL_{n}` for stateless
//! computations with up to *n* register inputs, `MD_{n}_{m}` for
//! memory-dependent computations with up to *n* register inputs and
//! *m* distinguishable memory structures. The paper reports seven
//! groups covering ~90 % of formed computations; everything else falls
//! into `Other`.

use std::collections::HashMap;

use ccr_ir::RegionId;

use crate::spec::{ComputationClass, RegionInfo};

/// The paper's seven computation groups plus a catch-all.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ComputationGroup {
    /// Stateless, ≤ 4 register inputs.
    Sl4,
    /// Stateless, 5–6 register inputs.
    Sl6,
    /// Stateless, 7–8 register inputs.
    Sl8,
    /// Memory-dependent, ≤ 3 inputs, 1 structure.
    Md31,
    /// Memory-dependent, 4–6 inputs, 1 structure.
    Md61,
    /// Memory-dependent, ≤ 2 inputs, 2 structures.
    Md22,
    /// Memory-dependent, ≤ 2 inputs, 3 structures.
    Md23,
    /// Anything outside the seven groups.
    Other,
}

impl ComputationGroup {
    /// All groups in the paper's presentation order.
    pub const ALL: [ComputationGroup; 8] = [
        ComputationGroup::Sl4,
        ComputationGroup::Sl6,
        ComputationGroup::Sl8,
        ComputationGroup::Md31,
        ComputationGroup::Md61,
        ComputationGroup::Md22,
        ComputationGroup::Md23,
        ComputationGroup::Other,
    ];

    /// The paper's group label (e.g. `SL_4`, `MD_3_1`).
    pub fn label(self) -> &'static str {
        match self {
            ComputationGroup::Sl4 => "SL_4",
            ComputationGroup::Sl6 => "SL_6",
            ComputationGroup::Sl8 => "SL_8",
            ComputationGroup::Md31 => "MD_3_1",
            ComputationGroup::Md61 => "MD_6_1",
            ComputationGroup::Md22 => "MD_2_2",
            ComputationGroup::Md23 => "MD_2_3",
            ComputationGroup::Other => "Other",
        }
    }

    /// True for the stateless groups.
    pub fn is_stateless(self) -> bool {
        matches!(
            self,
            ComputationGroup::Sl4 | ComputationGroup::Sl6 | ComputationGroup::Sl8
        )
    }
}

impl std::fmt::Display for ComputationGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies a region by its class, register-input count, and
/// distinguishable-memory count.
pub fn classify_group(class: ComputationClass, inputs: usize, mem: usize) -> ComputationGroup {
    match (class, mem) {
        (ComputationClass::Stateless, 0) => match inputs {
            0..=4 => ComputationGroup::Sl4,
            5..=6 => ComputationGroup::Sl6,
            7..=8 => ComputationGroup::Sl8,
            _ => ComputationGroup::Other,
        },
        (ComputationClass::MemoryDependent, 1) => match inputs {
            0..=3 => ComputationGroup::Md31,
            4..=6 => ComputationGroup::Md61,
            _ => ComputationGroup::Other,
        },
        (ComputationClass::MemoryDependent, 2) if inputs <= 2 => ComputationGroup::Md22,
        (ComputationClass::MemoryDependent, 3) if inputs <= 2 => ComputationGroup::Md23,
        _ => ComputationGroup::Other,
    }
}

/// A distribution of weight over computation groups.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupDistribution {
    weights: HashMap<ComputationGroup, f64>,
    total: f64,
}

impl GroupDistribution {
    /// Static distribution: each region counts once.
    pub fn static_of(regions: &[RegionInfo]) -> GroupDistribution {
        let mut d = GroupDistribution::default();
        for info in regions {
            d.add(group_of(info), 1.0);
        }
        d
    }

    /// Dynamic distribution: each region weighted by the dynamic
    /// instructions its reuse hits eliminated (as reported by the
    /// simulator).
    pub fn dynamic_of(
        regions: &[RegionInfo],
        reuse_weight: &HashMap<RegionId, u64>,
    ) -> GroupDistribution {
        let mut d = GroupDistribution::default();
        for info in regions {
            let w = reuse_weight.get(&info.id).copied().unwrap_or(0);
            if w > 0 {
                d.add(group_of(info), w as f64);
            }
        }
        d
    }

    /// Adds `weight` to `group`.
    pub fn add(&mut self, group: ComputationGroup, weight: f64) {
        *self.weights.entry(group).or_insert(0.0) += weight;
        self.total += weight;
    }

    /// Fraction of total weight in `group` (0 if the distribution is
    /// empty).
    pub fn fraction(&self, group: ComputationGroup) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.weights.get(&group).copied().unwrap_or(0.0) / self.total
        }
    }

    /// Fraction of weight in the stateless groups.
    pub fn stateless_fraction(&self) -> f64 {
        ComputationGroup::ALL
            .iter()
            .filter(|g| g.is_stateless())
            .map(|g| self.fraction(*g))
            .sum()
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// The group of an annotated region.
pub fn group_of(info: &RegionInfo) -> ComputationGroup {
    classify_group(
        info.spec.class,
        info.spec.input_count(),
        info.spec.mem_count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RegionShape, RegionSpec};
    use ccr_ir::{BlockId, FuncId, Reg};

    #[test]
    fn classification_matches_paper_groups() {
        use ComputationClass::*;
        use ComputationGroup::*;
        assert_eq!(classify_group(Stateless, 1, 0), Sl4);
        assert_eq!(classify_group(Stateless, 4, 0), Sl4);
        assert_eq!(classify_group(Stateless, 5, 0), Sl6);
        assert_eq!(classify_group(Stateless, 8, 0), Sl8);
        assert_eq!(classify_group(Stateless, 9, 0), Other);
        assert_eq!(classify_group(MemoryDependent, 3, 1), Md31);
        assert_eq!(classify_group(MemoryDependent, 6, 1), Md61);
        assert_eq!(classify_group(MemoryDependent, 2, 2), Md22);
        assert_eq!(classify_group(MemoryDependent, 2, 3), Md23);
        assert_eq!(classify_group(MemoryDependent, 3, 2), Other);
        assert_eq!(classify_group(MemoryDependent, 1, 4), Other);
    }

    fn info(inputs: usize, mem: usize, id: u32) -> RegionInfo {
        let class = if mem == 0 {
            ComputationClass::Stateless
        } else {
            ComputationClass::MemoryDependent
        };
        RegionInfo {
            id: ccr_ir::RegionId(id),
            spec: RegionSpec {
                func: FuncId(0),
                shape: RegionShape::Path {
                    blocks: vec![BlockId(0)],
                    start_pos: 0,
                    end_pos: 1,
                },
                class,
                mem_objects: (0..mem as u32).map(ccr_ir::MemObjectId).collect(),
                live_ins: (0..inputs as u32).map(Reg).collect(),
                live_outs: vec![Reg(99)],
                static_instrs: 5,
                exec_weight: 100,
            },
            invalidation_sites: mem,
        }
    }

    #[test]
    fn static_distribution_counts_regions() {
        let regions = vec![info(2, 0, 0), info(5, 0, 1), info(3, 1, 2)];
        let d = GroupDistribution::static_of(&regions);
        assert!((d.fraction(ComputationGroup::Sl4) - 1.0 / 3.0).abs() < 1e-9);
        assert!((d.fraction(ComputationGroup::Sl6) - 1.0 / 3.0).abs() < 1e-9);
        assert!((d.fraction(ComputationGroup::Md31) - 1.0 / 3.0).abs() < 1e-9);
        assert!((d.stateless_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(d.total(), 3.0);
    }

    #[test]
    fn dynamic_distribution_weights_by_reuse() {
        let regions = vec![info(2, 0, 0), info(3, 1, 1)];
        let mut w = HashMap::new();
        w.insert(ccr_ir::RegionId(0), 300u64);
        w.insert(ccr_ir::RegionId(1), 100u64);
        let d = GroupDistribution::dynamic_of(&regions, &w);
        assert!((d.fraction(ComputationGroup::Sl4) - 0.75).abs() < 1e-9);
        assert!((d.fraction(ComputationGroup::Md31) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = GroupDistribution::default();
        assert_eq!(d.fraction(ComputationGroup::Sl4), 0.0);
        assert_eq!(d.stateless_fraction(), 0.0);
    }

    #[test]
    fn labels_render() {
        assert_eq!(ComputationGroup::Md22.to_string(), "MD_2_2");
        assert_eq!(ComputationGroup::Sl8.label(), "SL_8");
    }
}

//! The formation driver: profile-guided selection of cyclic and
//! acyclic regions across the whole program, followed by annotation.

use std::collections::HashSet;

use ccr_analysis::AliasInfo;
use ccr_ir::Program;
use ccr_profile::ReuseProfile;

use crate::acyclic::find_acyclic_regions_observed;
use crate::config::RegionConfig;
use crate::cyclic::find_cyclic_regions_observed;
use crate::funclevel::find_function_regions_observed;
use crate::spec::{RegionInfo, RegionShape, RegionSpec};
use crate::stats::FormationStats;
use crate::transform::annotate;

/// A program with its regions annotated.
#[derive(Clone, Debug)]
pub struct AnnotatedProgram {
    /// The transformed program (reuse/invalidate instructions and
    /// extensions in place).
    pub program: Program,
    /// Region metadata, indexed by position (region ids are dense).
    pub regions: Vec<RegionInfo>,
}

/// Selects reusable computation regions for the whole program.
///
/// Cyclic regions are formed first (they claim whole loop bodies);
/// acyclic formation then works around them. Selection stops at
/// [`RegionConfig::max_regions`], keeping the hottest regions.
///
/// ```
/// use ccr_profile::{Emulator, NullCrb, ValueProfiler};
/// use ccr_regions::{form_regions, RegionConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A table-driven computation over five recurring words.
/// let program = ccr_workloads::build("008.espresso", ccr_workloads::InputSet::Train, 1)
///     .expect("known benchmark");
/// let mut profiler = ValueProfiler::for_program(&program);
/// Emulator::new(&program).run(&mut NullCrb, &mut profiler)?;
/// let profile = profiler.finish();
///
/// let specs = form_regions(&program, &profile, &RegionConfig::paper());
/// assert!(!specs.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn form_regions(
    program: &Program,
    profile: &ReuseProfile,
    config: &RegionConfig,
) -> Vec<RegionSpec> {
    form_regions_observed(program, profile, config, &mut FormationStats::new())
}

/// Like [`form_regions`], accumulating candidate/accepted/rejected
/// counts (with per-gate rejection reasons) from every formation pass
/// into `stats`. Regions dropped by the [`RegionConfig::max_regions`]
/// budget are demoted to rejections under the `"budget"` reason, so
/// the accounting invariant `candidates == accepted + rejected`
/// holds for the final region list.
pub fn form_regions_observed(
    program: &Program,
    profile: &ReuseProfile,
    config: &RegionConfig,
    stats: &mut FormationStats,
) -> Vec<RegionSpec> {
    let alias = AliasInfo::compute(program);
    let mut specs = Vec::new();
    // Function-level regions first (future-work extension; off by
    // default). Wrapped callees are excluded from interior formation:
    // a nested reuse executing during memoization aborts the outer
    // recording.
    let (call_specs, wrapped) =
        find_function_regions_observed(program, profile, &alias, config, stats);
    specs.extend(call_specs);
    for func in program.functions() {
        if wrapped.contains(&func.id()) {
            continue;
        }
        let mut occupied: HashSet<ccr_ir::BlockId> = HashSet::new();
        let cyclic = find_cyclic_regions_observed(program, func, profile, &alias, config, stats);
        for spec in &cyclic {
            if let RegionShape::Cyclic {
                body, preheader, ..
            } = &spec.shape
            {
                occupied.extend(body.iter().copied());
                // The preheader edge hosts the reuse instruction;
                // keep acyclic formation out of it too.
                occupied.insert(*preheader);
            }
        }
        specs.extend(cyclic);
        specs.extend(find_acyclic_regions_observed(
            program,
            func,
            profile,
            &alias,
            config,
            &mut occupied,
            stats,
        ));
    }
    // Keep the hottest regions within the region-id budget.
    specs.sort_by_key(|s| std::cmp::Reverse(s.exec_weight * s.static_instrs as u64));
    if specs.len() > config.max_regions {
        stats.demote("budget", (specs.len() - config.max_regions) as u64);
        specs.truncate(config.max_regions);
    }
    stats.check();
    specs
}

/// Forms regions and annotates a clone of the program.
pub fn annotate_program(
    program: &Program,
    profile: &ReuseProfile,
    config: &RegionConfig,
) -> AnnotatedProgram {
    let specs = form_regions(program, profile, config);
    let mut annotated = program.clone();
    let regions = annotate(&mut annotated, specs);
    AnnotatedProgram {
        program: annotated,
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Op, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb, NullSink, ValueProfiler};

    /// A program with both region kinds: a pure scan loop (cyclic)
    /// and a table-driven straight-line computation (acyclic).
    fn mixed_program() -> ccr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let weights = pb.table("weights", vec![2, 4, 6, 8]);
        let lut = pb.table("lut", (0..64).map(|v| v * v).collect());
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer = f.block();
        let scan = f.block();
        let after = f.block();
        let done = f.block();
        f.jump(outer);
        f.switch_to(outer);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(scan);
        // Cyclic candidate: pure scan over a read-only table.
        f.switch_to(scan);
        let w = f.load(weights, j);
        f.bin_into(BinKind::Add, sum, sum, w);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 4, scan, after);
        // Acyclic candidate: repeated-value table computation.
        f.switch_to(after);
        let sel = f.and(n, 3);
        let x = f.load(lut, sel);
        let y = f.mul(x, 3);
        let z = f.add(y, 7);
        let q = f.xor(z, x);
        f.bin_into(BinKind::Add, total, total, q);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, 120, outer, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    fn profile_of(p: &ccr_ir::Program) -> ReuseProfile {
        let mut prof = ValueProfiler::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut prof).unwrap();
        prof.finish()
    }

    #[test]
    fn forms_both_region_kinds() {
        let p = mixed_program();
        let profile = profile_of(&p);
        let specs = form_regions(&p, &profile, &RegionConfig::paper());
        let cyclic = specs.iter().filter(|s| s.is_cyclic()).count();
        let acyclic = specs.len() - cyclic;
        assert_eq!(cyclic, 1, "{specs:?}");
        assert!(acyclic >= 1, "{specs:?}");
    }

    #[test]
    fn annotation_preserves_architectural_results() {
        let p = mixed_program();
        let base = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        let profile = profile_of(&p);
        let annotated = annotate_program(&p, &profile, &RegionConfig::paper());
        ccr_ir::verify_program(&annotated.program).unwrap();
        let out = Emulator::new(&annotated.program)
            .run(&mut NullCrb, &mut NullSink)
            .unwrap();
        assert_eq!(out.returned, base.returned);
        assert!(out.reuse_misses > 0);
    }

    #[test]
    fn region_ids_are_dense_and_match_infos() {
        let p = mixed_program();
        let profile = profile_of(&p);
        let annotated = annotate_program(&p, &profile, &RegionConfig::paper());
        for (i, info) in annotated.regions.iter().enumerate() {
            assert_eq!(info.id.index(), i);
        }
        // Every reuse instruction references a known region.
        for (_, instr) in annotated.program.iter_instrs() {
            if let Op::Reuse { region, .. } = instr.op {
                assert!(region.index() < annotated.regions.len());
            }
        }
    }

    #[test]
    fn block_level_config_yields_single_block_regions() {
        let p = mixed_program();
        let profile = profile_of(&p);
        let specs = form_regions(&p, &profile, &RegionConfig::block_level());
        assert!(!specs.is_empty());
        for s in &specs {
            match &s.shape {
                RegionShape::Path { blocks, .. } => assert_eq!(blocks.len(), 1),
                RegionShape::Cyclic { .. } => panic!("cyclic region under block_level"),
                RegionShape::Call { .. } => panic!("function-level region by default"),
            }
        }
    }

    #[test]
    fn formation_stats_balance_and_name_reasons() {
        let p = mixed_program();
        let profile = profile_of(&p);
        let mut stats = FormationStats::new();
        let specs = form_regions_observed(&p, &profile, &RegionConfig::paper(), &mut stats);
        stats.check();
        assert_eq!(stats.accepted, specs.len() as u64);
        assert!(stats.candidates >= stats.accepted);
        // Observation changes nothing.
        assert_eq!(specs, form_regions(&p, &profile, &RegionConfig::paper()));
        // The budget gate demotes dropped regions under "budget".
        let mut tight = FormationStats::new();
        let one = form_regions_observed(
            &p,
            &profile,
            &RegionConfig {
                max_regions: 1,
                ..RegionConfig::paper()
            },
            &mut tight,
        );
        tight.check();
        assert_eq!(one.len(), 1);
        assert_eq!(tight.accepted, 1);
        assert_eq!(
            tight.rejected_for("budget"),
            stats.accepted - 1,
            "{tight:?}"
        );
    }

    #[test]
    fn max_regions_keeps_hottest() {
        let p = mixed_program();
        let profile = profile_of(&p);
        let all = form_regions(&p, &profile, &RegionConfig::paper());
        let one = form_regions(
            &p,
            &profile,
            &RegionConfig {
                max_regions: 1,
                ..RegionConfig::paper()
            },
        );
        assert_eq!(one.len(), 1);
        let hottest = all
            .iter()
            .map(|s| s.exec_weight * s.static_instrs as u64)
            .max()
            .unwrap();
        assert_eq!(one[0].exec_weight * one[0].static_instrs as u64, hottest);
    }
}

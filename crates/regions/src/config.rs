//! Region-formation heuristics and their published defaults.

/// Thresholds and limits for RCR formation.
///
/// Defaults reproduce Section 4.4 of the paper: *"Empirical evaluation
/// found that setting R and Rm to .65 and the number of invariant
/// values to five produces good instances of reusable computation"*,
/// *"the total number of live-in and live-out registers within a
/// computation region are limited to eight"*, *"the accordance
/// heuristic limits the number of distinguishable memory elements to
/// four"*, and the cyclic gates *"greater than 40% opportunity to
/// reuse results"* / *"greater than 60% of the loop invocations have
/// multiple loop iterations"*.
#[derive(Clone, Copy, Debug)]
pub struct RegionConfig {
    /// Instruction-reusability threshold `R`.
    pub r_threshold: f64,
    /// Memory-reusability threshold `Rm`.
    pub rm_threshold: f64,
    /// Number of invariant values `k` summed by the invariance check.
    pub top_k: usize,
    /// Maximum live-in registers per region (input-bank capacity).
    pub max_live_in: usize,
    /// Maximum live-out registers per region (output-bank capacity).
    pub max_live_out: usize,
    /// Maximum distinguishable memory structures per region.
    pub max_mem_objects: usize,
    /// Minimum static instructions for an acyclic region to be worth a
    /// reuse instruction.
    pub min_region_instrs: usize,
    /// Minimum execution count for an acyclic seed.
    pub min_seed_exec: u64,
    /// Cyclic gate: minimum reuse-opportunity ratio.
    pub cyclic_reuse_min: f64,
    /// Cyclic gate: minimum multiple-iteration ratio.
    pub cyclic_multi_iter_min: f64,
    /// A control-flow edge is "likely" if it carries at least this
    /// fraction of the source's weight (the paper's 60 %).
    pub likely_edge_ratio: f64,
    /// Permit memory-dependent regions (ablation: stateless only).
    pub allow_memory_dependent: bool,
    /// Restrict acyclic regions to a single basic block and disable
    /// cyclic regions (ablation: the block-level granularity of prior
    /// work).
    pub block_level_only: bool,
    /// Maximum number of regions formed per program.
    pub max_regions: usize,
    /// Minimum hit ratio a region must achieve in the compile-time
    /// trial run (the "reiteration" step of Section 4.4) to survive
    /// selection. Regions below this would pay more in reuse-failure
    /// flushes than they save. Set to 0.0 to disable the trial.
    pub min_predicted_hit: f64,
    /// Computation instances assumed per entry during the trial run.
    pub trial_instances: usize,
    /// Enable function-level reuse (the paper's future-work item:
    /// whole deterministic calls become regions). Off by default to
    /// match the paper's evaluated configuration.
    pub function_level: bool,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            r_threshold: 0.65,
            rm_threshold: 0.65,
            top_k: 5,
            max_live_in: 8,
            max_live_out: 8,
            max_mem_objects: 4,
            min_region_instrs: 4,
            min_seed_exec: 32,
            cyclic_reuse_min: 0.40,
            cyclic_multi_iter_min: 0.60,
            likely_edge_ratio: 0.60,
            allow_memory_dependent: true,
            block_level_only: false,
            max_regions: 4096,
            min_predicted_hit: 0.35,
            trial_instances: 8,
            function_level: false,
        }
    }
}

impl RegionConfig {
    /// The paper's configuration (alias for [`Default`]).
    pub fn paper() -> RegionConfig {
        RegionConfig::default()
    }

    /// Canonical `(field, value)` enumeration of every formation knob,
    /// in declaration order.
    ///
    /// The experiment planner keys compile units by hashing these
    /// pairs and describes sweep axes by diffing them between
    /// scenarios, so the list must stay exhaustive: a field missing
    /// here would silently alias two distinct configurations.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("r_threshold", format!("{:?}", self.r_threshold)),
            ("rm_threshold", format!("{:?}", self.rm_threshold)),
            ("top_k", self.top_k.to_string()),
            ("max_live_in", self.max_live_in.to_string()),
            ("max_live_out", self.max_live_out.to_string()),
            ("max_mem_objects", self.max_mem_objects.to_string()),
            ("min_region_instrs", self.min_region_instrs.to_string()),
            ("min_seed_exec", self.min_seed_exec.to_string()),
            ("cyclic_reuse_min", format!("{:?}", self.cyclic_reuse_min)),
            (
                "cyclic_multi_iter_min",
                format!("{:?}", self.cyclic_multi_iter_min),
            ),
            ("likely_edge_ratio", format!("{:?}", self.likely_edge_ratio)),
            (
                "allow_memory_dependent",
                self.allow_memory_dependent.to_string(),
            ),
            ("block_level_only", self.block_level_only.to_string()),
            ("max_regions", self.max_regions.to_string()),
            ("min_predicted_hit", format!("{:?}", self.min_predicted_hit)),
            ("trial_instances", self.trial_instances.to_string()),
            ("function_level", self.function_level.to_string()),
        ]
    }

    /// Ablation: stateless regions only.
    pub fn stateless_only() -> RegionConfig {
        RegionConfig {
            allow_memory_dependent: false,
            ..RegionConfig::default()
        }
    }

    /// Ablation: block-level granularity (prior-work comparison).
    pub fn block_level() -> RegionConfig {
        RegionConfig {
            block_level_only: true,
            ..RegionConfig::default()
        }
    }

    /// Extension: the paper's configuration plus function-level reuse.
    pub fn with_function_level() -> RegionConfig {
        RegionConfig {
            function_level: true,
            ..RegionConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_4() {
        let c = RegionConfig::paper();
        assert_eq!(c.r_threshold, 0.65);
        assert_eq!(c.rm_threshold, 0.65);
        assert_eq!(c.top_k, 5);
        assert_eq!(c.max_live_in, 8);
        assert_eq!(c.max_live_out, 8);
        assert_eq!(c.max_mem_objects, 4);
        assert_eq!(c.cyclic_reuse_min, 0.40);
        assert_eq!(c.cyclic_multi_iter_min, 0.60);
        assert_eq!(c.likely_edge_ratio, 0.60);
    }

    #[test]
    fn fields_enumeration_is_exhaustive_and_distinguishes_configs() {
        let paper = RegionConfig::paper();
        let fields = paper.fields();
        // One pair per struct field, unique names. Update this count
        // (and `fields()`) together when RegionConfig grows.
        assert_eq!(fields.len(), 17);
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "field names must be unique");
        // A changed knob shows up as exactly one changed pair.
        let tweaked = RegionConfig {
            trial_instances: 16,
            ..paper
        };
        let diff: Vec<&str> = fields
            .iter()
            .zip(tweaked.fields())
            .filter(|(a, b)| a.1 != b.1)
            .map(|(a, _)| a.0)
            .collect();
        assert_eq!(diff, ["trial_instances"]);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!RegionConfig::stateless_only().allow_memory_dependent);
        assert!(RegionConfig::block_level().block_level_only);
        assert!(RegionConfig::paper().allow_memory_dependent);
    }
}

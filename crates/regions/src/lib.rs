#![warn(missing_docs)]

//! # ccr-regions — Reusable Computation Region formation
//!
//! The compiler half of the CCR framework (Section 4 of the paper):
//!
//! * [`config`] — the published heuristic thresholds (R = Rm = 0.65,
//!   k = 5 invariant values, 8 live-in/live-out registers, 4
//!   distinguishable memory structures, 40 % cyclic reuse opportunity,
//!   60 % multi-iteration invocations),
//! * [`spec`] — region descriptors: shape (cyclic loop / acyclic
//!   path), deterministic-computation class (stateless vs
//!   memory-dependent), and the paper's computation groups (`SL_n`,
//!   `MD_n_m`),
//! * [`cyclic`] — cyclic region formation over pure innermost loops,
//! * [`acyclic`] — seed-selection and successor/predecessor growth
//!   over profile data,
//! * [`transform`] — the code transformation: block splitting, `reuse`
//!   insertion, live-out / region-end / region-exit marking, and
//!   `invalidate` placement after every store that may write a
//!   memory-dependent region's input structures,
//! * [`form`] — the driver tying formation and annotation together,
//! * [`groups`] — static/dynamic computation-group distributions
//!   (Figure 9).

pub mod acyclic;
pub mod config;
pub mod cyclic;
pub mod form;
pub mod funclevel;
pub mod groups;
pub mod spec;
pub mod stats;
pub mod transform;

pub use config::RegionConfig;
pub use form::{annotate_program, form_regions, form_regions_observed, AnnotatedProgram};
pub use groups::{classify_group, ComputationGroup, GroupDistribution};
pub use spec::{ComputationClass, RegionInfo, RegionShape, RegionSpec};
pub use stats::FormationStats;

//! Thread-safe named metrics: counters, gauges, and log₂ histograms.
//!
//! Counters and gauges are plain atomics shared through cheap
//! [`Counter`]/[`Gauge`] handles, so hot paths (a job-pool worker
//! finishing a task, a simulation retiring) update them without
//! taking a lock; the registry mutex is only held to register a name
//! or take a [`MetricsSnapshot`]. The [`crate::monitor::Monitor`]
//! thread samples a registry on a fixed period off exactly these
//! snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples. Bucket 0 holds exact
/// zeros; bucket `i > 0` holds values in `[2^(i-1), 2^i)`. This gives
/// constant memory and ~2× relative resolution over the full `u64`
/// range — plenty for latencies, occupancies, and interval lengths.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (see [`bucket_low`] for its range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`) by linear
    /// interpolation inside the log₂ bucket that holds the target
    /// rank. Resolution is therefore ~2× relative (one bucket), which
    /// is what the buckets promise; the estimate is clamped to the
    /// exact observed `[min, max]` range.
    ///
    /// On an empty histogram this returns the documented sentinel
    /// `0.0`, indistinguishable from an all-zero sample set — use
    /// [`Histogram::try_percentile`] (or check [`Histogram::count`])
    /// when "no samples" must be told apart from "samples of zero".
    pub fn percentile(&self, p: f64) -> f64 {
        self.try_percentile(p).unwrap_or(0.0)
    }

    /// Like [`Histogram::percentile`], but `None` on an empty
    /// histogram instead of the `0.0` sentinel.
    pub fn try_percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // 1-based target rank; p=0 → first sample, p=100 → last.
        let target = (p / 100.0 * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let low = bucket_low(i);
                // Bucket i > 0 covers [2^(i-1), 2^i): width == low.
                let width = if i == 0 { 0 } else { low };
                let into = (target - cum as f64) / c as f64;
                let est = low as f64 + into * width as f64;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            cum = next;
        }
        Some(self.max as f64)
    }

    /// Median estimate (see [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// `(bucket_low, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
    }
}

/// A lock-free handle to one named counter in a [`MetricsRegistry`].
/// Clones share the same underlying atomic; updates are visible to
/// concurrent [`MetricsRegistry::snapshot`]s immediately.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free handle to one named gauge (an `f64` stored as bits in
/// an atomic). Last write wins.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named metrics. Cheap to share by
/// reference. Counters and gauges are atomics: the internal mutex is
/// held only to register a name, hand out a [`Counter`]/[`Gauge`]
/// handle, or snapshot — updates through a handle never lock, so
/// job-pool workers can bump progress counters without contending.
/// Histograms stay under the mutex (recorded at phase granularity,
/// not per simulated instruction).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A lock-free handle to counter `name` (created at zero).
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// A lock-free handle to gauge `name` (created at 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        Gauge(Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        ))
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Records `value` into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]'s contents.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value lands in the bucket whose low bound it clears.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_low(i);
            assert_eq!(bucket_index(lo), i, "low bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(7), 1); // 100 in [64,128)
        assert_eq!(h.bucket(10), 1); // 1000 in [512,1024)
        let nz: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(nz, vec![(0, 1), (1, 1), (2, 2), (64, 1), (512, 1)]);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn empty_percentile_is_none_not_a_sentinel() {
        let h = Histogram::default();
        // try_percentile distinguishes "no samples" from "all zeros"
        // at every p, including the clamped out-of-range ones.
        for p in [-5.0, 0.0, 50.0, 99.0, 100.0, 250.0] {
            assert_eq!(h.try_percentile(p), None, "p{p}");
        }
        let mut zeros = Histogram::default();
        zeros.record(0);
        assert_eq!(zeros.try_percentile(50.0), Some(0.0));
        // The f64 convenience wrapper maps None to the 0.0 sentinel.
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn percentiles_of_a_single_value_are_that_value() {
        let mut h = Histogram::default();
        h.record(42);
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 42.0, "p{p}");
        }
    }

    #[test]
    fn percentiles_interpolate_within_log2_resolution() {
        // 1..=1000 uniformly: the exact p-th percentile is ~10*p, and
        // the log₂-bucket estimate must land within one bucket (2×).
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 500.0), (90.0, 900.0), (99.0, 990.0)] {
            let est = h.percentile(p);
            assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "p{p}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.p50(), h.percentile(50.0));
        assert_eq!(h.p90(), h.percentile(90.0));
        assert_eq!(h.p99(), h.percentile(99.0));
    }

    #[test]
    fn percentiles_are_monotone_and_clamped_to_observed_range() {
        let mut h = Histogram::default();
        for v in [3, 3, 3, 100, 100, 7000] {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for p in 0..=100 {
            let est = h.percentile(p as f64);
            assert!(est >= prev, "p{p}: {est} < {prev}");
            assert!((3.0..=7000.0).contains(&est), "p{p}: {est}");
            prev = est;
        }
        // Out-of-range p clamps rather than panicking.
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
    }

    #[test]
    fn percentile_of_all_zeros_is_zero() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.percentile(100.0), 0.0);
    }

    #[test]
    fn registry_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("regions.accepted", 3);
        reg.counter_add("regions.accepted", 2);
        reg.gauge_set("sim.ipc", 1.25);
        reg.histogram_record("crb.occupancy", 12);
        reg.histogram_record("crb.occupancy", 900);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("regions.accepted"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("sim.ipc"), Some(1.25));
        assert_eq!(snap.gauge("missing"), None);
        assert_eq!(snap.histograms["crb.occupancy"].count(), 2);
    }

    #[test]
    fn handles_are_lock_free_views_of_the_same_metric() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sims.done");
        let c2 = reg.counter("sims.done");
        c.add(2);
        c2.inc();
        assert_eq!(c.get(), 3, "clones share one atomic");
        assert_eq!(reg.snapshot().counter("sims.done"), 3);
        // Registry-path updates land in the same cell as handle updates.
        reg.counter_add("sims.done", 4);
        assert_eq!(c.get(), 7);

        let g = reg.gauge("queue.depth");
        assert_eq!(g.get(), 0.0, "gauges register at 0.0");
        g.set(12.5);
        assert_eq!(reg.gauge("queue.depth").get(), 12.5);
        assert_eq!(reg.snapshot().gauge("queue.depth"), Some(12.5));
        reg.gauge_set("queue.depth", -1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.counter_add("n", 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("n"), 4000);
    }
}

//! Telemetry sinks: where events go.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{Event, FieldValue};
use crate::json;
use crate::SCHEMA_VERSION;

/// Consumes [`Event`]s. Instrumented code is written against this
/// trait so the disabled path ([`NullSink`]) costs one boolean check.
pub trait TelemetrySink {
    /// Whether events should be built and emitted at all. Emit sites
    /// (and the [`crate::emit!`] macro) check this before assembling
    /// an event's field slice.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

impl<S: TelemetrySink + ?Sized> TelemetrySink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn emit(&mut self, event: &Event) {
        (**self).emit(event)
    }
    fn flush(&mut self) {
        (**self).flush()
    }
}

impl<S: TelemetrySink + ?Sized> TelemetrySink for Box<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn emit(&mut self, event: &Event) {
        (**self).emit(event)
    }
    fn flush(&mut self) {
        (**self).flush()
    }
}

/// The zero-overhead default: reports `enabled() == false` and drops
/// anything emitted anyway.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&mut self, _event: &Event) {}
}

/// Serializes each event as one JSON object per line:
/// `{"v":1,"ev":"<kind>",...fields}`.
///
/// Write errors never abort the run being observed (emitting stays
/// infallible), but the first one is remembered; call
/// [`JsonlSink::finish`] when the stream is complete to learn whether
/// every line actually reached the writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
    /// First write/flush error, kept so `finish()` can report that a
    /// seemingly complete stream is in fact truncated.
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncating) `path` for JSONL output.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            line: String::with_capacity(256),
            error: None,
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    /// Flushes and reports the first write error that occurred over
    /// the sink's whole lifetime. `Ok(())` means every emitted event
    /// reached the underlying writer; an error means the stream is
    /// truncated or corrupt and should not be fed to the analyzer.
    pub fn finish(&mut self) -> io::Result<()> {
        let flushed = self.writer.flush();
        match self.error.take() {
            Some(e) => Err(e),
            None => flushed,
        }
    }

    /// Serializes one event into `out` (without trailing newline).
    /// Exposed so tests can pin the exact line format.
    pub fn serialize(event: &Event, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"v\":");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(",\"ev\":\"");
        json::escape_into(event.kind, out);
        out.push('"');
        for (name, value) in event.fields {
            out.push_str(",\"");
            json::escape_into(name, out);
            out.push_str("\":");
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => json::number(*v, out),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => {
                    out.push('"');
                    json::escape_into(v, out);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        self.line.clear();
        Self::serialize(event, &mut self.line);
        self.line.push('\n');
        // Telemetry is best-effort: an I/O error must not abort the
        // run it is observing. The first failure is remembered for
        // `finish()` so truncation is detectable afterwards.
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.error.get_or_insert(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// An owned copy of one [`FieldValue`], so a recorded event can
/// outlive the emit site's stack frame.
#[derive(Clone, Debug, PartialEq)]
enum OwnedFieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

/// An owned copy of one [`Event`].
#[derive(Clone, Debug)]
struct OwnedEvent {
    kind: String,
    fields: Vec<(String, OwnedFieldValue)>,
}

/// Buffers owned copies of every emitted event so a stream produced on
/// one thread can later be replayed — in order — into another sink.
///
/// This is what lets the parallel harness trace the base and CCR
/// simulations concurrently: each phase emits into its own
/// `RecordSink`, and the phases are replayed into the real sink in
/// serial order afterwards, producing a byte-identical stream to a
/// fully serial run.
#[derive(Clone, Debug, Default)]
pub struct RecordSink {
    events: Vec<OwnedEvent>,
}

impl RecordSink {
    /// Creates an empty recorder.
    pub fn new() -> RecordSink {
        RecordSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-emits every recorded event, in recording order, into `sink`.
    pub fn replay_into(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        for ev in &self.events {
            let fields: Vec<(&str, FieldValue)> = ev
                .fields
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        OwnedFieldValue::U64(v) => FieldValue::U64(*v),
                        OwnedFieldValue::I64(v) => FieldValue::I64(*v),
                        OwnedFieldValue::F64(v) => FieldValue::F64(*v),
                        OwnedFieldValue::Bool(v) => FieldValue::Bool(*v),
                        OwnedFieldValue::Str(v) => FieldValue::Str(v),
                    };
                    (name.as_str(), v)
                })
                .collect();
            sink.emit(&Event {
                kind: &ev.kind,
                fields: &fields,
            });
        }
    }
}

impl TelemetrySink for RecordSink {
    fn emit(&mut self, event: &Event) {
        self.events.push(OwnedEvent {
            kind: event.kind.to_string(),
            fields: event
                .fields
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        FieldValue::U64(v) => OwnedFieldValue::U64(*v),
                        FieldValue::I64(v) => OwnedFieldValue::I64(*v),
                        FieldValue::F64(v) => OwnedFieldValue::F64(*v),
                        FieldValue::Bool(v) => OwnedFieldValue::Bool(*v),
                        FieldValue::Str(v) => OwnedFieldValue::Str(v.to_string()),
                    };
                    (name.to_string(), v)
                })
                .collect(),
        });
    }
}

/// Aggregates events in memory: a per-kind count plus sums of every
/// numeric field, for quick end-of-run summaries and tests.
#[derive(Clone, Debug, Default)]
pub struct SummarySink {
    counts: BTreeMap<String, u64>,
    sums: BTreeMap<(String, String), f64>,
}

impl SummarySink {
    /// Creates an empty summary.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }

    /// Number of events of `kind` seen.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All per-kind counts, sorted by kind.
    pub fn counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sum of numeric field `field` over all events of `kind`.
    pub fn sum(&self, kind: &str, field: &str) -> f64 {
        self.sums
            .get(&(kind.to_string(), field.to_string()))
            .copied()
            .unwrap_or(0.0)
    }
}

impl TelemetrySink for SummarySink {
    fn emit(&mut self, event: &Event) {
        *self.counts.entry(event.kind.to_string()).or_insert(0) += 1;
        for (name, value) in event.fields {
            let num = match value {
                FieldValue::U64(v) => *v as f64,
                FieldValue::I64(v) => *v as f64,
                FieldValue::F64(v) => *v,
                FieldValue::Bool(_) | FieldValue::Str(_) => continue,
            };
            *self
                .sums
                .entry((event.kind.to_string(), name.to_string()))
                .or_insert(0.0) += num;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>() -> Event<'a> {
        Event {
            kind: "pass",
            fields: &[
                ("name", FieldValue::Str("dce")),
                ("wall_us", FieldValue::U64(12)),
                ("delta", FieldValue::I64(-4)),
                ("ipc", FieldValue::F64(1.5)),
                ("changed", FieldValue::Bool(true)),
            ],
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn jsonl_line_format() {
        let mut out = String::new();
        JsonlSink::<Vec<u8>>::serialize(&sample(), &mut out);
        assert_eq!(
            out,
            r#"{"v":1,"ev":"pass","name":"dce","wall_us":12,"delta":-4,"ipc":1.5,"changed":true}"#
        );
    }

    #[test]
    fn jsonl_escapes_strings() {
        let ev = Event {
            kind: "note",
            fields: &[("msg", FieldValue::Str("a\"b\\c\nd"))],
        };
        let mut out = String::new();
        JsonlSink::<Vec<u8>>::serialize(&ev, &mut out);
        assert_eq!(out, r#"{"v":1,"ev":"note","msg":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample());
        sink.emit(&sample());
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn finish_reports_clean_streams_and_short_writes() {
        // Healthy writer: finish is Ok and is idempotent.
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample());
        assert!(sink.finish().is_ok());
        assert!(sink.finish().is_ok());

        // A writer that fails mid-stream: the event loss must surface
        // at finish() even though emit() stayed silent.
        struct Failing {
            budget: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
                }
                self.budget -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing { budget: 1 });
        sink.emit(&sample());
        sink.emit(&sample()); // silently lost …
        let err = sink.finish().expect_err("short write must surface");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // … and the error is consumed: a second finish is clean.
        assert!(sink.finish().is_ok());
    }

    #[test]
    fn record_sink_replays_a_byte_identical_stream() {
        let mut direct = JsonlSink::new(Vec::new());
        direct.emit(&sample());
        direct.emit(&Event {
            kind: "note",
            fields: &[("msg", FieldValue::Str("a\"b"))],
        });

        let mut rec = RecordSink::new();
        rec.emit(&sample());
        rec.emit(&Event {
            kind: "note",
            fields: &[("msg", FieldValue::Str("a\"b"))],
        });
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        let mut replayed = JsonlSink::new(Vec::new());
        rec.replay_into(&mut replayed);

        assert_eq!(direct.into_inner(), replayed.into_inner());
    }

    #[test]
    fn record_sink_skips_disabled_targets() {
        let mut rec = RecordSink::new();
        rec.emit(&sample());
        let mut null = NullSink;
        rec.replay_into(&mut null); // must not panic, must not emit
    }

    #[test]
    fn summary_counts_and_sums() {
        let mut sink = SummarySink::new();
        sink.emit(&sample());
        sink.emit(&sample());
        assert_eq!(sink.count("pass"), 2);
        assert_eq!(sink.count("other"), 0);
        assert_eq!(sink.sum("pass", "wall_us"), 24.0);
        assert_eq!(sink.sum("pass", "delta"), -8.0);
        assert_eq!(sink.sum("pass", "ipc"), 3.0);
        let kinds: Vec<_> = sink.counts().collect();
        assert_eq!(kinds, vec![("pass", 2)]);
    }

    #[test]
    fn emit_macro_builds_and_gates() {
        let mut sink = SummarySink::new();
        crate::emit!(sink, "x", a: 1u64, b: "s", c: 0.5f64);
        assert_eq!(sink.count("x"), 1);
        assert_eq!(sink.sum("x", "a"), 1.0);
        // Through a &mut reference, as instrumented code holds sinks.
        let r = &mut sink;
        crate::emit!(r, "x", a: 2u64);
        assert_eq!(sink.count("x"), 2);
        // NullSink: gated out entirely.
        let mut null = NullSink;
        crate::emit!(null, "x", a: 1u64);
    }
}

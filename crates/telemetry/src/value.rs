//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace builds offline (no serde), and the producer side
//! already hand-rolls its serialization (`ccr_telemetry::JsonWriter`);
//! this is the matching reader. It accepts exactly RFC 8259 JSON with
//! two deliberate simplifications: numbers are parsed as `f64` with
//! an exact-integer fast path kept as `u64`/`i64` (every counter the
//! producers emit is an integer), and `\uXXXX` escapes outside the
//! BMP must come as surrogate pairs (as the producers write them).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an exact unsigned integer.
    U64(u64),
    /// A number that is an exact negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, when it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an object map, when it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// `self[key]` as `u64`, defaulting to 0 — the common shape for
    /// reading counters out of event records.
    pub fn u64_field(&self, key: &str) -> u64 {
        self.get(key).and_then(Value::as_u64).unwrap_or(0)
    }

    /// `self[key]` as `f64`, defaulting to 0.0.
    pub fn f64_field(&self, key: &str) -> f64 {
        self.get(key).and_then(Value::as_f64).unwrap_or(0.0)
    }

    /// `self[key]` as `&str`, defaulting to `""`.
    pub fn str_field(&self, key: &str) -> &str {
        self.get(key).and_then(Value::as_str).unwrap_or("")
    }
}

/// Where and why a parse failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy its remaining bytes.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                        |_| ParseError {
                            offset: start,
                            message: "invalid UTF-8 in string".to_string(),
                        },
                    )?);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("bad number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::F64(2000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
        assert_eq!(parse(&u64::MAX.to_string()).unwrap(), Value::U64(u64::MAX));
    }

    #[test]
    fn parses_structures_and_accessors_work() {
        let v = parse(r#"{"a":[1,2,{"b":true}],"c":{"d":null},"e":-1,"f":0.25,"s":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b"),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.u64_field("e"), 0, "negative is not a u64");
        assert_eq!(v.f64_field("e"), -1.0);
        assert_eq!(v.f64_field("f"), 0.25);
        assert_eq!(v.str_field("s"), "x");
        assert_eq!(v.str_field("missing"), "");
        assert_eq!(v.u64_field("missing"), 0);
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        let v = parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo ☃");
    }

    #[test]
    fn round_trips_producer_output() {
        // A line exactly as JsonlSink writes it.
        let line =
            r#"{"v":1,"ev":"pass","name":"dce","wall_us":12,"delta":-4,"ipc":1.5,"changed":true}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.u64_field("v"), 1);
        assert_eq!(v.str_field("ev"), "pass");
        assert_eq!(v.u64_field("wall_us"), 12);
        assert_eq!(v.f64_field("delta"), -4.0);
        assert_eq!(v.f64_field("ipc"), 1.5);
        assert_eq!(v.get("changed").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a""#,
            r#"{"a":}"#,
            "tru",
            "01x",
            r#""\q""#,
            "1 2",
            "[1 2]",
            r#"{"a":1,}"#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse(r#"{"a": nope}"#).unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"));
    }
}

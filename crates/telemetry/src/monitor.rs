//! A background sampler thread over a [`MetricsRegistry`].
//!
//! The monitor snapshots a shared registry on a fixed period and
//! hands each [`MonitorSample`] to a caller-supplied callback — the
//! harness uses this to render live progress to stderr and to append
//! `monitor` events to `harness.jsonl` while a long experiment sweep
//! runs. Sampling is strictly read-only: the monitored computation
//! never blocks on the monitor (registry reads are atomic loads under
//! a briefly-held registration mutex), and stopping the monitor
//! always delivers one final sample so short runs still record their
//! end state.
//!
//! The same invariant as every other observer in this crate applies:
//! the monitor must not perturb the experiment. It shares no state
//! with the simulation beyond the registry it reads, so every
//! simulated statistic is bit-identical with the monitor on or off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// One periodic (or final) observation of a [`MetricsRegistry`].
#[derive(Clone, Debug)]
pub struct MonitorSample {
    /// Sample sequence number, starting at 0.
    pub seq: u64,
    /// Milliseconds since the monitor started.
    pub elapsed_ms: u64,
    /// True for the one sample taken while stopping.
    pub last: bool,
    /// The registry contents at sample time.
    pub snapshot: MetricsSnapshot,
}

/// A running sampler thread. Dropping a `Monitor` without calling
/// [`Monitor::stop`] also stops the thread, but discards the final
/// sample's outcome (the callback still runs).
pub struct Monitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Monitor {
    /// Spawns a sampler over `registry`, invoking `on_sample` every
    /// `period` until stopped. The period is polled in small slices so
    /// [`Monitor::stop`] returns promptly even with long periods.
    pub fn spawn(
        registry: Arc<MetricsRegistry>,
        period: Duration,
        mut on_sample: impl FnMut(&MonitorSample) + Send + 'static,
    ) -> Monitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ccr-monitor".to_string())
            .spawn(move || {
                let started = Instant::now();
                let slice = period
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut seq = 0u64;
                let mut next = started + period;
                while !stop_flag.load(Ordering::Relaxed) {
                    if Instant::now() >= next {
                        on_sample(&MonitorSample {
                            seq,
                            elapsed_ms: started.elapsed().as_millis() as u64,
                            last: false,
                            snapshot: registry.snapshot(),
                        });
                        seq += 1;
                        next += period;
                    }
                    std::thread::sleep(slice);
                }
                // The stopping sample: short runs (under one period)
                // still observe their end state exactly once.
                on_sample(&MonitorSample {
                    seq,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    last: true,
                    snapshot: registry.snapshot(),
                });
                seq + 1
            })
            .expect("spawn monitor thread");
        Monitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler, waits for its final sample, and returns the
    /// total number of samples delivered (always at least 1).
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("monitor joined once")
            .join()
            .expect("monitor thread panicked")
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn stop_always_delivers_a_final_sample() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter_add("n", 7);
        let seen: Arc<Mutex<Vec<MonitorSample>>> = Arc::default();
        let sink = Arc::clone(&seen);
        // A one-hour period: only the stopping sample can fire.
        let mon = Monitor::spawn(Arc::clone(&reg), Duration::from_secs(3600), move |s| {
            sink.lock().unwrap().push(s.clone());
        });
        reg.counter_add("n", 1);
        let samples = mon.stop();
        assert_eq!(samples, 1);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen[0].last);
        assert_eq!(seen[0].seq, 0);
        assert_eq!(seen[0].snapshot.counter("n"), 8, "end state observed");
    }

    #[test]
    fn periodic_samples_observe_live_counters() {
        let reg = Arc::new(MetricsRegistry::new());
        let seen: Arc<Mutex<Vec<(u64, u64, bool)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let mon = Monitor::spawn(Arc::clone(&reg), Duration::from_millis(5), move |s| {
            sink.lock()
                .unwrap()
                .push((s.seq, s.snapshot.counter("work"), s.last));
        });
        let c = reg.counter("work");
        for _ in 0..20 {
            c.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = mon.stop();
        let seen = seen.lock().unwrap();
        assert_eq!(samples as usize, seen.len());
        assert!(seen.len() >= 2, "several periods elapsed: {seen:?}");
        // Sequence numbers are consecutive, exactly one final sample,
        // and the observed counter is monotone non-decreasing.
        for (i, (seq, _, last)) in seen.iter().enumerate() {
            assert_eq!(*seq as usize, i);
            assert_eq!(*last, i == seen.len() - 1);
        }
        assert!(seen.windows(2).all(|w| w[0].1 <= w[1].1), "{seen:?}");
        assert_eq!(seen.last().unwrap().1, 20);
    }

    #[test]
    fn dropping_a_monitor_stops_its_thread() {
        let reg = Arc::new(MetricsRegistry::new());
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let mon = Monitor::spawn(reg, Duration::from_secs(3600), move |_| {
            flag.store(true, Ordering::Relaxed);
        });
        drop(mon); // joins; the final sample runs on the way out
        assert!(fired.load(Ordering::Relaxed));
    }
}

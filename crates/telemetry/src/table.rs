//! Plain-text / CSV table rendering.
//!
//! Lives here (rather than in `ccr-core`, where it started) because
//! both the producer side (`ccr-bench` experiment renderers, via the
//! `ccr_core::report` re-export) and the consumer side (`ccr-analyze`,
//! which deliberately depends on nothing but this crate) need the same
//! deterministic table text and RFC 4180 CSV bytes.

/// A simple left-aligned text table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long
    /// rows are truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC 4180 CSV: cells containing a comma,
    /// a double quote, or a line break are quoted, with embedded
    /// quotes doubled. Plain cells are written verbatim.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for cells in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                csv_cell(cell, &mut out);
            }
            out.push('\n');
        }
        out
    }
}

/// Appends one CSV cell, quoting per RFC 4180 when needed.
fn csv_cell(cell: &str, out: &mut String) {
    if cell.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in cell.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String], f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        render(&self.header, f)?;
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["bench", "speedup"]);
        t.row(["124.m88ksim", "1.600"]);
        t.row(["go", "1.05"]);
        let s = t.to_string();
        assert!(s.contains("bench"), "{s}");
        assert!(s.lines().count() == 4, "{s}");
        // Alignment: both data rows have the speedup column starting
        // at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[2].find("1.600").unwrap();
        assert_eq!(lines[3].find("1.05").unwrap(), col);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    /// A minimal RFC 4180 reader, for the round-trip test only.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut quoted = false;
        let mut chars = text.chars().peekable();
        while let Some(ch) = chars.next() {
            if quoted {
                match ch {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    '"' => quoted = false,
                    other => cell.push(other),
                }
            } else {
                match ch {
                    '"' => quoted = true,
                    ',' => row.push(std::mem::take(&mut cell)),
                    '\n' => {
                        row.push(std::mem::take(&mut cell));
                        rows.push(std::mem::take(&mut row));
                    }
                    other => cell.push(other),
                }
            }
        }
        rows
    }

    #[test]
    fn csv_quotes_special_cells_and_round_trips() {
        let gnarly = [
            "plain",
            "comma, inside",
            "quote \" inside",
            "both \",\" of them",
            "line\nbreak",
            "carriage\rreturn",
            "\"fully quoted\"",
            "",
        ];
        let mut t = Table::new(["h,1", "h\"2", "h3", "h4", "h5", "h6", "h7", "h8"]);
        t.row(gnarly);
        let csv = t.to_csv();
        let parsed = parse_csv(&csv);
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0],
            vec!["h,1", "h\"2", "h3", "h4", "h5", "h6", "h7", "h8"]
        );
        assert_eq!(parsed[1], gnarly);
        // Plain cells stay unquoted.
        assert!(csv.contains("plain,"));
        // Embedded quotes are doubled per RFC 4180.
        assert!(csv.contains("\"quote \"\" inside\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.to_csv(), "a,b,c\nonly,,\n");
    }
}

//! Wall-clock span timers.

use std::time::Instant;

/// A named wall-clock span. Start one at the top of a phase, read the
/// elapsed time when it completes:
///
/// ```
/// use ccr_telemetry::Span;
/// let span = Span::start("optimize");
/// // ... work ...
/// let us = span.elapsed_us();
/// assert_eq!(span.name(), "optimize");
/// let _ = us;
/// ```
#[derive(Clone, Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Starts a span named `name`.
    pub fn start(name: &'static str) -> Span {
        Span {
            name,
            started: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Microseconds elapsed since [`Span::start`], saturating at
    /// `u64::MAX` (≈ 584 000 years — effectively never).
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_time() {
        let span = Span::start("test");
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        // Elapsed is monotone; two successive reads never go backwards.
        let a = span.elapsed_us();
        let b = span.elapsed_us();
        assert!(b >= a);
        assert_eq!(span.name(), "test");
    }
}

//! Hand-rolled JSON serialization.
//!
//! The workspace builds offline, so there is no serde; this module
//! provides the small structured-writer surface the telemetry layer
//! needs: nested objects/arrays with automatic comma placement, and
//! RFC 8259 string escaping.

use std::fmt::Write as _;

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes): `"` `\` and control characters are escaped, everything
/// else passes through as UTF-8.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats `v` as a JSON number. JSON has no NaN/Infinity, so those
/// serialize as `null`; finite values use Rust's shortest round-trip
/// `Display`, which never emits an exponent and is valid JSON.
pub fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON writer with automatic comma placement.
///
/// Call sequence is validated only by debug assertions (a key must
/// precede each value inside an object; arrays take bare values), so
/// misuse shows up in tests rather than costing branches in release.
///
/// ```
/// use ccr_telemetry::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.obj_begin();
/// w.key("name");
/// w.str_val("lex");
/// w.key("cycles");
/// w.u64_val(42);
/// w.obj_end();
/// assert_eq!(w.finish(), r#"{"name":"lex","cycles":42}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` until the first element
    /// has been written (i.e. no comma needed yet).
    first: Vec<bool>,
    /// A key was just written; the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Consumes the writer and returns the serialized text.
    pub fn finish(self) -> String {
        debug_assert!(self.first.is_empty(), "unclosed container");
        self.out
    }

    /// Bytes written so far (cheap progress probe).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
        } else if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Opens an object (`{`).
    pub fn obj_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.first.push(true);
        self
    }

    /// Closes the current object (`}`).
    pub fn obj_end(&mut self) -> &mut Self {
        debug_assert!(!self.pending_key, "dangling key");
        self.first.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn arr_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.first.push(true);
        self
    }

    /// Closes the current array (`]`).
    pub fn arr_end(&mut self) -> &mut Self {
        self.first.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        debug_assert!(!self.pending_key, "two keys in a row");
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
        self.out.push('"');
        escape_into(k, &mut self.out);
        self.out.push_str("\":");
        self.pending_key = true;
        self
    }

    /// Writes a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a signed integer value.
    pub fn i64_val(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value (`null` for NaN/Infinity).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.before_value();
        number(v, &mut self.out);
        self
    }

    /// Writes a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a `null` value.
    pub fn null_val(&mut self) -> &mut Self {
        self.before_value();
        self.out.push_str("null");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        escape_into(s, &mut out);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("plain"), "plain");
        assert_eq!(escaped("a\"b"), "a\\\"b");
        assert_eq!(escaped("a\\b"), "a\\\\b");
        assert_eq!(escaped("line\nbreak\ttab\r"), "line\\nbreak\\ttab\\r");
        assert_eq!(escaped("\u{1}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(escaped("héllo ☃"), "héllo ☃");
    }

    #[test]
    fn numbers_are_json_safe() {
        let mut out = String::new();
        number(1.5, &mut out);
        number(f64::NAN, &mut out);
        number(f64::INFINITY, &mut out);
        assert_eq!(out, "1.5nullnull");
    }

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("a");
        w.arr_begin();
        w.u64_val(1).u64_val(2).u64_val(3);
        w.arr_end();
        w.key("b");
        w.obj_begin();
        w.key("x").i64_val(-1);
        w.key("y").f64_val(0.5);
        w.key("z").bool_val(true);
        w.obj_end();
        w.key("c").null_val();
        w.obj_end();
        assert_eq!(
            w.finish(),
            r#"{"a":[1,2,3],"b":{"x":-1,"y":0.5,"z":true},"c":null}"#
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("empty_obj");
        w.obj_begin();
        w.obj_end();
        w.key("empty_arr");
        w.arr_begin();
        w.arr_end();
        w.obj_end();
        assert_eq!(w.finish(), r#"{"empty_obj":{},"empty_arr":[]}"#);
    }

    #[test]
    fn top_level_array_of_objects() {
        let mut w = JsonWriter::new();
        w.arr_begin();
        for i in 0..2u64 {
            w.obj_begin();
            w.key("i").u64_val(i);
            w.obj_end();
        }
        w.arr_end();
        assert_eq!(w.finish(), r#"[{"i":0},{"i":1}]"#);
    }
}

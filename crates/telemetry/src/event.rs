//! Borrowed, allocation-free telemetry events.

/// One field value in an [`Event`]. Borrowed so that hot emit sites
/// (per-region reuse outcomes, CRB evictions) build events on the
/// stack with zero allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer (counts, cycles, ids).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (ratios, IPC).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Borrowed string (names, reasons).
    Str(&'a str),
}

impl<'a> From<u64> for FieldValue<'a> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl<'a> From<usize> for FieldValue<'a> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl<'a> From<u32> for FieldValue<'a> {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl<'a> From<i64> for FieldValue<'a> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl<'a> From<f64> for FieldValue<'a> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl<'a> From<bool> for FieldValue<'a> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}

/// One telemetry event: a kind tag plus named fields, all borrowed
/// from the emit site's stack frame.
///
/// ```
/// use ccr_telemetry::{Event, FieldValue};
/// let ev = Event {
///     kind: "crb_evict",
///     fields: &[("set", FieldValue::U64(3)), ("clock", FieldValue::U64(812))],
/// };
/// assert_eq!(ev.kind, "crb_evict");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Event<'a> {
    /// Event kind tag, e.g. `"pass"`, `"region_reject"`, `"crb_evict"`.
    pub kind: &'a str,
    /// Named payload fields, in emission order.
    pub fields: &'a [(&'a str, FieldValue<'a>)],
}

/// Builds an [`Event`] and emits it to `sink` only when the sink is
/// enabled — the field-tuple slice is never constructed otherwise.
///
/// ```
/// use ccr_telemetry::{emit, SummarySink};
/// let mut sink = SummarySink::new();
/// emit!(sink, "pass", name: "dce", wall_us: 12u64, changed: true);
/// assert_eq!(sink.count("pass"), 1);
/// ```
#[macro_export]
macro_rules! emit {
    ($sink:expr, $kind:expr $(, $field:ident : $value:expr)* $(,)?) => {{
        // Method-call syntax so `$sink` may be an owned sink or any
        // depth of `&mut` (auto-reborrow), without a `mut` binding.
        use $crate::TelemetrySink as _;
        if $sink.enabled() {
            $sink.emit(&$crate::Event {
                kind: $kind,
                fields: &[$((stringify!($field), $crate::FieldValue::from($value))),*],
            });
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x"));
    }
}

#![warn(missing_docs)]

//! # ccr-telemetry — span/event tracing for the CCR stack
//!
//! Lightweight, dependency-free observability plumbing shared by the
//! compiler passes, the region former, and the timing simulator:
//!
//! * [`span::Span`] — wall-clock timers for phase/pass timing,
//! * [`metrics::MetricsRegistry`] — a thread-safe registry of named
//!   counters, gauges, and log₂-bucketed histograms; counters and
//!   gauges are atomics behind lock-free [`metrics::Counter`] /
//!   [`metrics::Gauge`] handles, with cheap point-in-time
//!   [`metrics::MetricsSnapshot`]s,
//! * [`monitor::Monitor`] — a background thread sampling a shared
//!   registry on a fixed period (the live-progress backbone of the
//!   experiment harness),
//! * [`event::Event`] + [`sink::TelemetrySink`] — a borrowed,
//!   allocation-free event record fanned out to pluggable sinks:
//!   [`sink::NullSink`] (zero-overhead default), [`sink::JsonlSink`]
//!   (one JSON object per line), and [`sink::SummarySink`]
//!   (per-kind aggregation),
//! * [`json::JsonWriter`] — a hand-rolled JSON serializer (the build
//!   environment is offline, so no serde) used for both JSONL event
//!   streams and the versioned run report in `ccr-core`,
//! * [`value`] — the matching reader: a minimal JSON value model and
//!   recursive-descent parser shared by every artifact consumer
//!   (`ccr-analyze` re-exports it) and by the simulator's snapshot
//!   decoder.
//!
//! The guiding invariant: **observability must not perturb the
//! experiment**. Sinks observe completed facts (a pass finished, a
//! region was rejected, a CRB entry was evicted); nothing in this
//! crate feeds back into compilation or simulation, and the
//! [`sink::NullSink`] path reduces to an `enabled()` check.

pub mod event;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod sink;
pub mod span;
pub mod table;
pub mod value;

pub use event::{Event, FieldValue};
pub use json::JsonWriter;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use monitor::{Monitor, MonitorSample};
pub use sink::{JsonlSink, NullSink, RecordSink, SummarySink, TelemetrySink};
pub use span::Span;
pub use table::Table;

/// Version of the emitted event / run-report schema. Bumped whenever
/// field names or semantics change, so downstream consumers can
/// detect incompatible streams.
pub const SCHEMA_VERSION: u32 = 1;

//! Experiment-engine equivalence tests.
//!
//! Two contracts are pinned here:
//!
//! 1. **Bit-identity**: `ccr exp <name>` renders byte-for-byte what
//!    the legacy per-figure binary printed — checked against the
//!    committed `results/` tables (which are exactly that stdout).
//! 2. **Deduplication**: the planner simulates each distinct
//!    (workload, region, machine, CRB) point exactly once across
//!    specs, and never re-compiles a (workload, region-config) pair —
//!    without changing any rendered number.

use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::InputSet;
use ccr_bench::exp::{self, specs};

fn render(name: &str) -> String {
    let spec = specs::find(name).expect("known spec");
    let plan = exp::plan(&[&spec]);
    let executed = exp::execute(&plan, 0).expect("known workloads, within limits");
    executed.results(&spec).render().text
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn exp_fig4_matches_committed_table() {
    assert_eq!(
        render("fig4"),
        include_str!("../results/fig4_potential.txt"),
        "engine output for fig4 diverged from the legacy binary's table"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn exp_fig8a_matches_committed_table() {
    assert_eq!(
        render("fig8a"),
        include_str!("../results/fig8a_instances.txt"),
        "engine output for fig8a diverged from the legacy binary's table"
    );
}

#[test]
fn registry_resolves_short_and_legacy_names() {
    let registry = specs::registry();
    assert_eq!(registry.len(), 8);
    for spec in &registry {
        assert!(specs::find(spec.name).is_some(), "{} by name", spec.name);
        assert!(
            specs::find(spec.output).is_some(),
            "{} by legacy binary name",
            spec.output
        );
    }
    assert!(specs::find("no_such_experiment").is_none());
}

#[test]
fn planner_dedupes_across_the_fig8_family() {
    let a = specs::fig8a();
    let b = specs::fig8b();
    let g = specs::fig9();
    let stats = exp::plan(&[&a, &b, &g]).stats;
    // 13 workloads × (3 + 3 + 1) scenarios.
    assert_eq!(stats.requested_points, 91);
    // Compiles depend only on the region config: fig8a's instance
    // sweep varies `trial_instances` (3 distinct configs), while all
    // of fig8b's entry sweep and fig9 reuse the 8-instance config.
    assert_eq!(stats.unique_compiles, 3 * 13);
    assert_eq!(stats.deduped_compiles, 4 * 13);
    // Baselines ignore the region config entirely (one per workload);
    // CCR points: 4/8/16 CI plus 32e/64e (128e/8CI is fig8a's middle
    // column, and fig9's paper CRB is the same point again).
    assert_eq!(stats.unique_sims, 13 * (1 + 5));
    assert_eq!(stats.deduped_sims, 2 * 91 - 13 * 6);
    assert!(stats.deduped_sims > 0);
}

static TINY_WORKLOADS: [&str; 1] = ["bitcount"];

fn tiny_render(res: &exp::SpecResults<'_>) -> exp::Rendered {
    exp::Rendered {
        text: format!("{:.4}\n", res.runs(0)[0].measurement.speedup()),
        tables: Vec::new(),
    }
}

fn tiny_spec(name: &'static str) -> exp::ExperimentSpec {
    exp::ExperimentSpec {
        name,
        output: name,
        title: "planner test spec",
        workloads: &TINY_WORKLOADS,
        scenarios: vec![exp::Scenario::new(
            "paper",
            InputSet::Train,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        )],
        potential: false,
        render: tiny_render,
    }
}

#[test]
fn shared_point_across_two_specs_runs_exactly_once() {
    let a = tiny_spec("tiny_a");
    let b = tiny_spec("tiny_b");
    let plan = exp::plan(&[&a, &b]);
    assert_eq!(plan.stats.requested_points, 2);
    assert_eq!(plan.stats.unique_compiles, 1);
    assert_eq!(plan.stats.deduped_compiles, 1);
    // One baseline + one CCR simulation serve both specs.
    assert_eq!(plan.stats.unique_sims, 2);
    assert_eq!(plan.stats.deduped_sims, 2);
    let executed = exp::execute(&plan, 1).expect("bitcount runs within limits");
    let ra = executed.results(&a).render().text;
    let rb = executed.results(&b).render().text;
    assert_eq!(ra, rb, "both specs must see the same shared measurement");
    let speedup: f64 = ra.trim().parse().expect("rendered speedup");
    assert!(speedup > 0.5, "implausible speedup {speedup}");
}

#[test]
fn point_summaries_flatten_each_unique_ccr_point_once() {
    let a = tiny_spec("tiny_a");
    let b = tiny_spec("tiny_b");
    let plan = exp::plan(&[&a, &b]);
    let executed = exp::execute(&plan, 1).expect("bitcount runs within limits");
    let points = executed.point_summaries();
    // The two specs share one (workload, config) point: one summary.
    assert_eq!(points.len(), 1);
    let p = &points[0];
    assert_eq!(p.workload, "bitcount");
    assert_eq!(p.input, "train");
    assert_eq!(
        p.config_hash,
        ccr::config_hash(&MachineConfig::paper(), &CrbConfig::paper()),
        "summary must carry the PR-2 config hash of its point"
    );
    assert!(p.base_cycles > 0 && p.ccr_cycles > 0);
    let expected = p.base_cycles as f64 / p.ccr_cycles as f64;
    assert!((p.speedup - expected).abs() < 1e-12);
    assert!((0.0..=1.0).contains(&p.hit_rate));
    assert!(p.regions > 0, "paper config must form regions on bitcount");
    let misses: u64 = p.miss_causes.iter().sum();
    assert!(
        p.hit_rate < 1.0 || misses == 0,
        "a perfect hit rate cannot coexist with classified misses"
    );
}

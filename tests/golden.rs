//! Golden-fixture test: a hand-written `.ccr` program with pinned
//! functional results. Catches any silent drift in parser, emulator
//! arithmetic, memory model, or call semantics.
//!
//! The fixture multiplies a read-only weight table against evolving
//! cell values across 50 call-bearing iterations; the huge checksum
//! value exercises wrapping multiplication. If a deliberate semantic
//! change invalidates these numbers, update them with the reasoning
//! recorded in the commit.

use ccr::profile::{EmuConfig, Emulator, NullCrb, NullSink};
use ccr::sim::{simulate_baseline, MachineConfig};

const FIXTURE: &str = include_str!("fixtures/sum_scan.ccr");

#[test]
fn fixture_parses_verifies_and_matches_pinned_results() {
    let p = ccr::ir::parse_program(FIXTURE).unwrap();
    ccr::ir::verify_program(&p).unwrap();
    let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
    assert_eq!(
        out.returned
            .iter()
            .map(|v| v.as_int())
            .collect::<Vec<i64>>(),
        vec![1_072_964_355_750_749_574, 50],
        "functional semantics drifted"
    );
    assert_eq!(out.dyn_instrs, 2554, "dynamic instruction count drifted");
}

#[test]
fn fixture_timing_stays_in_band() {
    // The exact cycle count (3269 when pinned) may legitimately move
    // with deliberate timing-model changes; a band catches accidental
    // order-of-magnitude regressions without freezing the model.
    let p = ccr::ir::parse_program(FIXTURE).unwrap();
    let sim = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
    assert!(
        (1500..=6000).contains(&sim.stats.cycles),
        "baseline cycles left the expected band: {}",
        sim.stats.cycles
    );
    // Structural floor: 2554 instructions on a 6-wide machine.
    assert!(sim.stats.cycles >= 2554 / 6);
}

#[test]
fn fixture_round_trips() {
    let p = ccr::ir::parse_program(FIXTURE).unwrap();
    let reprinted = p.to_string();
    let q = ccr::ir::parse_program(&reprinted).unwrap();
    assert_eq!(q.to_string(), reprinted);
}

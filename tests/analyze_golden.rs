//! Golden-file test for the analyzer.
//!
//! `tests/fixtures/run_telemetry/` holds a frozen telemetry capture of
//! the paper's Figure 2 bitcount program (the built-in `bitcount`
//! smoke workload, 300 loop iterations to keep the artifacts small):
//! `events.jsonl` and `report.json` exactly as `ccr profile` wrote
//! them, so the capture carries cycle attribution, miss-cause tags,
//! and `cycle_sample` stacks. The inputs are frozen rather than
//! regenerated because event lines carry wall-clock pass timings; the
//! *analyzer* by contrast must be fully deterministic, so its output
//! on the frozen inputs — `analysis.json`, `trace.json`,
//! `profile.folded`, and `flamegraph.svg` — is compared byte-for-byte
//! against the committed goldens in `golden/`.
//!
//! To refresh after an intentional schema or analyzer change:
//!
//! ```text
//! CCR_UPDATE_GOLDEN=1 cargo test --test analyze_golden
//! ```

use std::path::Path;

/// Matches the `ccr analyze` CLI default for the hottest-region tables.
const TOP_N: usize = 10;

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("CCR_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with CCR_UPDATE_GOLDEN=1 to create)",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{} drifted from the committed golden.\n\
         If the change is intentional, refresh with:\n\
         CCR_UPDATE_GOLDEN=1 cargo test --test analyze_golden\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

#[test]
fn analyzer_output_is_byte_stable_on_the_frozen_fixture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_telemetry");
    let data = ccr_analyze::load_run(&fixture).expect("fixture must ingest cleanly");
    assert_eq!(
        data.skipped_lines, 0,
        "the frozen capture has no torn lines"
    );

    let analysis = ccr_analyze::analyze(&data, TOP_N);
    let trace = ccr_analyze::chrome_trace(&data);
    let folded = ccr_analyze::fold_samples(&data);
    let svg = ccr_analyze::flamegraph_svg(&folded);

    // Determinism first: a second pass over the same input must give
    // identical bytes, independent of the goldens.
    assert_eq!(
        ccr_analyze::analyze(&data, TOP_N).to_json(),
        analysis.to_json()
    );
    assert_eq!(ccr_analyze::chrome_trace(&data), trace);
    assert_eq!(ccr_analyze::fold_samples(&data), folded);
    assert_eq!(ccr_analyze::flamegraph_svg(&folded), svg);

    check_golden(&fixture.join("golden/analysis.json"), &analysis.to_json());
    check_golden(&fixture.join("golden/trace.json"), &trace);
    check_golden(&fixture.join("golden/profile.folded"), &folded);
    check_golden(&fixture.join("golden/flamegraph.svg"), &svg);
}

#[test]
fn fixture_is_a_profiled_v3_capture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_telemetry");
    let data = ccr_analyze::load_run(&fixture).unwrap();
    assert!(
        !data.cycle_samples.is_empty(),
        "the fixture is a `ccr profile` capture"
    );
    let attr = data
        .report
        .ccr_attribution
        .as_ref()
        .expect("profiled capture carries attribution");
    assert_eq!(
        attr.total.total(),
        data.report.ccr_cycles,
        "every cycle is attributed to exactly one bucket"
    );
    // Per-region miss causes sum to the region's misses.
    let analysis = ccr_analyze::analyze(&data, TOP_N);
    for r in &analysis.regions {
        assert_eq!(
            r.miss_causes.iter().sum::<u64>(),
            r.misses,
            "region {} miss causes out of balance",
            r.region
        );
    }
}

#[test]
fn fixture_report_is_v3_with_provenance() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_telemetry");
    let data = ccr_analyze::load_run(&fixture).unwrap();
    assert_eq!(data.report.schema_version, 3);
    let hash = data
        .report
        .config_hash
        .as_deref()
        .expect("v2 carries a config hash");
    assert_eq!(hash.len(), 16);
    assert!(hash.bytes().all(|b| b.is_ascii_hexdigit()));
    // Self-diff of the fixture is clean and within every threshold.
    let snap: ccr_analyze::diff::RunSnapshot = (&ccr_analyze::analyze(&data, TOP_N)).into();
    let report = ccr_analyze::diff_analyses(
        &snap,
        &snap,
        &ccr_analyze::Thresholds::default_gate(),
        false,
    )
    .unwrap();
    assert!(!report.breached());
}

//! Execution-engine contracts.
//!
//! The engine layer (`ccr_bench::Engine`) exists so `ccr serve` can
//! keep one job pool, compile cache, and sim-result cache alive
//! across requests. Three things are pinned here:
//!
//! 1. **Bit-identity**: routing a plan through a fresh engine — every
//!    cache lookup a cold miss — produces exactly the same rendered
//!    tables and per-point statistics as the historical uncached
//!    path. Caching may only change *when* work runs, never what it
//!    computes.
//! 2. **Deterministic dedup**: two concurrent overlapping sweeps
//!    through one shared engine compile and simulate each shared
//!    point exactly once, with *pinned* hit/miss totals — the
//!    single-flight discipline makes the counters deterministic, not
//!    merely bounded.
//! 3. **Cache mechanics**: LRU eviction order, the capacity-0
//!    degenerate case, error non-caching, and the eviction exemption
//!    of reuse-potential entries.

use std::sync::atomic::{AtomicU64, Ordering};

use ccr::profile::RunOutcome;
use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig, SimOutcome, SimStats};
use ccr::telemetry::MetricsRegistry;
use ccr::workloads::InputSet;
use ccr::CompileConfig;
use ccr_bench::{exp, CachedSim, Engine, SimResultCache};

static TINY_WORKLOADS: [&str; 2] = ["bitcount", "lex"];

fn tiny_render(res: &exp::SpecResults<'_>) -> exp::Rendered {
    let mut text = String::new();
    for (i, _) in TINY_WORKLOADS.iter().enumerate() {
        let run = &res.runs(0)[i];
        text.push_str(&format!(
            "{} {} {} {:.6}\n",
            TINY_WORKLOADS[i],
            run.measurement.base.stats.cycles,
            run.measurement.ccr.stats.cycles,
            run.measurement.speedup()
        ));
    }
    exp::Rendered {
        text,
        tables: Vec::new(),
    }
}

fn tiny_spec(name: &'static str) -> exp::ExperimentSpec {
    exp::ExperimentSpec {
        name,
        output: name,
        title: "engine equivalence test spec",
        workloads: &TINY_WORKLOADS,
        scenarios: vec![exp::Scenario::new(
            "paper",
            InputSet::Train,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        )],
        potential: true,
        render: tiny_render,
    }
}

/// The simulated fields of a point summary — everything except host
/// wall time, which legitimately differs across runs.
fn sim_view(points: &[exp::PointSummary]) -> Vec<String> {
    points
        .iter()
        .map(|p| {
            format!(
                "{} {} {} {} {} {} {:.12} {:.12} {:?} {}",
                p.workload,
                p.input,
                p.scale,
                p.config_hash,
                p.base_cycles,
                p.ccr_cycles,
                p.speedup,
                p.hit_rate,
                p.miss_causes,
                p.regions
            )
        })
        .collect()
}

#[test]
fn engine_path_is_bit_identical_to_the_uncached_path() {
    let spec = tiny_spec("tiny_engine");
    let plan = exp::plan(&[&spec]);

    let plain = exp::execute(&plan, 2).expect("tiny workloads run within limits");
    let engine = Engine::new(2);
    let routed = engine
        .execute_plan(&plan, &ccr::Harness::disabled(), None, None)
        .expect("engine run succeeds");

    assert_eq!(
        plain.results(&spec).render().text,
        routed.results(&spec).render().text,
        "the engine must not change a single rendered byte"
    );
    assert_eq!(
        sim_view(&plain.point_summaries()),
        sim_view(&routed.point_summaries()),
    );
    // A fresh engine serves nothing from its result cache: every
    // lookup is a cold miss (2 workloads x 2 sims + 2 potentials).
    assert_eq!(engine.result_cache().hits(), 0);
    assert_eq!(engine.result_cache().misses(), 6);
    assert_eq!(engine.result_cache().evictions(), 0);
}

#[test]
fn repeated_plan_is_served_entirely_from_the_caches() {
    let spec = tiny_spec("tiny_repeat");
    let plan = exp::plan(&[&spec]);
    let engine = Engine::new(2);
    let harness = ccr::Harness::disabled();

    let first = engine.execute_plan(&plan, &harness, None, None).unwrap();
    let again = engine.execute_plan(&plan, &harness, None, None).unwrap();
    assert_eq!(
        first.results(&spec).render().text,
        again.results(&spec).render().text,
        "a cache hit must reproduce the original result exactly"
    );
    // Second pass: 2 compiles, 4 sims, 2 potentials — all hits.
    assert_eq!(engine.compile_cache().hits(), 2);
    assert_eq!(engine.compile_cache().misses(), 2);
    assert_eq!(engine.result_cache().hits(), 6);
    assert_eq!(engine.result_cache().misses(), 6);
}

#[test]
fn concurrent_overlapping_sweeps_dedup_with_pinned_counts() {
    let engine = Engine::new(2);
    // Two clients sweep the same two-workload selection concurrently
    // through one shared engine. Single-flight pins the totals: each
    // of the 2 compiles and 4 sims runs exactly once, and the client
    // that lost the race counts a hit — whichever client that is.
    let runs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                scope.spawn(move || {
                    engine.run_selected(
                        &TINY_WORKLOADS,
                        InputSet::Train,
                        1,
                        &CompileConfig::paper(),
                        &MachineConfig::paper(),
                        CrbConfig::paper(),
                        ccr_bench::emu_config(),
                        &ccr::Harness::disabled(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").expect("sweep succeeds"))
            .collect()
    });
    assert_eq!(engine.compile_cache().hits(), 2);
    assert_eq!(engine.compile_cache().misses(), 2);
    assert_eq!(engine.result_cache().hits(), 4);
    assert_eq!(engine.result_cache().misses(), 4);
    // Both clients observe identical simulated statistics.
    for (a, b) in runs[0].iter().zip(&runs[1]) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.measurement.base.stats.cycles,
            b.measurement.base.stats.cycles
        );
        assert_eq!(
            a.measurement.ccr.stats.cycles,
            b.measurement.ccr.stats.cycles
        );
    }
}

fn sim_of(cycles: u64) -> CachedSim {
    CachedSim {
        outcome: SimOutcome {
            run: RunOutcome {
                returned: Vec::new(),
                dyn_instrs: 0,
                skipped_instrs: 0,
                reuse_hits: 0,
                reuse_misses: 0,
            },
            stats: SimStats {
                cycles,
                ..SimStats::default()
            },
        },
        wall_ms: 1,
        fingerprint: String::new(),
    }
}

#[test]
fn result_cache_evicts_least_recently_used() {
    let metrics = MetricsRegistry::new();
    let cache = SimResultCache::new(2, &metrics);
    cache.get_or_run("a", || Ok(sim_of(1))).unwrap();
    cache.get_or_run("b", || Ok(sim_of(2))).unwrap();
    // Touch `a` so `b` becomes the least recently used entry.
    cache
        .get_or_run("a", || unreachable!("a is cached"))
        .unwrap();
    cache.get_or_run("c", || Ok(sim_of(3))).unwrap();
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.evictions(), 1);
    // `a` and `c` survive; `b` was evicted and must recompute.
    cache
        .get_or_run("a", || unreachable!("a survives"))
        .unwrap();
    cache
        .get_or_run("c", || unreachable!("c survives"))
        .unwrap();
    let recomputed = cache.get_or_run("b", || Ok(sim_of(2))).unwrap();
    assert_eq!(recomputed.outcome.stats.cycles, 2);
    assert_eq!(cache.hits(), 3);
    assert_eq!(cache.misses(), 4);
}

#[test]
fn zero_capacity_cache_retains_nothing_but_still_runs() {
    let metrics = MetricsRegistry::new();
    let cache = SimResultCache::new(0, &metrics);
    assert_eq!(cache.get_or_run("k", || Ok(sim_of(7))).unwrap().wall_ms, 1);
    assert!(cache.is_empty());
    // The same key misses again: nothing was retained.
    cache.get_or_run("k", || Ok(sim_of(7))).unwrap();
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.evictions(), 2);
}

#[test]
fn errors_are_never_cached() {
    let metrics = MetricsRegistry::new();
    let cache = SimResultCache::new(8, &metrics);
    let Err(err) = cache.get_or_run("k", || Err("emulator limit".to_string())) else {
        panic!("a failing computation must surface its error");
    };
    assert_eq!(err, "emulator limit");
    assert!(cache.is_empty());
    // A later caller retries with its own computation and succeeds.
    cache.get_or_run("k", || Ok(sim_of(9))).unwrap();
    cache
        .get_or_run("k", || unreachable!("now cached"))
        .unwrap();
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 2);
}

#[test]
fn single_flight_runs_each_key_exactly_once_under_contention() {
    let metrics = MetricsRegistry::new();
    let cache = SimResultCache::new(8, &metrics);
    let computations = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                cache
                    .get_or_run("shared", || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually block.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(sim_of(5))
                    })
                    .unwrap();
            });
        }
    });
    assert_eq!(computations.load(Ordering::SeqCst), 1);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 7);
}

#[test]
fn potential_entries_are_exempt_from_eviction() {
    let metrics = MetricsRegistry::new();
    let cache = SimResultCache::new(1, &metrics);
    let pot = ccr::profile::ReusePotential::default();
    cache
        .get_or_run_potential("pot|w|train|1", || Ok(pot))
        .unwrap();
    // Churn the sim side well past capacity.
    for i in 0..5 {
        cache
            .get_or_run(&format!("sim{i}"), || Ok(sim_of(i)))
            .unwrap();
    }
    assert!(cache.evictions() > 0, "sim churn must have evicted");
    // The potential entry survived every eviction.
    cache
        .get_or_run_potential("pot|w|train|1", || unreachable!("never evicted"))
        .unwrap();
    assert_eq!(cache.hits(), 1);
}

//! Parallel harness equivalence: running the full suite through a
//! multi-worker job pool must produce bit-identical simulated results
//! to a serial run — only host wall time may differ. This is the
//! cycle-invariance contract of `--jobs` / `CCR_JOBS`.
//!
//! Slow in debug builds (a full suite compile + two simulations per
//! benchmark, twice); run with `cargo test --release`.

use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::InputSet;

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn suite_stats_are_identical_across_job_counts() {
    let region = RegionConfig::paper();
    let machine = MachineConfig::paper();
    let crb = CrbConfig::paper();
    let serial = ccr_bench::run_suite(InputSet::Train, 1, &region, &machine, crb, 1);
    let parallel = ccr_bench::run_suite(InputSet::Train, 1, &region, &machine, crb, 4);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "suite order must be deterministic");
        assert_eq!(
            s.measurement.base.stats, p.measurement.base.stats,
            "{}: baseline stats diverged under parallel execution",
            s.name
        );
        assert_eq!(
            s.measurement.ccr.stats, p.measurement.ccr.stats,
            "{}: CCR stats diverged under parallel execution",
            s.name
        );
        assert_eq!(
            s.measurement.base.run.returned, p.measurement.base.run.returned,
            "{}: baseline architectural results diverged",
            s.name
        );
        assert_eq!(
            s.measurement.ccr.run.returned, p.measurement.ccr.run.returned,
            "{}: CCR architectural results diverged",
            s.name
        );
        // `wall_ms` is intentionally not compared: host timing is the
        // one field allowed to differ between job counts.
    }
}

/// A cheap always-on variant: one workload, jobs=1 vs jobs=2, so the
/// invariance contract is exercised in debug CI too.
#[test]
fn single_workload_stats_identical_across_job_counts() {
    let region = RegionConfig::paper();
    let machine = MachineConfig::paper();
    let crb = CrbConfig::paper();
    let serial =
        ccr_bench::run_benchmark("129.compress", InputSet::Train, 1, &region, &machine, crb);
    let parallel = ccr_bench::run_selected(
        &["129.compress"],
        InputSet::Train,
        1,
        &ccr::CompileConfig {
            region: ccr::regions::RegionConfig {
                trial_instances: crb.instances,
                ..region
            },
            emu: ccr_bench::emu_config(),
            ..ccr::CompileConfig::paper()
        },
        &machine,
        crb,
        ccr_bench::emu_config(),
        2,
    )
    .expect("suite workloads compile");
    assert_eq!(parallel.len(), 1);
    assert_eq!(
        serial.measurement.base.stats,
        parallel[0].measurement.base.stats
    );
    assert_eq!(
        serial.measurement.ccr.stats,
        parallel[0].measurement.ccr.stats
    );
}

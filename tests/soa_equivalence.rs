//! SoA CRB equivalence against the committed artifacts.
//!
//! The structure-of-arrays candidate banks (chunked fingerprint-lane
//! compare, contiguous-slice verify, batched ghost classification)
//! are host-speed optimizations under the PR-4 contract: simulated
//! statistics never move. Two checks pin that at full-suite scope:
//!
//! * a serial suite run must reproduce the committed
//!   `BENCH_ccr.json` numbers exactly — cycles, speedup, hit rate,
//!   region counts (only `wall_ms` and the host-throughput figures
//!   may differ);
//! * per workload, a CCR leg re-run with the buffer forced onto the
//!   scalar reference path (`set_batched_scan(false)`) must produce
//!   identical statistics, including the five-cause miss mix, and
//!   identical architectural results;
//! * the `ccr fingerprint` trajectory chains must be byte-identical
//!   to `tests/fixtures/fingerprint/chains.golden`.
//!
//! Slow in debug builds (full suite compiles plus three simulations
//! per benchmark); run with `cargo test --release`.

use std::process::Command;

use ccr::ir::CodeLayout;
use ccr::profile::Emulator;
use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig, Pipeline, ReuseBuffer, SimStats};
use ccr::workloads::InputSet;

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn suite_stats_match_committed_bench_and_scalar_reference_path() {
    let committed = ccr_analyze::BenchReport::from_json(
        &std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_ccr.json"))
            .expect("committed BENCH_ccr.json"),
    )
    .expect("committed BENCH parses");

    let machine = MachineConfig::paper();
    let crb = CrbConfig::paper();
    let runs = ccr_bench::run_suite(InputSet::Train, 1, &RegionConfig::paper(), &machine, crb, 1);

    assert_eq!(runs.len(), committed.workloads.len());
    for (run, wl) in runs.iter().zip(&committed.workloads) {
        assert_eq!(run.name, wl.name, "suite order must match the snapshot");
        let m = &run.measurement;
        assert_eq!(
            m.base.stats.cycles, wl.base_cycles,
            "{}: baseline cycles drifted from the committed snapshot",
            run.name
        );
        assert_eq!(
            m.ccr.stats.cycles, wl.ccr_cycles,
            "{}: CCR cycles drifted from the committed snapshot",
            run.name
        );
        assert_eq!(m.speedup(), wl.speedup, "{}: speedup drifted", run.name);
        let lookups = m.ccr.stats.reuse_hits + m.ccr.stats.reuse_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            m.ccr.stats.reuse_hits as f64 / lookups as f64
        };
        assert_eq!(hit_rate, wl.hit_rate, "{}: hit rate drifted", run.name);
        assert_eq!(
            run.compiled.regions.len() as u64,
            wl.regions,
            "{}: region count drifted",
            run.name
        );

        // Scalar reference path: identical statistics (including the
        // miss-cause mix, which BENCH does not carry) and identical
        // architectural results.
        let (scalar_stats, scalar_returned) = ccr_leg_scalar(run, &machine, crb);
        assert_eq!(
            scalar_stats, m.ccr.stats,
            "{}: batched scan changed simulated statistics",
            run.name
        );
        assert_eq!(
            scalar_returned, m.ccr.run.returned,
            "{}: batched scan changed architectural results",
            run.name
        );
    }
}

/// Re-runs one compiled workload's CCR leg with the reuse buffer
/// forced onto the scalar reference scan.
fn ccr_leg_scalar(
    run: &ccr_bench::SuiteRun,
    machine: &MachineConfig,
    crb: CrbConfig,
) -> (SimStats, Vec<ccr::ir::Value>) {
    let annotated = &run.compiled.annotated;
    let layout = CodeLayout::of(annotated);
    let mut pipeline = Pipeline::new(*machine, layout);
    let emulator = Emulator::with_config(annotated, ccr_bench::emu_config());
    let mut buffer = ReuseBuffer::new(crb);
    buffer.set_batched_scan(false);
    let out = emulator
        .run(&mut buffer, &mut pipeline)
        .expect("suite workload emulates");
    let mut stats = pipeline.into_stats();
    stats.crb = buffer.stats();
    (stats, out.returned)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn fingerprint_chains_match_committed_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/fingerprint/chains.golden"
    );
    let golden = std::fs::read_to_string(golden_path).expect("committed chains.golden");
    let names: Vec<&str> = golden
        .lines()
        .map(|l| l.split_whitespace().next().expect("golden line has a name"))
        .collect();
    assert!(!names.is_empty());

    let dir = std::env::temp_dir().join(format!("ccr-soa-fp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("fingerprint")
        .args(&names)
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("ccr fingerprint runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fresh = std::fs::read_to_string(dir.join("chains.txt")).expect("chains.txt written");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        fresh, golden,
        "trajectory fingerprint chains drifted from the committed golden"
    );
}

//! State-trajectory observability contracts: snapshot/replay
//! bit-identity and fingerprint divergence bisection.
//!
//! Three things are pinned here:
//!
//! 1. **Replay bit-identity**: for every built-in workload, saving a
//!    [`SimSession`] at mid-run as `{"snap_v":1}` JSONL text and
//!    resuming it produces exactly the simulated outcome — returned
//!    values, every statistic, the final fingerprint chain hash — of
//!    an uninterrupted run. Checked serially and under a 4-worker
//!    pool: parallelism is a host concern and must not move a bit.
//! 2. **Bisection precision**: a deterministically perturbed twin run
//!    (the `CCR_FP_PERTURB` hook in the `ccr fingerprint` command)
//!    diverges at an exactly known window, and `ccr fingerprint
//!    --compare` names that window and cycle and exits 2.
//! 3. **Preflight errors**: pointing the snapshot/fingerprint
//!    commands at missing, corrupt, or future-versioned files fails
//!    with exit 1 and one `error:` line — no usage dump, no panic.

use std::path::{Path, PathBuf};
use std::process::Command;

use ccr::profile::EmuConfig;
use ccr::sim::{parse_snapshot, write_snapshot, CrbConfig, MachineConfig, SimSession};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, CompileConfig};

const WINDOW: u64 = 20_000;

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 200_000_000,
        max_depth: 512,
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one workload cold, then again with a save/restore round trip
/// through serialized snapshot text at roughly the midpoint. Returns
/// `(cold, resumed)` pairs of the full simulated outcome and the
/// final fingerprint chain hash.
type Trajectory = (ccr::sim::SimOutcome, u64);

fn round_trip(name: &str) -> (Trajectory, Trajectory) {
    let program = build(name, InputSet::Train, 1).expect("built-in workload");
    let config = CompileConfig {
        emu: emu(),
        ..CompileConfig::paper()
    };
    let compiled = compile_ccr(&program, &program, &config).expect("compiles");
    let machine = MachineConfig::paper();
    let crb = CrbConfig::paper();

    let mut cold = SimSession::new(&compiled.annotated, &machine, Some(crb), emu(), WINDOW);
    cold.set_provenance(name, "test-config");
    cold.run_to_end().expect("cold run completes");
    let cold_hash = cold.final_hash().expect("finished run has a final hash");
    let midpoint = cold.cycles_so_far() / 2;
    let cold_view = (cold.into_outcome(), cold_hash);

    let mut first = SimSession::new(&compiled.annotated, &machine, Some(crb), emu(), WINDOW);
    first.set_provenance(name, "test-config");
    first.run_until_cycle(midpoint).expect("first half runs");
    assert!(!first.finished(), "{name}: midpoint must be mid-run");
    // Round-trip through the serialized text, not the in-memory
    // struct: the JSONL encoder/decoder is part of the contract.
    let text = write_snapshot(&first.snapshot().expect("snapshot mid-run"));
    let snap = parse_snapshot(name, &text).expect("snapshot text parses back");

    let mut resumed = SimSession::restore(&compiled.annotated, &machine, Some(crb), emu(), &snap)
        .expect("snapshot restores");
    resumed.run_to_end().expect("resumed run completes");
    let resumed_hash = resumed.final_hash().expect("finished run has a final hash");
    let resumed_view = (resumed.into_outcome(), resumed_hash);
    (cold_view, resumed_view)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn save_restore_is_bit_identical_for_every_workload_serial_and_parallel() {
    for jobs in [1, 4] {
        let results = ccr::parallel_map(&NAMES, jobs, |_, name| round_trip(name));
        for (name, (cold, resumed)) in NAMES.iter().zip(&results) {
            assert_eq!(
                cold.0.run, resumed.0.run,
                "{name}: architectural results must match (jobs={jobs})"
            );
            assert_eq!(
                cold.0.stats, resumed.0.stats,
                "{name}: every statistic must match (jobs={jobs})"
            );
            assert_eq!(
                cold.1, resumed.1,
                "{name}: final trajectory hash must match (jobs={jobs})"
            );
        }
    }
}

fn ccr_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccr"))
}

/// One `error:` line on stderr, exit 1, and no usage dump — the
/// preflight contract for operational mistakes.
fn assert_one_line_failure(output: &std::process::Output, what: &str) {
    assert_eq!(output.status.code(), Some(1), "{what}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.starts_with("error: "), "{what}: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{what}: {stderr}");
    assert!(!stderr.contains("usage:"), "{what}: {stderr}");
}

#[test]
fn cli_snapshot_save_restore_reproduces_the_cold_fingerprint() {
    let dir = temp_dir("ccr-snapshot-cli-test");
    let snap = dir.join("bitcount.snap.jsonl");

    // Cold fingerprint of the smoke workload at a window small enough
    // to seal several digests within its ~2.7k cycles.
    let cold = ccr_bin()
        .args(["fingerprint", "bitcount", "--window", "500"])
        .output()
        .unwrap();
    assert!(cold.status.success());
    let cold_stdout = String::from_utf8(cold.stdout).unwrap();
    let final_hash = cold_stdout
        .split("final ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("fingerprint output names the final hash")
        .to_string();
    assert_eq!(final_hash.len(), 16, "{cold_stdout}");

    let save = ccr_bin()
        .args([
            "snapshot",
            "save",
            "bitcount",
            "--at-cycle",
            "1000",
            "--window",
            "500",
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );
    assert!(snap.is_file());
    let save_stdout = String::from_utf8(save.stdout).unwrap();
    assert!(
        save_stdout.contains("workload   : bitcount:train@1"),
        "{save_stdout}"
    );

    let restore = ccr_bin()
        .args(["snapshot", "restore", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        restore.status.success(),
        "{}",
        String::from_utf8_lossy(&restore.stderr)
    );
    let restore_stdout = String::from_utf8(restore.stdout).unwrap();
    assert!(
        restore_stdout.contains(&final_hash),
        "resumed run must land on the cold trajectory hash {final_hash}:\n{restore_stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_compare_pins_the_exact_first_divergent_window() {
    let dir = temp_dir("ccr-bisect-cli-test");
    let run = |out: &Path, perturb: Option<&str>| {
        let mut cmd = ccr_bin();
        cmd.args([
            "fingerprint",
            "bitcount",
            "--window",
            "500",
            "--out",
            out.to_str().unwrap(),
        ]);
        match perturb {
            Some(n) => cmd.env("CCR_FP_PERTURB", n),
            None => cmd.env_remove("CCR_FP_PERTURB"),
        };
        let output = cmd.output().unwrap();
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run(&dir.join("a"), None);
    // The hook flips one CRB bit right after window 2 seals, so the
    // twin's chain first diverges at window 2 — boundary cycle
    // (2 + 1) * 500 = 1500.
    run(&dir.join("b"), Some("2"));

    let compare = ccr_bin()
        .args([
            "fingerprint",
            "--compare",
            dir.join("a/bitcount.fp.jsonl").to_str().unwrap(),
            dir.join("b/bitcount.fp.jsonl").to_str().unwrap(),
            "--out",
            dir.join("dump").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(compare.status.code(), Some(2), "divergence exits 2");
    let stdout = String::from_utf8(compare.stdout).unwrap();
    assert!(
        stdout.contains("divergence at window 2 (cycle 1500):"),
        "{stdout}"
    );
    // The un-perturbed side is what a clean local replay reproduces.
    assert!(stdout.contains("matches side A"), "{stdout}");
    assert!(
        dir.join("dump/bitcount.diverge.w2.snap.jsonl").is_file(),
        "pre-divergence snapshot dumped for inspection"
    );

    // Identical digests exit 0.
    let same = ccr_bin()
        .args([
            "fingerprint",
            "--compare",
            dir.join("a/bitcount.fp.jsonl").to_str().unwrap(),
            dir.join("a/bitcount.fp.jsonl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(same.status.success());
    assert!(
        String::from_utf8_lossy(&same.stdout).starts_with("identical:"),
        "identical digests report as identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_preflight_failures_are_one_line_each() {
    let dir = temp_dir("ccr-snapshot-preflight-test");

    let missing = ccr_bin()
        .args([
            "snapshot",
            "restore",
            dir.join("missing.snap.jsonl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_one_line_failure(&missing, "missing snapshot");

    let corrupt_path = dir.join("corrupt.snap.jsonl");
    std::fs::write(&corrupt_path, "not json\n").unwrap();
    let corrupt = ccr_bin()
        .args(["snapshot", "restore", corrupt_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_one_line_failure(&corrupt, "corrupt snapshot");

    let future_path = dir.join("future.snap.jsonl");
    std::fs::write(
        &future_path,
        "{\"snap_v\":99,\"workload\":\"bitcount:train@1\",\"config_hash\":\"x\",\"cycle\":1}\n",
    )
    .unwrap();
    let future = ccr_bin()
        .args(["snapshot", "restore", future_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_one_line_failure(&future, "future snap_v");
    assert!(
        String::from_utf8_lossy(&future.stderr).contains("unknown snap_v 99"),
        "names the unknown version"
    );

    let missing_digest = ccr_bin()
        .args([
            "fingerprint",
            "--compare",
            dir.join("missing.fp.jsonl").to_str().unwrap(),
            dir.join("missing.fp.jsonl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_one_line_failure(&missing_digest, "missing digest");

    let _ = std::fs::remove_dir_all(&dir);
}

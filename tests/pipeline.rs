//! End-to-end integration tests: the full compile → measure pipeline
//! over real benchmark programs, spanning every crate in the
//! workspace.

use ccr::profile::EmuConfig;
use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::{build, InputSet};
use ccr::{compile_ccr, measure, CompileConfig};

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 100_000_000,
        max_depth: 512,
    }
}

fn config() -> CompileConfig {
    CompileConfig {
        emu: emu(),
        ..CompileConfig::paper()
    }
}

/// The invariant behind the whole paper: adding the reuse hardware
/// never changes what the program computes, on any benchmark.
#[test]
fn reuse_preserves_results_across_the_suite() {
    // measure() itself asserts architectural equality of baseline and
    // CCR runs; this test exercises it on a cross-section of the
    // suite covering SL, MD, cyclic, and acyclic regions.
    for name in ["008.espresso", "124.m88ksim", "129.compress", "mpeg2enc"] {
        let p = build(name, InputSet::Train, 1).unwrap();
        let compiled = compile_ccr(&p, &p, &config()).unwrap();
        let m = measure(
            &compiled,
            &MachineConfig::paper(),
            CrbConfig::paper(),
            emu(),
        )
        .unwrap();
        assert_eq!(
            m.base.run.returned, m.ccr.run.returned,
            "{name}: reuse changed results"
        );
    }
}

/// The headline claim: the paper's best case shows a substantial
/// speedup, the worst case a small one, and the ordering holds.
#[test]
fn speedup_ordering_matches_the_paper() {
    let speedup_of = |name: &str| {
        let p = build(name, InputSet::Train, 1).unwrap();
        let compiled = compile_ccr(&p, &p, &config()).unwrap();
        measure(
            &compiled,
            &MachineConfig::paper(),
            CrbConfig::paper(),
            emu(),
        )
        .unwrap()
        .speedup()
    };
    let m88ksim = speedup_of("124.m88ksim");
    let go = speedup_of("099.go");
    assert!(m88ksim > 1.3, "m88ksim is the best case: {m88ksim:.3}");
    assert!(
        go < m88ksim,
        "go must trail m88ksim: {go:.3} vs {m88ksim:.3}"
    );
    assert!(go > 0.95, "reuse must not slow go down: {go:.3}");
}

/// Instances matter where the paper says they matter: pgpencode's
/// wide value set needs 16 computation instances.
#[test]
fn pgpencode_is_instance_sensitive() {
    let p = build("pgpencode", InputSet::Train, 1).unwrap();
    let speedup_at = |ci: usize| {
        let cfg = CompileConfig {
            region: RegionConfig {
                trial_instances: ci,
                ..RegionConfig::paper()
            },
            emu: emu(),
            ..CompileConfig::paper()
        };
        let compiled = compile_ccr(&p, &p, &cfg).unwrap();
        measure(
            &compiled,
            &MachineConfig::paper(),
            CrbConfig::with_instances(ci),
            emu(),
        )
        .unwrap()
        .speedup()
    };
    let s4 = speedup_at(4);
    let s16 = speedup_at(16);
    assert!(
        s16 > s4 + 0.05,
        "pgpencode must gain from instances: {s4:.3} -> {s16:.3}"
    );
}

/// Figure 11's generalization property: regions selected on the
/// training input still help on the reference input.
#[test]
fn training_regions_generalize_to_reference_input() {
    let train = build("130.li", InputSet::Train, 1).unwrap();
    let reference = build("130.li", InputSet::Ref, 1).unwrap();
    let compiled = compile_ccr(&train, &reference, &config()).unwrap();
    let m = measure(
        &compiled,
        &MachineConfig::paper(),
        CrbConfig::paper(),
        emu(),
    )
    .unwrap();
    assert!(
        m.speedup() > 1.05,
        "cross-input speedup: {:.3}",
        m.speedup()
    );
}

/// Block-level-only regions (prior work's granularity) must not beat
/// full region formation.
#[test]
fn region_granularity_dominates_block_level() {
    let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
    let run_with = |region: RegionConfig| {
        let cfg = CompileConfig {
            region,
            emu: emu(),
            ..CompileConfig::paper()
        };
        let compiled = compile_ccr(&p, &p, &cfg).unwrap();
        measure(
            &compiled,
            &MachineConfig::paper(),
            CrbConfig::paper(),
            emu(),
        )
        .unwrap()
        .speedup()
    };
    let full = run_with(RegionConfig::paper());
    let block = run_with(RegionConfig::block_level());
    assert!(
        full >= block,
        "full regions must dominate: {full:.3} vs {block:.3}"
    );
}

/// The compiled artifacts are internally consistent.
#[test]
fn compiled_workload_invariants() {
    let p = build("147.vortex", InputSet::Train, 1).unwrap();
    let compiled = compile_ccr(&p, &p, &config()).unwrap();
    ccr::ir::verify_program(&compiled.base).unwrap();
    ccr::ir::verify_program(&compiled.annotated).unwrap();
    for info in &compiled.regions {
        assert!(info.spec.input_count() <= 8, "paper's live-in limit");
        assert!(info.spec.live_outs.len() <= 8, "paper's live-out limit");
        assert!(info.spec.mem_count() <= 4, "paper's memory limit");
        assert!(!info.spec.live_outs.is_empty());
        if info.spec.mem_count() > 0 {
            // Memory-dependent regions over *written* objects carry
            // invalidation sites; never-written named objects need
            // none.
            let has_writer = info.spec.mem_objects.iter().any(|o| {
                compiled
                    .annotated
                    .iter_instrs()
                    .any(|(_, i)| i.is_store() && i.mem_object() == Some(*o))
            });
            assert_eq!(info.invalidation_sites > 0, has_writer);
        }
    }
}

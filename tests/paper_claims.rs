//! The reproduction's headline claims, pinned as executable tests:
//! if a change moves the suite outside these bands, the repository no
//! longer reproduces the paper and EXPERIMENTS.md must be revisited.
//!
//! Slow in debug builds (a full suite compile + two simulations per
//! benchmark); run with `cargo test --release`.

use ccr::profile::EmuConfig;
use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, measure, CompileConfig};

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 100_000_000,
        max_depth: 512,
    }
}

fn suite_speedups(crb: CrbConfig) -> Vec<(&'static str, f64)> {
    NAMES
        .iter()
        .map(|name| {
            let p = build(name, InputSet::Train, 1).unwrap();
            let config = CompileConfig {
                region: RegionConfig {
                    trial_instances: crb.instances,
                    ..RegionConfig::paper()
                },
                emu: emu(),
                ..CompileConfig::paper()
            };
            let compiled = compile_ccr(&p, &p, &config).unwrap();
            let m = measure(&compiled, &MachineConfig::paper(), crb, emu()).unwrap();
            (*name, m.speedup())
        })
        .collect()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn figure8_shape_holds() {
    let runs = suite_speedups(CrbConfig::paper());
    let avg: f64 = runs.iter().map(|(_, s)| s).sum::<f64>() / runs.len() as f64;

    // Paper: average ≈ 1.25 at 128 entries × 8 instances. Band allows
    // recalibration drift but not a broken reproduction.
    assert!(
        (1.15..=1.40).contains(&avg),
        "suite average left the paper band: {avg:.3} ({runs:?})"
    );

    let get = |n: &str| runs.iter().find(|(name, _)| *name == n).unwrap().1;
    // No benchmark slows down.
    for (name, s) in &runs {
        assert!(*s >= 0.99, "{name} slowed down: {s:.3}");
    }
    // The paper's best case stays on top...
    let m88ksim = get("124.m88ksim");
    assert!(
        m88ksim >= avg,
        "m88ksim must beat the average: {m88ksim:.3} vs {avg:.3}"
    );
    // ...and go stays in the bottom third.
    let mut sorted: Vec<f64> = runs.iter().map(|(_, s)| *s).collect();
    sorted.sort_by(f64::total_cmp);
    let go = get("099.go");
    assert!(
        go <= sorted[runs.len() / 3],
        "go must stay near the bottom: {go:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn figure4_shape_holds() {
    // Region potential dominates block potential on every benchmark
    // (the paper's central motivation).
    let mut region_sum = 0.0;
    let mut block_sum = 0.0;
    for name in NAMES {
        let p = build(name, InputSet::Train, 1).unwrap();
        let pot = ccr::measure::reuse_potential(&p, emu()).unwrap();
        assert!(
            pot.region_ratio() >= pot.block_ratio() - 1e-9,
            "{name}: region {} < block {}",
            pot.region_ratio(),
            pot.block_ratio()
        );
        region_sum += pot.region_ratio();
        block_sum += pot.block_ratio();
    }
    let n = NAMES.len() as f64;
    assert!(
        region_sum / n > 1.15 * (block_sum / n),
        "region potential must clearly exceed block potential: {:.3} vs {:.3}",
        region_sum / n,
        block_sum / n
    );
}

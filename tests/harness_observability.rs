//! Harness observability contracts.
//!
//! Three things are pinned here:
//!
//! 1. **Bit-identity**: running an experiment with the harness live —
//!    monitor thread sampling, progress rendering, harness.jsonl
//!    sink — produces exactly the same simulated statistics and
//!    rendered tables as running with the harness disabled. The
//!    harness only reads clocks, bumps atomics, and writes to stderr
//!    and its own file; stdout and every committed artifact stay
//!    byte-stable. Checked both in-process (tiny spec, always on) and
//!    through the actual `ccr` binary against the committed fig4
//!    table (release-gated, like the other full-figure tests).
//! 2. **Schema**: every harness.jsonl line starts with the literal
//!    `{"harness_v":1,` version tag, parses as one JSON object, and
//!    each event type carries a fixed key set — pinned by the golden
//!    at `tests/fixtures/harness/schema.golden`. Values (wall times,
//!    counters) are host-dependent and deliberately not pinned; the
//!    key sets are the compatibility contract downstream readers
//!    depend on. Refresh after an intentional schema change with:
//!
//!    ```text
//!    CCR_UPDATE_GOLDEN=1 cargo test --release --test harness_observability
//!    ```
//! 3. **Summary accounting**: the `harness_summary` event and the
//!    returned [`ccr::HarnessSummary`] agree with the work actually
//!    done (compiles, sims, cache traffic, utilization in (0, 100]).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::Command;

use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::InputSet;
use ccr_bench::exp;

static TINY_WORKLOADS: [&str; 2] = ["bitcount", "lex"];

fn tiny_render(res: &exp::SpecResults<'_>) -> exp::Rendered {
    let mut text = String::new();
    for (i, _) in TINY_WORKLOADS.iter().enumerate() {
        let run = &res.runs(0)[i];
        text.push_str(&format!(
            "{} {} {} {:.6}\n",
            TINY_WORKLOADS[i],
            run.measurement.base.stats.cycles,
            run.measurement.ccr.stats.cycles,
            run.measurement.speedup()
        ));
    }
    exp::Rendered {
        text,
        tables: Vec::new(),
    }
}

fn tiny_spec(name: &'static str) -> exp::ExperimentSpec {
    exp::ExperimentSpec {
        name,
        output: name,
        title: "harness observability test spec",
        workloads: &TINY_WORKLOADS,
        scenarios: vec![exp::Scenario::new(
            "paper",
            InputSet::Train,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        )],
        potential: false,
        render: tiny_render,
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn live_harness(out: &Path) -> ccr::Harness {
    let opts = ccr::HarnessOptions {
        progress: ccr::ProgressMode::Off,
        out: Some(out.to_path_buf()),
        // Sample fast so even a quick tiny-spec run sees the monitor
        // thread fire mid-flight, not just the final sample.
        period_ms: 5,
    };
    ccr::Harness::start(&opts).unwrap()
}

#[test]
fn tiny_exp_is_bit_identical_with_the_harness_live() {
    let spec = tiny_spec("tiny_harness");
    let plan = exp::plan(&[&spec]);

    let plain = exp::execute(&plan, 2).expect("tiny workloads run within limits");
    let dir = temp_dir("ccr-harness-identity-test");
    let harness = live_harness(&dir.join("harness.jsonl"));
    let observed = exp::execute_observed(&plan, 2, &harness).expect("observed run succeeds");
    let summary = harness.finish().expect("live harness yields a summary");

    // The rendered text embeds base/CCR cycle counts and the speedup:
    // identical strings mean identical simulated statistics.
    assert_eq!(
        plain.results(&spec).render().text,
        observed.results(&spec).render().text,
        "observation must not perturb a single simulated cycle"
    );
    // Point summaries carry the full per-point statistics; compare
    // every simulated field (wall_ms is host time and may wobble).
    let sim_view = |points: &[exp::PointSummary]| -> Vec<String> {
        points
            .iter()
            .map(|p| {
                format!(
                    "{} {} {} {} {} {} {:.12} {:.12} {:?} {}",
                    p.workload,
                    p.input,
                    p.scale,
                    p.config_hash,
                    p.base_cycles,
                    p.ccr_cycles,
                    p.speedup,
                    p.hit_rate,
                    p.miss_causes,
                    p.regions
                )
            })
            .collect()
    };
    assert_eq!(
        sim_view(&plain.point_summaries()),
        sim_view(&observed.point_summaries()),
    );

    // The summary reflects the plan: one compile and two sims per
    // workload, every cache access a cold miss on a fresh cache.
    assert_eq!(summary.compiles, TINY_WORKLOADS.len() as u64);
    assert_eq!(summary.sims, 2 * TINY_WORKLOADS.len() as u64);
    assert!(summary.sim_cycles > 0, "sims must report their cycles");
    assert_eq!(summary.cache_hits + summary.cache_misses, 2);
    assert!(
        summary.utilization_pct > 0.0 && summary.utilization_pct <= 100.0,
        "utilization {} out of range",
        summary.utilization_pct
    );
    assert!(!summary.stragglers.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn harness_jsonl_schema_matches_the_committed_golden() {
    let spec = tiny_spec("tiny_schema");
    let plan = exp::plan(&[&spec]);
    let dir = temp_dir("ccr-harness-schema-test");
    let out = dir.join("harness.jsonl");
    let harness = live_harness(&out);
    exp::execute_observed(&plan, 2, &harness).expect("observed run succeeds");
    // The snapshot / fingerprint events cross the host boundary from
    // `ccr run --save-snapshot` and `ccr fingerprint`, not from a
    // plain experiment; emit one of each here so the golden pins
    // their key sets alongside the organically-produced events.
    harness.snapshot("save", "bitcount", 65_536, "runs/bitcount.snap.jsonl");
    harness.fingerprint("bitcount", 2, 150_000, "0123456789abcdef");
    // Likewise the service-session events from `ccr serve`.
    harness.request_start(1, "submit", "fig4");
    harness.request_finish(1, "done", 42, 7);
    harness.result_cache(3, 4, 0);
    harness.finish().expect("live harness yields a summary");

    let text = std::fs::read_to_string(&out).unwrap();
    // Per event type, the union of keys seen across all lines of that
    // type. Counts and values are host-dependent; key sets are not.
    let mut schema: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut events = Vec::new();
    for line in text.lines() {
        assert!(
            line.starts_with("{\"harness_v\":1,"),
            "every line must lead with the version tag: {line}"
        );
        let value = ccr_analyze::value::parse(line)
            .unwrap_or_else(|e| panic!("unparsable harness line: {e:?}\n{line}"));
        let obj = value.as_obj().expect("every line is one JSON object");
        assert_eq!(value.u64_field("harness_v"), 1);
        let ev = value.str_field("ev").to_string();
        assert!(!ev.is_empty(), "{line}");
        schema
            .entry(ev.clone())
            .or_default()
            .extend(obj.keys().cloned());
        events.push(ev);
    }

    // Lifecycle ordering: plan first, summary last, exactly once each.
    assert_eq!(events.first().map(String::as_str), Some("plan"));
    assert_eq!(events.last().map(String::as_str), Some("harness_summary"));
    assert_eq!(events.iter().filter(|e| *e == "plan").count(), 1);
    assert!(
        events.iter().any(|e| e == "monitor"),
        "monitor thread sampled"
    );

    let mut rendered = String::new();
    for (ev, keys) in &schema {
        rendered.push_str(ev);
        rendered.push(':');
        rendered.push(' ');
        rendered.push_str(&keys.iter().cloned().collect::<Vec<_>>().join(","));
        rendered.push('\n');
    }

    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/harness/schema.golden");
    if std::env::var_os("CCR_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &rendered).unwrap();
    } else {
        let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "{}: {e} (run with CCR_UPDATE_GOLDEN=1 to create)",
                golden.display()
            )
        });
        assert!(
            expected == rendered,
            "harness.jsonl schema drifted from the committed golden.\n\
             If the change is intentional (additive fields need no\n\
             version bump; removals and renames do), refresh with:\n\
             CCR_UPDATE_GOLDEN=1 cargo test --release --test harness_observability\n\
             --- expected ---\n{expected}\n--- actual ---\n{rendered}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds; run with --release")]
fn cli_fig4_with_progress_and_monitor_matches_the_committed_table() {
    let dir = temp_dir("ccr-harness-fig4-test");
    let jsonl = dir.join("harness.jsonl");
    let out_dir = dir.join("out");
    let output = Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args([
            "exp",
            "fig4",
            "--progress=json",
            "--harness-out",
            jsonl.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--no-store",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The decorated run regenerates the committed artifact exactly.
    let table = std::fs::read_to_string(out_dir.join("fig4_potential.txt")).unwrap();
    assert_eq!(
        table,
        include_str!("../results/fig4_potential.txt"),
        "a live harness must not change a committed artifact by one byte"
    );
    // All decoration goes to stderr and the sink file; stdout carries
    // only what an undecorated run prints.
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(
        !stdout.contains("harness") && !stdout.contains("progress"),
        "stdout must stay clean: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("harness:"), "summary on stderr: {stderr}");
    assert!(stderr.contains("compile cache:"), "{stderr}");

    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(text.lines().count() > 0);
    for line in text.lines() {
        assert!(line.starts_with("{\"harness_v\":1,"), "{line}");
    }
    assert!(text.contains("\"ev\":\"plan\""));
    assert!(text.contains("\"ev\":\"harness_summary\""));

    let _ = std::fs::remove_dir_all(&dir);
}

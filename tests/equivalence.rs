//! Property tests for the framework's central theorem: *computation
//! reuse never changes architectural results*. Random programs are
//! pushed through the full pipeline (optimize → profile → form →
//! annotate) and executed against real reuse buffers of random
//! geometry; outputs must match plain execution exactly.

use ccr::ir::{BinKind, CmpPred, ObjectKind, Operand, Program, ProgramBuilder, Value};
use ccr::profile::{EmuConfig, Emulator, NullCrb, NullSink};
use ccr::regions::RegionConfig;
use ccr::sim::{CrbConfig, Replacement, ReuseBuffer};
use ccr::{compile_ccr, CompileConfig};
use proptest::prelude::*;

/// A generated program shape.
#[derive(Debug, Clone)]
struct ProgSpec {
    pool: Vec<i64>,
    ops: Vec<(u8, u8, u8)>,
    trips: i64,
    branch_at: Option<u8>,
    store_period: u8,
}

fn prog_spec() -> impl Strategy<Value = ProgSpec> {
    (
        prop::collection::vec(-1000i64..1000, 1..6),
        prop::collection::vec((0u8..10, 0u8..8, 0u8..8), 1..12),
        1i64..60,
        prop::option::of(0u8..12),
        0u8..4,
    )
        .prop_map(|(pool, ops, trips, branch_at, store_period)| ProgSpec {
            pool,
            ops,
            trips,
            branch_at,
            store_period,
        })
}

const KINDS: [BinKind; 10] = [
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::And,
    BinKind::Or,
    BinKind::Xor,
    BinKind::Shl,
    BinKind::Sar,
    BinKind::Min,
    BinKind::Max,
];

/// Materializes a spec into a verified program: a driver loop over a
/// (writable) pooled table, a random straight-line kernel, an
/// optional data-dependent branch, and optional periodic stores that
/// exercise the invalidation machinery.
fn build_program(spec: &ProgSpec) -> Program {
    let mut pb = ProgramBuilder::new();
    let n = spec.pool.len().next_power_of_two().max(8);
    let init: Vec<Value> = (0..n)
        .map(|k| Value::from_int(spec.pool[k % spec.pool.len()]))
        .collect();
    let table = pb.object_with("data", ObjectKind::Named, n, init);
    let mut f = pb.function("main", 0, 2);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let idx = f.and(i, n as i64 - 1);
    let v = f.load(table, idx);
    // Random kernel over a growing register window.
    let mut window = vec![v, acc];
    let mut last = v;
    for &(kind, s1, s2) in &spec.ops {
        let a = window[s1 as usize % window.len()];
        let b = window[s2 as usize % window.len()];
        last = f.bin(KINDS[kind as usize % KINDS.len()], a, b);
        window.push(last);
    }
    // Optional data-dependent diamond.
    if let Some(pivot) = spec.branch_at {
        let t = f.block();
        let e = f.block();
        let j = f.block();
        let out = f.fresh();
        let key = window[pivot as usize % window.len()];
        f.br(CmpPred::Lt, key, 0, t, e);
        f.switch_to(t);
        f.bin_into(BinKind::Add, out, last, 7);
        f.jump(j);
        f.switch_to(e);
        f.bin_into(BinKind::Xor, out, last, 13);
        f.jump(j);
        f.switch_to(j);
        last = out;
    }
    f.bin_into(BinKind::Add, acc, acc, last);
    // Optional periodic store back into the loaded table: changes
    // values mid-run and must invalidate any memory-dependent reuse.
    if spec.store_period > 0 {
        let st = f.block();
        let merge = f.block();
        let mask = (1i64 << (spec.store_period + 2)) - 1;
        let ph = f.and(i, mask);
        f.br(CmpPred::Eq, ph, mask, st, merge);
        f.switch_to(st);
        f.store(table, idx, acc);
        f.jump(merge);
        f.switch_to(merge);
    }
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, spec.trips, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc), Operand::Reg(last)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    let p = pb.finish();
    ccr::ir::verify_program(&p).expect("generator produces valid programs");
    p
}

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 2_000_000,
        max_depth: 64,
    }
}

/// Region formation made maximally eager, so even tiny generated
/// kernels get annotated and the reuse machinery is actually
/// exercised.
fn eager_config() -> CompileConfig {
    CompileConfig {
        region: RegionConfig {
            min_region_instrs: 2,
            min_seed_exec: 2,
            min_predicted_hit: 0.0,
            r_threshold: 0.10,
            rm_threshold: 0.10,
            cyclic_reuse_min: 0.0,
            cyclic_multi_iter_min: 0.0,
            ..RegionConfig::paper()
        },
        emu: emu(),
        ..CompileConfig::paper()
    }
}

fn run_plain(p: &Program) -> Vec<i64> {
    Emulator::with_config(p, emu())
        .run(&mut NullCrb, &mut NullSink)
        .unwrap()
        .returned
        .iter()
        .map(|v| v.as_int())
        .collect()
}

/// Like [`eager_config`] but with the paper's selectivity: regions
/// exclude varying computation, so generated kernels actually *hit*.
fn selective_config() -> CompileConfig {
    CompileConfig {
        region: RegionConfig {
            min_region_instrs: 2,
            min_seed_exec: 2,
            min_predicted_hit: 0.0,
            ..RegionConfig::paper()
        },
        emu: emu(),
        ..CompileConfig::paper()
    }
}

/// Guard against vacuity: a representative generated program forms
/// regions that genuinely hit, so the properties below exercise the
/// reuse-commit path and not just memoization bookkeeping.
#[test]
fn generated_kernels_actually_reuse() {
    let spec = ProgSpec {
        pool: vec![3, -7, 250],
        ops: vec![(0, 0, 0), (2, 2, 0), (5, 3, 0), (6, 4, 2), (8, 5, 5)],
        trips: 50,
        branch_at: Some(3),
        store_period: 0,
    };
    let p = build_program(&spec);
    let compiled = compile_ccr(&p, &p, &selective_config()).unwrap();
    assert!(
        !compiled.regions.is_empty(),
        "selective formation must annotate the generated kernel"
    );
    let out = Emulator::with_config(&compiled.annotated, emu())
        .run(&mut ReuseBuffer::new(CrbConfig::paper()), &mut NullSink)
        .unwrap();
    assert!(out.reuse_hits > 0, "the kernel must actually reuse");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized code computes what the original computed.
    #[test]
    fn optimizer_preserves_semantics(spec in prog_spec()) {
        let p = build_program(&spec);
        let expect = run_plain(&p);
        let mut opt = p.clone();
        ccr::opt::optimize(&mut opt, ccr::opt::OptConfig::default());
        ccr::ir::verify_program(&opt).unwrap();
        prop_assert_eq!(run_plain(&opt), expect);
    }

    /// Reuse through a real buffer (random geometry, every
    /// replacement policy) computes what plain execution computes.
    #[test]
    fn reuse_is_architecturally_invisible(
        spec in prog_spec(),
        entries in 1usize..5,
        instances in 1usize..5,
        policy in 0u8..3,
    ) {
        let p = build_program(&spec);
        let compiled = compile_ccr(&p, &p, &eager_config()).unwrap();
        let expect = run_plain(&compiled.base);
        let mut buffer = ReuseBuffer::new(CrbConfig {
            entries,
            instances,
            input_bank: 8,
            output_bank: 8,
            replacement: match policy {
                0 => Replacement::Lru,
                1 => Replacement::Fifo,
                _ => Replacement::Random,
            },
            nonuniform: None,
        });
        let out = Emulator::with_config(&compiled.annotated, emu())
            .run(&mut buffer, &mut NullSink)
            .unwrap();
        let got: Vec<i64> = out.returned.iter().map(|v| v.as_int()).collect();
        prop_assert_eq!(got, expect);
    }

    /// Hit-heavy coverage: under the paper's selective thresholds,
    /// regions exclude varying inputs and mostly hit; results still
    /// match exactly.
    #[test]
    fn selective_reuse_is_architecturally_invisible(spec in prog_spec()) {
        let p = build_program(&spec);
        let compiled = compile_ccr(&p, &p, &selective_config()).unwrap();
        let expect = run_plain(&compiled.base);
        let mut buffer = ReuseBuffer::new(CrbConfig::paper());
        let out = Emulator::with_config(&compiled.annotated, emu())
            .run(&mut buffer, &mut NullSink)
            .unwrap();
        let got: Vec<i64> = out.returned.iter().map(|v| v.as_int()).collect();
        prop_assert_eq!(got, expect);
    }

    /// The annotated program also matches under a buffer that never
    /// hits (all-miss path, memoization-mode bookkeeping only).
    #[test]
    fn all_miss_execution_matches(spec in prog_spec()) {
        let p = build_program(&spec);
        let compiled = compile_ccr(&p, &p, &eager_config()).unwrap();
        let expect = run_plain(&compiled.base);
        prop_assert_eq!(run_plain(&compiled.annotated), expect);
    }
}

//! `ccr serve` wire-protocol contracts.
//!
//! Each test runs a real server in-process — listener thread,
//! executor threads, shared engine — over a Unix socket in a temp
//! directory, and talks to it through `ccr::serve::Client` (the same
//! code `ccr submit` uses). Pinned here:
//!
//! * the submit / status / results / shutdown round-trip, with served
//!   text byte-identical across repeated submissions,
//! * one-line `ok:false` error replies for malformed lines, unknown
//!   versions, ops, fields, and workloads — never a dropped
//!   connection,
//! * the bounded submit queue,
//! * cross-request dedup with pinned cache counts, and the session
//!   summary (throughput, store records) a drained server reports.

#![cfg(unix)]

use std::path::PathBuf;

use ccr::serve::{self, Bind, ServeOptions};
use ccr::workloads::InputSet;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    bind: Bind,
    handle: Option<std::thread::JoinHandle<Result<serve::ServeSummary, String>>>,
}

impl Server {
    /// Starts a server on a fresh socket under `dir` and waits until
    /// it accepts connections.
    fn start(
        dir: &std::path::Path,
        queue: usize,
        executors: usize,
        store: Option<PathBuf>,
    ) -> Server {
        let socket = dir.join("ccr.sock");
        let bind = Bind::Unix(socket.clone());
        let opts = ServeOptions {
            bind: bind.clone(),
            queue,
            jobs: 2,
            executors,
            harness_out: Some(dir.join("serve.jsonl")),
            store,
            timestamp: 1_700_000_000,
            commit: "f".repeat(40),
        };
        let handle = std::thread::spawn(move || serve::run(&opts));
        for _ in 0..500 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        Server {
            bind,
            handle: Some(handle),
        }
    }

    fn client(&self) -> serve::Client {
        serve::Client::connect(&self.bind).expect("server is accepting")
    }

    /// Shuts the server down and returns its session summary.
    fn stop(mut self) -> serve::ServeSummary {
        self.client().shutdown().expect("shutdown acknowledged");
        self.handle
            .take()
            .unwrap()
            .join()
            .expect("server thread")
            .expect("clean shutdown")
    }
}

#[test]
fn submit_roundtrip_and_repeat_is_served_from_the_result_cache() {
    let dir = temp_dir("ccr-serve-roundtrip-test");
    let store = dir.join("store.jsonl");
    let server = Server::start(&dir, 8, 2, Some(store.clone()));

    let mut client = server.client();
    let request = serve::submit_point_request("lex", InputSet::Train, 1, 128, 8);
    let first = client.submit_and_wait(&request).expect("lex runs");
    assert_eq!(first.points, 1);
    assert!(first.text.starts_with("lex base "), "{}", first.text);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.cache_misses, 2, "one base + one ccr sim");

    // The identical submission again: byte-identical text, every
    // lookup a hit, nothing recomputed.
    let again = client.submit_and_wait(&request).expect("repeat runs");
    assert_eq!(again.text, first.text);
    assert_eq!(again.cache_hits, 2);
    assert_eq!(again.cache_misses, 2);

    let summary = server.stop();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.points, 2);
    assert!(summary.points_per_sec > 0.0);
    assert_eq!(summary.result_cache_hits, 2);
    assert_eq!(summary.result_cache_misses, 2);
    assert_eq!(summary.compile_cache_hits, 1);
    assert_eq!(summary.compile_cache_misses, 1);
    assert_eq!(summary.stored_records, 2);

    // The store got both records, stamped with the session throughput.
    let loaded = ccr_analyze::RunStore::load(&store).unwrap();
    assert_eq!(loaded.skipped_lines, 0);
    assert_eq!(loaded.records.len(), 2);
    for rec in &loaded.records {
        assert_eq!(rec.source, "serve");
        assert_eq!(rec.workload, "lex");
        assert!((rec.points_per_sec - summary.points_per_sec).abs() < 1e-9);
    }

    // The session event log recorded the request lifecycle.
    let events = std::fs::read_to_string(dir.join("serve.jsonl")).unwrap();
    assert!(events.contains("\"ev\":\"request_start\""), "{events}");
    assert!(events.contains("\"ev\":\"request_finish\""), "{events}");
    assert!(events.contains("\"ev\":\"result_cache\""), "{events}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_one_line_replies_not_dropped_connections() {
    let dir = temp_dir("ccr-serve-errors-test");
    let server = Server::start(&dir, 8, 2, None);
    let mut client = server.client();

    let cases: &[(&str, &str)] = &[
        ("not json at all", "unparseable request line"),
        (
            r#"{"req_v":9,"op":"submit","exp":"fig4"}"#,
            "unknown req_v 9",
        ),
        (r#"{"req_v":1,"op":"dance"}"#, "unknown op `dance`"),
        (
            r#"{"req_v":1,"op":"submit","exp":"fig4","color":"red"}"#,
            "unknown field `color` for op `submit`",
        ),
        (
            r#"{"req_v":1,"op":"submit","workload":"no-such-benchmark"}"#,
            "unknown workload `no-such-benchmark`",
        ),
        (
            r#"{"req_v":1,"op":"submit","exp":"no-such-experiment"}"#,
            "unknown experiment `no-such-experiment`",
        ),
        (
            r#"{"req_v":1,"op":"submit"}"#,
            "submit needs an `exp` or `workload` field",
        ),
        (
            r#"{"req_v":1,"op":"results","id":424242}"#,
            "unknown request id 424242",
        ),
    ];
    for (request, expected) in cases {
        let err = client.roundtrip(request).unwrap_err();
        assert!(
            err.contains(expected),
            "request {request}: got `{err}`, wanted `{expected}`"
        );
    }
    // The connection survived every error: a well-formed request on
    // the same connection still works.
    let reply = client
        .roundtrip(r#"{"req_v":1,"op":"submit","workload":"lex"}"#)
        .expect("connection still usable");
    assert_eq!(
        reply
            .get("state")
            .and_then(ccr::telemetry::value::Value::as_str),
        Some("queued")
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_queue_is_bounded() {
    let dir = temp_dir("ccr-serve-queue-test");
    let server = Server::start(&dir, 1, 1, None);
    let mut client = server.client();

    // Fill the single executor-visible pipeline: submit A and wait
    // until an executor has dequeued it (state `running` or beyond),
    // so the queue is observably empty again.
    let slow = serve::submit_point_request("yacc", InputSet::Train, 1, 128, 8);
    let reply = client.roundtrip(&slow).expect("first submit queued");
    let id = reply.u64_field("id");
    let status = {
        let mut w = ccr::telemetry::JsonWriter::new();
        w.obj_begin();
        w.key("req_v").u64_val(1);
        w.key("op").str_val("status");
        w.key("id").u64_val(id);
        w.obj_end();
        w.finish()
    };
    loop {
        let reply = client.roundtrip(&status).expect("status works");
        if reply.str_field("state") != "queued" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // B occupies the queue's single slot; C must be refused.
    client
        .roundtrip(&serve::submit_point_request(
            "lex",
            InputSet::Train,
            1,
            128,
            8,
        ))
        .expect("second submit fits the queue");
    let err = client
        .roundtrip(&serve::submit_point_request(
            "mpeg2enc",
            InputSet::Train,
            1,
            128,
            8,
        ))
        .unwrap_err();
    assert!(err.contains("queue full (1 request(s) pending)"), "{err}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_dedup_shared_points_with_pinned_counts() {
    let dir = temp_dir("ccr-serve-dedup-test");
    let server = Server::start(&dir, 8, 2, None);

    // Two clients submit the identical point at the same time; the
    // two executors run them concurrently against one engine. The
    // single-flight caches pin the totals: one compile and two sims
    // run once each, the losing request counts pure hits.
    let request = serve::submit_point_request("lex", InputSet::Train, 1, 128, 8);
    let texts: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let request = &request;
                let server = &server;
                scope.spawn(move || {
                    server
                        .client()
                        .submit_and_wait(request)
                        .expect("request completes")
                        .text
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(texts[0], texts[1], "both clients see identical results");

    let summary = server.stop();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.compile_cache_hits, 1);
    assert_eq!(summary.compile_cache_misses, 1);
    assert_eq!(summary.result_cache_hits, 2);
    assert_eq!(summary.result_cache_misses, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_is_drained_before_shutdown_completes() {
    let dir = temp_dir("ccr-serve-drain-test");
    let server = Server::start(&dir, 8, 2, None);

    // Submit without waiting, then immediately ask for shutdown: the
    // server must finish the queued request before exiting.
    let mut client = server.client();
    client
        .roundtrip(&serve::submit_point_request(
            "lex",
            InputSet::Train,
            1,
            128,
            8,
        ))
        .expect("submit queued");
    let summary = server.stop();
    assert_eq!(summary.requests, 1, "queued work drained before exit");
    assert_eq!(summary.points, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

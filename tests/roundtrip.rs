//! Textual-IR round-trip over the full benchmark suite: printing and
//! re-parsing any program — including fully annotated ones with
//! `reuse`/`invalidate` instructions and extension marks — must
//! reproduce the exact same text and the exact same behaviour.

use ccr::ir::parse_program;
use ccr::profile::{EmuConfig, Emulator, NullCrb, NullSink};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, CompileConfig};

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 50_000_000,
        max_depth: 256,
    }
}

fn run(p: &ccr::ir::Program) -> Vec<i64> {
    Emulator::with_config(p, emu())
        .run(&mut NullCrb, &mut NullSink)
        .unwrap()
        .returned
        .iter()
        .map(|v| v.as_int())
        .collect()
}

#[test]
fn every_benchmark_round_trips_textually() {
    for name in NAMES {
        let p = build(name, InputSet::Train, 1).unwrap();
        let text = p.to_string();
        let q = parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(q.to_string(), text, "{name}: reprint differs");
        ccr::ir::verify_program(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn parsed_programs_behave_identically() {
    for name in ["008.espresso", "124.m88ksim", "lex"] {
        let p = build(name, InputSet::Train, 1).unwrap();
        let q = parse_program(&p.to_string()).unwrap();
        assert_eq!(run(&p), run(&q), "{name}");
    }
}

#[test]
fn annotated_programs_round_trip() {
    // Annotated programs exercise the reuse/invalidate syntax and the
    // extension comments.
    let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
    let config = CompileConfig {
        emu: emu(),
        ..CompileConfig::paper()
    };
    let compiled = compile_ccr(&p, &p, &config).unwrap();
    let text = compiled.annotated.to_string();
    assert!(text.contains("reuse rcr"), "fixture lost its annotations");
    assert!(text.contains("ext:"), "fixture lost its extensions");
    let q = parse_program(&text).unwrap();
    assert_eq!(q.to_string(), text);
    ccr::ir::verify_program(&q).unwrap();
    assert_eq!(run(&compiled.annotated), run(&q));
}

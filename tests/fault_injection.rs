//! Failure-injection tests: the framework's safety nets must actually
//! catch misbehaving reuse hardware. A faulty buffer that corrupts
//! output banks, fabricates hits, or resurrects invalidated memory
//! state must produce observably wrong results (caught by the
//! architectural-equality check) — these tests pin down that the
//! checks are not vacuous.

use ccr::ir::{Reg, RegionId, Value};
use ccr::profile::{
    CrbModel, EmuConfig, Emulator, NullCrb, NullSink, RecordedInstance, ReuseLookup,
};
use ccr::sim::{CrbConfig, ReuseBuffer};
use ccr::workloads::{build, InputSet};
use ccr::{compile_ccr, CompileConfig};

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 50_000_000,
        max_depth: 256,
    }
}

fn compiled_m88ksim() -> ccr::compile::CompiledWorkload {
    let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
    compile_ccr(
        &p,
        &p,
        &CompileConfig {
            emu: emu(),
            ..CompileConfig::paper()
        },
    )
    .unwrap()
}

fn run_with(crb: &mut dyn CrbModel, p: &ccr::ir::Program) -> Vec<i64> {
    Emulator::with_config(p, emu())
        .run(crb, &mut NullSink)
        .unwrap()
        .returned
        .iter()
        .map(|v| v.as_int())
        .collect()
}

/// Wraps a real buffer but flips a bit in every hit's first output.
struct OutputCorruptor(ReuseBuffer);

impl CrbModel for OutputCorruptor {
    fn lookup(
        &mut self,
        region: RegionId,
        read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup> {
        let mut hit = self.0.lookup(region, read_reg)?;
        if let Some((_, v)) = hit.outputs.first_mut() {
            *v = Value::from_int(v.as_int() ^ 1);
        }
        Some(hit)
    }
    fn record(&mut self, region: RegionId, instance: RecordedInstance) {
        self.0.record(region, instance);
    }
    fn invalidate(&mut self, region: RegionId) {
        self.0.invalidate(region);
    }
}

/// Drops every invalidation: stale memory-dependent instances live on.
struct InvalidationDropper(ReuseBuffer);

impl CrbModel for InvalidationDropper {
    fn lookup(
        &mut self,
        region: RegionId,
        read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup> {
        self.0.lookup(region, read_reg)
    }
    fn record(&mut self, region: RegionId, instance: RecordedInstance) {
        self.0.record(region, instance);
    }
    fn invalidate(&mut self, _region: RegionId) {
        // Dropped: the hardware "forgets" to invalidate.
    }
}

#[test]
fn corrupted_outputs_change_architectural_results() {
    let cw = compiled_m88ksim();
    let expect = run_with(&mut NullCrb, &cw.base);
    let mut faulty = OutputCorruptor(ReuseBuffer::new(CrbConfig::paper()));
    let got = run_with(&mut faulty, &cw.annotated);
    assert_ne!(
        got, expect,
        "output corruption must be architecturally visible (otherwise the \
         equality safety net is vacuous)"
    );
    // And the honest buffer passes, on the same inputs.
    let mut honest = ReuseBuffer::new(CrbConfig::paper());
    assert_eq!(run_with(&mut honest, &cw.annotated), expect);
}

/// A hand-annotated memory-dependent region whose input structure is
/// rewritten (with a matching `invalidate`) every iteration: any
/// dropped invalidation is guaranteed to surface in the checksum.
fn md_program() -> ccr::ir::Program {
    use ccr::ir::{BinKind, BlockId, CmpPred, InstrExt, Op, Operand, ProgramBuilder};
    let mut pb = ProgramBuilder::new();
    let tbl = pb.object("tbl", 1);
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let v = f.fresh();
    let reuse_blk = f.block();
    let body = f.block();
    let cont = f.block();
    let done = f.block();
    f.jump(reuse_blk);
    f.switch_to(reuse_blk);
    f.jump(body); // patched to reuse
    f.switch_to(body);
    f.load_into(v, tbl, 0, 0);
    f.jump(cont);
    f.switch_to(cont);
    f.bin_into(BinKind::Add, acc, acc, v);
    // Rewrite the table and invalidate, every iteration.
    f.store(tbl, 0, i);
    f.nop(); // patched to invalidate
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, 100, reuse_blk, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let id = pb.finish_function(f);
    pb.set_main(id);
    let mut p = pb.finish();
    let region = p.fresh_region_id();
    let func = p.function_mut(id);
    func.block_mut(BlockId(1)).instrs[0].op = Op::Reuse {
        region,
        body: BlockId(2),
        cont: BlockId(3),
    };
    func.block_mut(BlockId(2)).instrs[0].ext = InstrExt::LIVE_OUT;
    func.block_mut(BlockId(2)).instrs[1].ext = InstrExt::REGION_END;
    func.block_mut(BlockId(3)).instrs[2].op = Op::Invalidate { region };
    ccr::ir::verify_program(&p).unwrap();
    p
}

#[test]
fn dropped_invalidations_change_results_on_md_regions() {
    let p = md_program();
    let expect = run_with(&mut NullCrb, &p);
    // An honest buffer agrees with plain execution.
    let mut honest = ReuseBuffer::new(CrbConfig::paper());
    assert_eq!(run_with(&mut honest, &p), expect);
    // A buffer that drops invalidations serves stale loads forever.
    let mut faulty = InvalidationDropper(ReuseBuffer::new(CrbConfig::paper()));
    let got = run_with(&mut faulty, &p);
    assert_ne!(
        got, expect,
        "ignoring invalidations must be architecturally visible"
    );
}

#[test]
fn measure_panics_on_faulty_hardware() {
    // The public measure() API carries the equality assertion; verify
    // it fires by simulating the corrupted buffer by hand and
    // comparing to what measure() checks.
    let cw = compiled_m88ksim();
    let base = run_with(&mut NullCrb, &cw.base);
    let mut faulty = OutputCorruptor(ReuseBuffer::new(CrbConfig::paper()));
    let corrupted = run_with(&mut faulty, &cw.annotated);
    // measure() asserts base == ccr; with this hardware it would
    // panic. (We assert the precondition rather than catching the
    // panic, keeping the test deterministic and message-independent.)
    assert_ne!(base, corrupted);
}

//! End-to-end tests of the `ccr` command-line driver, run against the
//! actual binary Cargo builds for this package.

use std::process::Command;

fn ccr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccr"))
}

#[test]
fn list_names_all_benchmarks() {
    let out = ccr().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), 13);
    assert!(names.contains(&"124.m88ksim"));
}

#[test]
fn run_reports_a_speedup() {
    let out = ccr().args(["run", "130.li"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("regions"), "{stdout}");
}

#[test]
fn print_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("ccr-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("espresso.ccr");
    let printed = ccr().args(["print", "008.espresso"]).output().unwrap();
    assert!(printed.status.success());
    std::fs::write(&path, &printed.stdout).unwrap();
    let out = ccr()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
}

#[test]
fn trace_respects_the_limit() {
    let out = ccr()
        .args(["trace", "lex", "--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 5, "{stdout}");
}

#[test]
fn run_analyze_diff_pipeline_round_trips() {
    let dir = std::env::temp_dir().join("ccr-cli-analyze-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tele = dir.join("run");
    let out = ccr()
        .args(["run", "lex", "--telemetry", tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ccr()
        .args(["analyze", tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("hottest by instructions saved"), "{stdout}");
    let analysis = std::fs::read_to_string(tele.join("analysis.json")).unwrap();
    assert!(
        analysis.starts_with("{\"analysis_schema_version\":1,"),
        "{analysis}"
    );
    let trace = std::fs::read_to_string(tele.join("trace.json")).unwrap();
    assert!(trace.contains("\"traceEvents\":["), "{trace}");

    // Self-diff: zero deltas, exit 0.
    let out = ccr()
        .args(["diff", tele.to_str().unwrap(), tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("OK: all deltas within thresholds"),
        "{stdout}"
    );

    // A saved analysis.json works as a diff baseline too.
    let out = ccr()
        .args([
            "diff",
            tele.join("analysis.json").to_str().unwrap(),
            tele.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn diff_flags_regressions_with_exit_code_2() {
    let dir = std::env::temp_dir().join("ccr-cli-diff-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good");
    let bad = dir.join("bad");
    for (tele, instances) in [(&good, "8"), (&bad, "1")] {
        let out = ccr()
            .args([
                "run",
                "lex",
                "--instances",
                instances,
                "--telemetry",
                tele.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Different CRB geometry ⇒ different config hash ⇒ refused without
    // --force (plain failure, exit 1).
    let out = ccr()
        .args(["diff", good.to_str().unwrap(), bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("config hash mismatch"), "{stderr}");

    // Forced: the cycle/hit-rate regression breaches the default
    // thresholds, exit 2.
    let out = ccr()
        .args([
            "diff",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--force",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("** BREACH"), "{stdout}");
    assert!(stdout.contains("FAIL:"), "{stdout}");

    // The same comparison with thresholds disabled reports but passes.
    let out = ccr()
        .args([
            "diff",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--force",
            "--thresholds",
            "none",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bench_snapshot_round_trips_through_diff() {
    let dir = std::env::temp_dir().join("ccr-cli-bench-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("BENCH_test.json");
    let out = ccr()
        .args(["bench", "--only", "lex", "--out", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&snap).unwrap();
    assert!(text.starts_with("{\"bench_schema_version\":1,"), "{text}");
    assert!(text.contains("\"name\":\"lex\""), "{text}");

    let out = ccr()
        .args(["diff", snap.to_str().unwrap(), snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("OK: all deltas within thresholds"),
        "{stdout}"
    );

    let out = ccr()
        .args(["bench", "--only", "no-such-workload"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = ccr().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = ccr().args(["run", "not-a-benchmark"]).output().unwrap();
    assert!(!out.status.success());
}

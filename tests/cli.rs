//! End-to-end tests of the `ccr` command-line driver, run against the
//! actual binary Cargo builds for this package.

use std::process::Command;

fn ccr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccr"))
}

#[test]
fn list_names_all_benchmarks() {
    let out = ccr().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), 13);
    assert!(names.contains(&"124.m88ksim"));
}

#[test]
fn run_reports_a_speedup() {
    let out = ccr().args(["run", "130.li"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("regions"), "{stdout}");
}

#[test]
fn print_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("ccr-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("espresso.ccr");
    let printed = ccr().args(["print", "008.espresso"]).output().unwrap();
    assert!(printed.status.success());
    std::fs::write(&path, &printed.stdout).unwrap();
    let out = ccr()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
}

#[test]
fn trace_respects_the_limit() {
    let out = ccr()
        .args(["trace", "lex", "--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 5, "{stdout}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = ccr().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = ccr().args(["run", "not-a-benchmark"]).output().unwrap();
    assert!(!out.status.success());
}

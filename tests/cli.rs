//! End-to-end tests of the `ccr` command-line driver, run against the
//! actual binary Cargo builds for this package.

use std::process::Command;

fn ccr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccr"))
}

#[test]
fn list_names_all_benchmarks() {
    let out = ccr().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), 13);
    assert!(names.contains(&"124.m88ksim"));
}

#[test]
fn run_reports_a_speedup() {
    let out = ccr().args(["run", "130.li"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("regions"), "{stdout}");
}

#[test]
fn print_then_run_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("ccr-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("espresso.ccr");
    let printed = ccr().args(["print", "008.espresso"]).output().unwrap();
    assert!(printed.status.success());
    std::fs::write(&path, &printed.stdout).unwrap();
    let out = ccr()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
}

#[test]
fn trace_respects_the_limit() {
    let out = ccr()
        .args(["trace", "lex", "--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 5, "{stdout}");
}

#[test]
fn run_analyze_diff_pipeline_round_trips() {
    let dir = std::env::temp_dir().join("ccr-cli-analyze-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tele = dir.join("run");
    let out = ccr()
        .args(["run", "lex", "--telemetry", tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ccr()
        .args(["analyze", tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("hottest by instructions saved"), "{stdout}");
    let analysis = std::fs::read_to_string(tele.join("analysis.json")).unwrap();
    assert!(
        analysis.starts_with("{\"analysis_schema_version\":2,"),
        "{analysis}"
    );
    let trace = std::fs::read_to_string(tele.join("trace.json")).unwrap();
    assert!(trace.contains("\"traceEvents\":["), "{trace}");

    // Self-diff: zero deltas, exit 0.
    let out = ccr()
        .args(["diff", tele.to_str().unwrap(), tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("OK: all deltas within thresholds"),
        "{stdout}"
    );

    // A saved analysis.json works as a diff baseline too.
    let out = ccr()
        .args([
            "diff",
            tele.join("analysis.json").to_str().unwrap(),
            tele.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn diff_flags_regressions_with_exit_code_2() {
    let dir = std::env::temp_dir().join("ccr-cli-diff-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good");
    let bad = dir.join("bad");
    for (tele, instances) in [(&good, "8"), (&bad, "1")] {
        let out = ccr()
            .args([
                "run",
                "lex",
                "--instances",
                instances,
                "--telemetry",
                tele.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Different CRB geometry ⇒ different config hash ⇒ refused without
    // --force (plain failure, exit 1).
    let out = ccr()
        .args(["diff", good.to_str().unwrap(), bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("config hash mismatch"), "{stderr}");

    // Forced: the cycle/hit-rate regression breaches the default
    // thresholds, exit 2.
    let out = ccr()
        .args([
            "diff",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--force",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("** BREACH"), "{stdout}");
    assert!(stdout.contains("FAIL:"), "{stdout}");

    // The same comparison with thresholds disabled reports but passes.
    let out = ccr()
        .args([
            "diff",
            good.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--force",
            "--thresholds",
            "none",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bench_snapshot_round_trips_through_diff() {
    let dir = std::env::temp_dir().join("ccr-cli-bench-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("BENCH_test.json");
    let store = dir.join("runs/store.jsonl");
    let out = ccr()
        .args([
            "bench",
            "--only",
            "lex",
            "--out",
            snap.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--at",
            "1700000000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&snap).unwrap();
    assert!(text.starts_with("{\"bench_schema_version\":2,"), "{text}");
    assert!(text.contains("\"name\":\"lex\""), "{text}");
    assert!(text.contains("\"sim_cycles_per_host_sec\":"), "{text}");
    assert!(text.contains("\"git_commit\":"), "{text}");

    // The run appended one store record — with the *live* miss-cause
    // mix, which the BENCH file itself doesn't carry.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("appended 1 record(s)"), "{stderr}");
    let line = std::fs::read_to_string(&store).unwrap();
    assert!(
        line.starts_with("{\"store_v\":1,\"ts\":1700000000,"),
        "{line}"
    );
    assert!(line.contains("\"source\":\"bench\""), "{line}");
    assert!(!line.contains("\"miss_capacity\":0,"), "{line}");

    let out = ccr()
        .args(["diff", snap.to_str().unwrap(), snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("OK: all deltas within thresholds"),
        "{stdout}"
    );

    let out = ccr()
        .args(["bench", "--only", "no-such-workload"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn profile_writes_attribution_and_flamegraph_artifacts() {
    let dir = std::env::temp_dir().join("ccr-cli-profile-test");
    let _ = std::fs::remove_dir_all(&dir);
    let tele = dir.join("prof");
    let store = dir.join("runs/store.jsonl");
    let out = ccr()
        .args([
            "profile",
            "bitcount",
            "--telemetry",
            tele.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("attr (base)"), "{stdout}");
    assert!(stdout.contains("cycle samples"), "{stdout}");
    assert!(stdout.contains("misses     :"), "{stdout}");

    // The profiled run appended a store record with its analysis totals.
    let line = std::fs::read_to_string(&store).unwrap();
    assert!(line.starts_with("{\"store_v\":1,"), "{line}");
    assert!(line.contains("\"source\":\"profile\""), "{line}");
    assert!(line.contains("\"workload\":\"bitcount\""), "{line}");

    // Profiling must not perturb timing: a plain run of the same
    // workload reports byte-identical cycle counts.
    let run = ccr().args(["run", "bitcount"]).output().unwrap();
    assert!(run.status.success());
    let run_stdout = String::from_utf8(run.stdout).unwrap();
    // First integer token after `tag` on the line containing it.
    let cycles_of = |text: &str, tag: &str| -> u64 {
        let line = text
            .lines()
            .find(|l| l.contains(tag))
            .unwrap_or_else(|| panic!("no `{tag}` line in:\n{text}"));
        line[line.find(tag).unwrap() + tag.len()..]
            .split_whitespace()
            .find_map(|tok| tok.parse().ok())
            .unwrap_or_else(|| panic!("no number after `{tag}` in `{line}`"))
    };
    assert_eq!(
        cycles_of(&stdout, "base"),
        cycles_of(&run_stdout, "baseline"),
        "profiled baseline cycles drifted:\n{stdout}\n{run_stdout}"
    );
    assert_eq!(
        cycles_of(&stdout, "ccr"),
        cycles_of(&run_stdout, "with CCR"),
        "profiled CCR cycles drifted:\n{stdout}\n{run_stdout}"
    );

    let analysis = std::fs::read_to_string(tele.join("analysis.json")).unwrap();
    assert!(
        analysis.contains("\"attribution\":{\"base\":{"),
        "{analysis}"
    );
    assert!(analysis.contains("\"miss_cold\":"), "{analysis}");

    let folded = std::fs::read_to_string(tele.join("profile.folded")).unwrap();
    assert!(!folded.is_empty(), "profiled run must produce samples");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
        assert!(
            stack.starts_with("base;") || stack.starts_with("ccr;"),
            "{line}"
        );
        count.parse::<u64>().expect("count is an integer");
    }

    let svg = std::fs::read_to_string(tele.join("flamegraph.svg")).unwrap();
    assert!(svg.starts_with("<?xml"), "{svg}");
    assert!(svg.trim_end().ends_with("</svg>"), "{svg}");

    // The capture analyzes cleanly through the offline path too.
    let out = ccr()
        .args(["analyze", tele.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn analyze_and_diff_reject_incomplete_run_directories() {
    let dir = std::env::temp_dir().join("ccr-cli-missing-artifacts-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Empty directory: missing events.jsonl, one-line error, no usage.
    let out = ccr()
        .args(["analyze", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("missing events.jsonl"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");

    // events.jsonl present but report.json absent.
    std::fs::write(dir.join("events.jsonl"), "").unwrap();
    let out = ccr()
        .args(["analyze", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("missing report.json"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    // diff pre-flights both sides the same way.
    let out = ccr()
        .args(["diff", dir.to_str().unwrap(), dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("missing report.json"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    // A path that is not a directory at all.
    let out = ccr()
        .args(["analyze", "/no/such/ccr-dir"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not a directory"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
}

#[test]
fn report_imports_renders_and_preflights_the_store() {
    let dir = std::env::temp_dir().join("ccr-cli-report-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("runs/store.jsonl");

    // Missing store: one-line pre-flight error, exit 1, no usage dump.
    let out = ccr()
        .args(["report", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no run store here"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");

    // A bench run with --no-store must not create one.
    let snap = dir.join("BENCH_test.json");
    let out = ccr()
        .args([
            "bench",
            "--only",
            "lex",
            "--out",
            snap.to_str().unwrap(),
            "--no-store",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!store.exists(), "--no-store must not write a store");

    // Backfill the snapshot twice at pinned timestamps, then report:
    // a flat two-run history, exit 0, CSVs under --out.
    for ts in ["100", "200"] {
        let out = ccr()
            .args([
                "report",
                "import",
                snap.to_str().unwrap(),
                "--store",
                store.to_str().unwrap(),
                "--at",
                ts,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let csv_dir = dir.join("csv");
    let out = ccr()
        .args([
            "report",
            "--store",
            store.to_str().unwrap(),
            "--out",
            csv_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "flat history must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 record(s), 1 series"), "{stdout}");
    assert!(
        stdout.contains("\"import\"") || stdout.contains("import"),
        "{stdout}"
    );
    assert!(stdout.contains("OK: no regressions"), "{stdout}");
    for table in ["trend", "miss_mix", "host", "regressions"] {
        let csv = csv_dir.join(format!("report.{table}.csv"));
        assert!(csv.is_file(), "missing {}", csv.display());
    }

    // A torn final line (killed mid-append) is recovered, noted, and
    // does not fail the report.
    let mut text = std::fs::read_to_string(&store).unwrap();
    text.push_str("{\"store_v\":1,\"ts\":300,\"commit\":\"tor");
    std::fs::write(&store, text).unwrap();
    let out = ccr()
        .args(["report", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("note: 1 unreadable line(s) skipped"),
        "{stdout}"
    );

    // A fully unreadable store is a one-line corrupt-store error.
    std::fs::write(&store, "not a store\n").unwrap();
    let out = ccr()
        .args(["report", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("corrupt run store"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = ccr().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = ccr().args(["run", "not-a-benchmark"]).output().unwrap();
    assert!(!out.status.success());
}

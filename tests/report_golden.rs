//! Golden-file test for the cross-run report.
//!
//! `tests/fixtures/run_store/store.jsonl` is a frozen eight-record
//! run store: two workloads (`008.espresso`, `lex`) measured across
//! four runs under one configuration. The espresso series carries a
//! planted regression at the third run — CCR cycles jump ~10% and the
//! hit rate drops ~5pp — which *persists* into the fourth run, so the
//! test can pin that `ccr report` flags the introduction point (run
//! three) and not every run after it. The lex series is flat and must
//! never flag.
//!
//! The report over the fixture is compared byte-for-byte against the
//! committed goldens (`golden/report.txt` plus one CSV per table),
//! and run through the actual `ccr` binary twice to pin the CLI
//! contract: identical bytes, exit code 2.
//!
//! To refresh after an intentional schema or report change:
//!
//! ```text
//! CCR_UPDATE_GOLDEN=1 cargo test --test report_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_store")
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("CCR_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with CCR_UPDATE_GOLDEN=1 to create)",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{} drifted from the committed golden.\n\
         If the change is intentional, refresh with:\n\
         CCR_UPDATE_GOLDEN=1 cargo test --test report_golden\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

#[test]
fn report_output_is_byte_stable_on_the_frozen_fixture() {
    let store = ccr_analyze::RunStore::load(&fixture().join("store.jsonl"))
        .expect("fixture must load cleanly");
    assert_eq!(store.skipped_lines, 0, "the frozen store has no torn lines");
    assert_eq!(store.records.len(), 8);

    let out = ccr_analyze::report_over(&store, &ccr_analyze::Thresholds::default_gate());

    // Determinism first, independent of the goldens.
    let again = ccr_analyze::report_over(&store, &ccr_analyze::Thresholds::default_gate());
    assert_eq!(out.render(), again.render());

    check_golden(&fixture().join("golden/report.txt"), &out.render());
    for (name, table) in &out.tables {
        check_golden(
            &fixture().join(format!("golden/report.{name}.csv")),
            &table.to_csv(),
        );
    }
}

#[test]
fn planted_regression_is_flagged_at_its_introduction_point() {
    let store = ccr_analyze::RunStore::load(&fixture().join("store.jsonl")).unwrap();
    let out = ccr_analyze::report_over(&store, &ccr_analyze::Thresholds::default_gate());
    assert!(out.flagged());
    // Only the espresso series regressed; its cycles, hit rate, and
    // (as a consequence of the cycle growth) speedup all breach — each
    // exactly once, at the first-bad run, despite the fourth run also
    // being bad.
    assert!(out.regressions.iter().all(|r| r.series.0 == "008.espresso"));
    for metric in ["ccr_cycles", "hit_rate", "speedup"] {
        let hits: Vec<_> = out
            .regressions
            .iter()
            .filter(|r| r.metric == metric)
            .collect();
        assert_eq!(hits.len(), 1, "{metric}: one finding per series");
        assert_eq!(hits[0].timestamp, 1_700_172_800, "{metric}: first-bad run");
        assert!(hits[0].commit.starts_with("3333"), "{metric}");
    }
}

#[test]
fn report_cli_is_byte_identical_across_invocations_and_exits_2() {
    let store = fixture().join("store.jsonl");
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_ccr"))
            .args(["report", "--store", store.to_str().unwrap()])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.status.code(),
        Some(2),
        "planted regression must exit 2: {}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout, "report output must be byte-stable");
    assert_eq!(b.status.code(), Some(2));
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("FAIL: "), "{text}");
    check_golden(&fixture().join("golden/report.txt"), &text);
}

//! Design-space exploration on a single benchmark: sweep the CRB
//! geometry (entries × instances) and print a speedup matrix — the
//! per-benchmark version of the paper's Figure 8 exploration.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```

use ccr::profile::EmuConfig;
use ccr::regions::RegionConfig;
use ccr::report::{speedup, Table};
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, measure, CompileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pgpencode".to_string());
    if !NAMES.contains(&name.as_str()) {
        eprintln!("unknown benchmark '{name}'; choose one of: {NAMES:?}");
        std::process::exit(1);
    }
    let program = build(&name, InputSet::Train, 1).expect("known benchmark");
    let machine = MachineConfig::paper();

    let entries = [16usize, 32, 64, 128];
    let instances = [2usize, 4, 8, 16];

    let mut header = vec!["entries \\ CIs".to_string()];
    header.extend(instances.iter().map(|c| c.to_string()));
    let mut table = Table::new(header);

    for &e in &entries {
        let mut row = vec![e.to_string()];
        for &ci in &instances {
            // Re-compile per instance count: the selection trial
            // targets the actual hardware capacity.
            let config = CompileConfig {
                region: RegionConfig {
                    trial_instances: ci,
                    ..RegionConfig::paper()
                },
                emu: EmuConfig::default(),
                ..CompileConfig::paper()
            };
            let compiled = compile_ccr(&program, &program, &config)?;
            let crb = CrbConfig {
                entries: e,
                instances: ci,
                ..CrbConfig::paper()
            };
            let m = measure(&compiled, &machine, crb, EmuConfig::default())?;
            row.push(speedup(m.speedup()));
        }
        table.row(row);
    }

    println!("CRB design space for {name} (speedup over no-CCR baseline)");
    println!("{table}");
    Ok(())
}

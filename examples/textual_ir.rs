//! Textual IR workflow: build a program, print it, parse it back,
//! patch the parsed copy, and run both — the edit/re-run loop a
//! downstream user gets from `.ccr` files.
//!
//! ```sh
//! cargo run --release --example textual_ir
//! ```

use ccr::ir::{parse_program, BinKind, CmpPred, Operand, ProgramBuilder};
use ccr::profile::{Emulator, NullCrb, NullSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small dot-product program with the DSL.
    let mut pb = ProgramBuilder::new();
    let xs = pb.table("xs", vec![1, 2, 3, 4]);
    let ys = pb.table("ys", vec![10, 20, 30, 40]);
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let a = f.load(xs, i);
    let b = f.load(ys, i);
    let m = f.mul(a, b);
    f.bin_into(BinKind::Add, acc, acc, m);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, 4, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let id = pb.finish_function(f);
    pb.set_main(id);
    let program = pb.finish();

    let text = program.to_string();
    println!("=== printed IR ===\n{text}");

    // Parse it back and tweak the data: double every y.
    let mut parsed = parse_program(&text)?;
    let ys_id = ccr::ir::MemObjectId(1);
    let doubled: Vec<ccr::ir::Value> = parsed
        .object(ys_id)
        .init()
        .iter()
        .map(|v| ccr::ir::Value::from_int(v.as_int() * 2))
        .collect();
    parsed.object_mut(ys_id).set_init(doubled);
    ccr::ir::verify_program(&parsed)?;

    let run = |p: &ccr::ir::Program| -> Result<i64, Box<dyn std::error::Error>> {
        Ok(Emulator::new(p).run(&mut NullCrb, &mut NullSink)?.returned[0].as_int())
    };
    let original = run(&program)?;
    let patched = run(&parsed)?;
    println!("original dot product : {original}");
    println!("with doubled ys      : {patched}");
    assert_eq!(original, 300);
    assert_eq!(patched, 600);
    println!("round trip + patch verified");
    Ok(())
}

//! The paper's Figure 3, end to end: the `ckbrkpts` breakpoint-table
//! scan from 124.m88ksim as a *cyclic, memory-dependent* region —
//! including the invalidation story: the table is written by a small
//! set of functions, and the compiler places `invalidate` after each
//! of those stores.
//!
//! ```sh
//! cargo run --release --example breakpoint_scan
//! ```

use ccr::ir::{BinKind, CmpPred, ObjectKind, Op, Operand, ProgramBuilder, Value};
use ccr::profile::EmuConfig;
use ccr::report::speedup;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::{compile_ccr, measure, CompileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pb = ProgramBuilder::new();
    // brktable: (code, adr) pairs — the paper's 16-entry table.
    let init: Vec<Value> = (0..16)
        .flat_map(|k| {
            [
                Value::from_int(i64::from(k % 4 == 0)),
                Value::from_int((k * 64) & !3),
            ]
        })
        .collect();
    let brktable = pb.object_with("brktable", ObjectKind::Named, 32, init);

    // ckbrkpts(addr): scan all entries, OR-accumulating the match bit
    // (single entry, single exit — a clean cyclic RCR).
    let ckbrkpts = pb.declare("ckbrkpts", 1, 1);
    {
        let mut f = pb.function_body(ckbrkpts);
        let addr = f.param(0);
        let found = f.movi(0);
        let j = f.movi(0);
        let scan = f.block();
        let out = f.block();
        f.jump(scan);
        f.switch_to(scan);
        let base = f.shl(j, 1);
        let code = f.load(brktable, base);
        let adr = f.load_off(brktable, base, 1);
        let masked = f.and(adr, !3);
        let armed = f.cmp(CmpPred::Ne, code, 0);
        let hit = f.cmp(CmpPred::Eq, masked, addr);
        let m = f.and(armed, hit);
        f.bin_into(BinKind::Or, found, found, m);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 16, scan, out);
        f.switch_to(out);
        f.ret(&[Operand::Reg(found)]);
        pb.finish_function(f);
    }

    // settmpbrk: one of the paper's four brktable writers.
    let settmpbrk = pb.declare("settmpbrk", 1, 0);
    {
        let mut f = pb.function_body(settmpbrk);
        let addr = f.param(0);
        f.store(brktable, 30, 1);
        f.store(brktable, 31, addr);
        f.ret(&[]);
        pb.finish_function(f);
    }

    // Driver: scan the same few addresses thousands of times; set a
    // temporary breakpoint once every 1024 checks.
    let mut f = pb.function("main", 0, 1);
    let total = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let set_blk = f.block();
    let merge = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let a = f.and(i, 3);
    let addr = f.shl(a, 6);
    let r = f.call(ckbrkpts, &[Operand::Reg(addr)], 1);
    f.bin_into(BinKind::Add, total, total, r[0]);
    let ph = f.and(i, 1023);
    f.br(CmpPred::Eq, ph, 1023, set_blk, merge);
    f.switch_to(set_blk);
    let _ = f.call(settmpbrk, &[Operand::Reg(addr)], 0);
    f.jump(merge);
    f.switch_to(merge);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, 6000, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(total)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    let program = pb.finish();

    let compiled = compile_ccr(&program, &program, &CompileConfig::paper())?;
    println!("=== formed regions ===");
    for info in &compiled.regions {
        println!(
            "{}: {} ({} static instrs, {} memory structures, {} invalidation sites)",
            info.id,
            if info.spec.is_cyclic() {
                "cyclic memory-dependent region (the Figure 3 loop)"
            } else {
                "acyclic region"
            },
            info.spec.static_instrs,
            info.spec.mem_count(),
            info.invalidation_sites,
        );
    }
    let invalidates = compiled
        .annotated
        .iter_instrs()
        .filter(|(_, ins)| matches!(ins.op, Op::Invalidate { .. }))
        .count();
    println!("invalidate instructions inserted after brktable stores: {invalidates}");

    let m = measure(
        &compiled,
        &MachineConfig::paper(),
        CrbConfig::paper(),
        EmuConfig::default(),
    )?;
    println!(
        "speedup {}x — CRB {} hits / {} misses, {} buffer invalidations",
        speedup(m.speedup()),
        m.ccr.stats.reuse_hits,
        m.ccr.stats.reuse_misses,
        m.ccr.stats.crb.invalidations,
    );
    Ok(())
}

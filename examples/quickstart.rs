//! Quickstart: run one benchmark through the whole CCR pipeline —
//! optimize, profile, form regions, and simulate baseline vs CCR.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark] [scale]
//! ```

use ccr::profile::EmuConfig;
use ccr::report::{pct, speedup};
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, measure, CompileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "124.m88ksim".to_string());
    let scale: u32 = args.next().map_or(1, |s| s.parse().unwrap_or(1));
    if !NAMES.contains(&name.as_str()) {
        eprintln!("unknown benchmark '{name}'; choose one of: {NAMES:?}");
        std::process::exit(1);
    }

    println!("benchmark : {name} (scale {scale})");
    let program = build(&name, InputSet::Train, scale).expect("known benchmark");
    println!(
        "program   : {} functions, {} static instructions, {} data objects",
        program.functions().len(),
        program.instr_count(),
        program.objects().len()
    );

    let compiled = compile_ccr(&program, &program, &CompileConfig::paper())?;
    println!(
        "regions   : {} reusable computation regions",
        compiled.regions.len()
    );
    for info in &compiled.regions {
        println!(
            "   {}  {:<7}  {:>3} instrs  {} inputs  {} outputs  {} mem  {} invalidation sites",
            info.id,
            if info.spec.is_cyclic() {
                "cyclic"
            } else {
                "acyclic"
            },
            info.spec.static_instrs,
            info.spec.input_count(),
            info.spec.live_outs.len(),
            info.spec.mem_count(),
            info.invalidation_sites,
        );
    }

    let m = measure(
        &compiled,
        &MachineConfig::paper(),
        CrbConfig::paper(),
        EmuConfig::default(),
    )?;
    println!();
    println!(
        "baseline  : {:>12} cycles   ({} instructions)",
        m.base.stats.cycles, m.base.run.dyn_instrs
    );
    println!(
        "with CCR  : {:>12} cycles   ({} executed + {} skipped by reuse)",
        m.ccr.stats.cycles, m.ccr.run.dyn_instrs, m.ccr.run.skipped_instrs
    );
    println!(
        "CRB       : {} hits / {} misses ({} hit ratio)",
        m.ccr.stats.reuse_hits,
        m.ccr.stats.reuse_misses,
        pct(m.ccr.stats.crb.hit_ratio())
    );
    println!(
        "speedup   : {}x   (repetition eliminated: {})",
        speedup(m.speedup()),
        pct(m.eliminated_fraction())
    );
    Ok(())
}

//! The paper's Figure 2, end to end: the espresso `count_ones` macro
//! as a hand-built IR program, showing every pipeline stage in detail
//! — the IR listing, the profile, the formed region, the annotated
//! code, and the cycle-level result.
//!
//! ```sh
//! cargo run --release --example bitcount
//! ```

use ccr::ir::{BinKind, CmpPred, Operand, ProgramBuilder};
use ccr::profile::{EmuConfig, Emulator, NullCrb, ValueProfiler};
use ccr::regions::RegionConfig;
use ccr::report::speedup;
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::{compile_ccr, measure, CompileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build the program of Figure 2 -------------------------------
    // #define count_ones(v) (bit_count[v & 255] + bit_count[(v>>8) & 255]
    //                      + bit_count[(v>>16) & 255] + bit_count[(v>>24) & 255])
    let mut pb = ProgramBuilder::new();
    let bits: Vec<i64> = (0..256).map(|v: i64| v.count_ones() as i64).collect();
    let bit_count = pb.table("bit_count", bits);
    // The words examined repeat: espresso re-examines the same cubes.
    let words = pb.table(
        "words",
        vec![0x00ff_00ff, 0x0f0f_0f0f, 0x1234_5678, 0x00ff_00ff],
    );
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let sel = f.and(i, 3);
    let v = f.load(words, sel);
    // r26 in the paper: the single input register of the sequence.
    let b0 = f.and(v, 255);
    let c0 = f.load(bit_count, b0);
    let s1 = f.shr(v, 8);
    let b1 = f.and(s1, 255);
    let c1 = f.load(bit_count, b1);
    let s2 = f.shr(v, 16);
    let b2 = f.and(s2, 255);
    let c2 = f.load(bit_count, b2);
    let s3 = f.shr(v, 24);
    let b3 = f.and(s3, 255);
    let c3 = f.load(bit_count, b3);
    let t0 = f.add(c0, c1);
    let t1 = f.add(c2, c3);
    let ones = f.add(t0, t1); // r3 in the paper: the single output
    f.bin_into(BinKind::Add, acc, acc, ones);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, 5000, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let main = pb.finish_function(f);
    pb.set_main(main);
    let program = pb.finish();

    println!("=== source program (paper Figure 2) ===\n{program}");

    // --- Profile it ---------------------------------------------------
    let mut profiler = ValueProfiler::for_program(&program);
    Emulator::new(&program).run(&mut NullCrb, &mut profiler)?;
    let profile = profiler.finish();
    let load_words = program
        .function(main)
        .iter_instrs()
        .find(|(_, ins)| ins.is_load())
        .unwrap()
        .1
        .id;
    println!(
        "value profile: the word load executes {} times with top-5 invariance {:.2}",
        profile.exec(load_words),
        profile.invariance_ratio(load_words, 5),
    );

    // --- Compile + measure --------------------------------------------
    let config = CompileConfig {
        region: RegionConfig::paper(),
        emu: EmuConfig::default(),
        ..CompileConfig::paper()
    };
    let compiled = compile_ccr(&program, &program, &config)?;
    println!("\n=== formed regions ===");
    for info in &compiled.regions {
        println!(
            "{}: {} static instructions, inputs {:?}, outputs {:?} (paper: r26 in, r3 out)",
            info.id, info.spec.static_instrs, info.spec.live_ins, info.spec.live_outs
        );
    }
    println!("\n=== annotated program ===\n{}", compiled.annotated);

    let m = measure(
        &compiled,
        &MachineConfig::paper(),
        CrbConfig::paper(),
        EmuConfig::default(),
    )?;
    println!(
        "speedup {}x — {} of {} baseline instructions skipped, CRB hit ratio {:.2}",
        speedup(m.speedup()),
        m.ccr.run.skipped_instrs,
        m.base.run.dyn_instrs,
        m.ccr.stats.crb.hit_ratio(),
    );
    Ok(())
}

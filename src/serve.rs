//! `ccr serve` — the batched multi-client experiment service.
//!
//! The one-shot CLI pays the whole plan→compile→sim pipeline per
//! invocation. The service keeps one [`ccr_bench::Engine`] alive for
//! a whole session instead, so the paper's core economics — amortize
//! one compile/region-formation pass across many dynamic executions —
//! applies to the harness itself: concurrent clients sweeping
//! overlapping configuration spaces pay for each unique compile,
//! reuse-potential study, and simulation exactly once. Dedup across
//! in-flight requests falls out of the engine's single-flight caches;
//! no request-level coordination is needed.
//!
//! ## Wire protocol (`req_v` 1)
//!
//! Newline-delimited JSON over a Unix socket (`--socket PATH`) or
//! local TCP (`--port N`), one request object per line, one reply
//! object per line, in order. Replies always carry `"req_v":1` and
//! `"ok":true|false`; protocol failures (unparseable line, unknown
//! `req_v`, unknown op/field/workload) are `ok:false` replies with a
//! one-line `error`, never a closed connection.
//!
//! | op | request | reply |
//! |---|---|---|
//! | `submit` | `{"req_v":1,"op":"submit","exp":"fig4"}` or `{"req_v":1,"op":"submit","workload":"bitcount","input":"train","scale":1,"entries":128,"instances":8}` | `{"req_v":1,"ok":true,"id":N,"state":"queued"}` |
//! | `status` | `{"req_v":1,"op":"status","id":N}` | `{"req_v":1,"ok":true,"id":N,"state":"queued\|running\|done\|error"}` |
//! | `results` | `{"req_v":1,"op":"results","id":N}` | done: adds `points`, `wall_ms`, cumulative `cache_hits`/`cache_misses`, and the rendered `text` (byte-identical to the one-shot CLI's) |
//! | `shutdown` | `{"req_v":1,"op":"shutdown"}` | `{"req_v":1,"ok":true,"state":"shutdown"}`; queued work drains first |
//!
//! The submit queue is bounded (`--queue N`): a submit past the bound
//! is refused with `ok:false` rather than queued without limit.
//!
//! ## Observability and trajectory
//!
//! The session harness appends `request_start` / `request_finish` /
//! `result_cache` events (plus the engine's usual plan/task/pool
//! events) to `serve.jsonl`. Completed points are buffered and
//! appended to the run store at shutdown under `source: "serve"`,
//! each stamped with the session's `points_per_sec` throughput —
//! completed request points per host second over the active window
//! (first dequeue to last completion) — which `ccr report` surfaces
//! as a column.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ccr_analyze::RunRecord;
use ccr_bench::{exp, Engine};

use crate::harness::{Harness, HarnessOptions, ProgressMode};
use crate::profile::EmuConfig;
use crate::regions::RegionConfig;
use crate::sim::{CrbConfig, MachineConfig};
use crate::telemetry::value::{self, Value};
use crate::telemetry::JsonWriter;
use crate::workloads::{InputSet, NAMES};
use crate::CompileConfig;

/// Version tag of request/reply lines. Bumped only on incompatible
/// changes; additive fields ride under the same version.
pub const REQ_VERSION: u64 = 1;

/// Request versions the server understands.
pub const KNOWN_REQ_VERSIONS: &[u64] = &[1];

/// Default submit-queue bound.
pub const DEFAULT_QUEUE: usize = 64;

/// Default `serve.jsonl` location.
pub const DEFAULT_SERVE_JSONL: &str = "serve.jsonl";

/// Emulator limits for point submissions — the same limits the
/// one-shot `ccr suite`/`ccr run` paths use, so a served point is
/// bit-identical to its CLI run.
fn point_emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 500_000_000,
        max_depth: 1024,
    }
}

/// Where the service listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// Local TCP on `127.0.0.1:<port>`.
    Tcp(u16),
    /// A Unix-domain socket at the given path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Bind {
    fn describe(&self) -> String {
        match self {
            Bind::Tcp(port) => format!("127.0.0.1:{port}"),
            #[cfg(unix)]
            Bind::Unix(path) => path.display().to_string(),
        }
    }
}

/// A `ccr serve` session configuration.
pub struct ServeOptions {
    /// Listening address.
    pub bind: Bind,
    /// Submit-queue bound (submits past it are refused).
    pub queue: usize,
    /// Worker count of the session engine.
    pub jobs: usize,
    /// Executor threads draining the request queue (concurrent
    /// requests exercise the engine's cross-request dedup).
    pub executors: usize,
    /// Harness event log (`serve.jsonl`); `None` disables it.
    pub harness_out: Option<PathBuf>,
    /// Run store completed points append to at shutdown; `None`
    /// disables the store hook.
    pub store: Option<PathBuf>,
    /// Unix timestamp stamped on store records.
    pub timestamp: u64,
    /// Git commit stamped on store records.
    pub commit: String,
}

/// What a session did, returned by [`run`] after shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Requests completed (done or error).
    pub requests: u64,
    /// Requested points across completed requests (simulation points
    /// plus reuse-potential studies, before cross-request dedup).
    pub points: u64,
    /// `points` per host second over the active window (first dequeue
    /// to last completion); 0.0 for an idle session.
    pub points_per_sec: f64,
    /// Simulated cycles per host second over the session, from the
    /// harness summary (0.0 when the harness was disabled).
    pub sim_cycles_per_host_sec: f64,
    /// Result-cache hits over the session.
    pub result_cache_hits: u64,
    /// Result-cache misses over the session.
    pub result_cache_misses: u64,
    /// Compile-cache hits over the session.
    pub compile_cache_hits: u64,
    /// Compile-cache misses over the session.
    pub compile_cache_misses: u64,
    /// Store records appended at shutdown.
    pub stored_records: u64,
}

/// One parsed, validated submission.
enum Submission {
    /// A registered experiment, by name or output stem.
    Exp(String),
    /// A single (workload, config) point through the suite pipeline.
    Point {
        workload: &'static str,
        input: InputSet,
        scale: u32,
        entries: usize,
        instances: usize,
    },
}

impl Submission {
    fn detail(&self) -> String {
        match self {
            Submission::Exp(name) => name.clone(),
            Submission::Point {
                workload,
                input,
                scale,
                entries,
                instances,
            } => format!(
                "{workload}:{}@{scale} crb {entries}x{instances}",
                input_tag(*input)
            ),
        }
    }
}

enum ReqState {
    Queued(Submission),
    Running,
    Done {
        text: String,
        wall_ms: u64,
        points: u64,
    },
    Failed(String),
}

#[derive(Default)]
struct SessionState {
    next_id: u64,
    queue: VecDeque<u64>,
    requests: HashMap<u64, ReqState>,
    shutdown: bool,
    records: Vec<RunRecord>,
    requests_done: u64,
    points_done: u64,
    active_from: Option<Instant>,
    active_until: Option<Instant>,
}

struct Session {
    engine: Engine,
    harness: Harness,
    state: Mutex<SessionState>,
    cv: Condvar,
    queue_cap: usize,
    timestamp: u64,
    commit: String,
    store_enabled: bool,
}

fn input_tag(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Ref => "ref",
    }
}

fn parse_input(tag: &str) -> Result<InputSet, String> {
    match tag {
        "train" => Ok(InputSet::Train),
        "ref" => Ok(InputSet::Ref),
        other => Err(format!("unknown input set `{other}` (train or ref)")),
    }
}

/// Runs a serve session to completion: binds, accepts clients,
/// executes submissions through one shared engine, and returns the
/// session summary after a `shutdown` request drains the queue.
///
/// # Errors
///
/// One-line messages for bind failures (port in use, stale socket
/// path), harness-sink failures, and store-append failures at
/// shutdown.
pub fn run(opts: &ServeOptions) -> Result<ServeSummary, String> {
    let listener = match &opts.bind {
        Bind::Tcp(port) => Listener::Tcp(
            TcpListener::bind(("127.0.0.1", *port))
                .map_err(|e| format!("127.0.0.1:{port}: {e}"))?,
        ),
        #[cfg(unix)]
        Bind::Unix(path) => {
            if path.exists() {
                return Err(format!(
                    "{}: socket path already exists (stale from a crashed \
                     server? remove it first)",
                    path.display()
                ));
            }
            Listener::Unix(
                UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))?,
            )
        }
    };
    let harness = Harness::start(&HarnessOptions {
        progress: ProgressMode::Off,
        out: opts.harness_out.clone(),
        ..HarnessOptions::default()
    })
    .map_err(|e| format!("harness: {e}"))?;
    let session = Arc::new(Session {
        engine: Engine::new(opts.jobs),
        harness,
        state: Mutex::new(SessionState::default()),
        cv: Condvar::new(),
        queue_cap: opts.queue,
        timestamp: opts.timestamp,
        commit: opts.commit.clone(),
        store_enabled: opts.store.is_some(),
    });
    eprintln!(
        "serve: listening on {} (queue {}, jobs {}, {} executor(s))",
        opts.bind.describe(),
        opts.queue,
        session.engine.jobs(),
        opts.executors
    );

    let executors: Vec<_> = (0..opts.executors.max(1))
        .map(|_| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || executor_loop(&session))
        })
        .collect();

    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                if session.state.lock().expect("serve state").shutdown {
                    break;
                }
                eprintln!("serve: accept: {e}");
                continue;
            }
        };
        if session.state.lock().expect("serve state").shutdown {
            break;
        }
        // Handler threads are detached on purpose: shutdown must not
        // block on clients that keep an idle connection open. Late
        // submits are refused (the queue checks the shutdown flag);
        // status/results polls on a draining server stay answerable.
        let session = Arc::clone(&session);
        let bind = opts.bind.clone();
        std::thread::spawn(move || handle_connection(&session, conn, &bind));
    }
    // Executors exit once the queue is drained *and* shutdown was
    // requested, so joining them completes every accepted submission.
    for executor in executors {
        let _ = executor.join();
    }
    #[cfg(unix)]
    if let Bind::Unix(path) = &opts.bind {
        let _ = std::fs::remove_file(path);
    }

    let harness_summary = session.harness.finish();
    let state = session.state.lock().expect("serve state");
    let active_ms = match (state.active_from, state.active_until) {
        (Some(from), Some(until)) => until.duration_since(from).as_millis() as u64,
        _ => 0,
    };
    let points_per_sec = if active_ms > 0 {
        state.points_done as f64 / (active_ms as f64 / 1000.0)
    } else {
        0.0
    };
    let mut records = state.records.clone();
    for rec in &mut records {
        rec.points_per_sec = points_per_sec;
    }
    let summary = ServeSummary {
        requests: state.requests_done,
        points: state.points_done,
        points_per_sec,
        sim_cycles_per_host_sec: harness_summary
            .as_ref()
            .map(|s| {
                if s.wall_ms > 0 {
                    s.sim_cycles as f64 / (s.wall_ms as f64 / 1000.0)
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0),
        result_cache_hits: session.engine.result_cache().hits(),
        result_cache_misses: session.engine.result_cache().misses(),
        compile_cache_hits: session.engine.compile_cache().hits(),
        compile_cache_misses: session.engine.compile_cache().misses(),
        stored_records: records.len() as u64,
    };
    drop(state);
    if let Some(store) = &opts.store {
        ccr_analyze::RunStore::append(store, &records)?;
        if !records.is_empty() {
            eprintln!(
                "store: appended {} record(s) to {}",
                records.len(),
                store.display()
            );
        }
    }
    Ok(summary)
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Unblocks the accept loop after a shutdown by dialing the listener
/// once; the accept loop re-checks the shutdown flag per connection.
fn wake_listener(bind: &Bind) {
    match bind {
        Bind::Tcp(port) => {
            let _ = TcpStream::connect(("127.0.0.1", *port));
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

fn handle_connection(session: &Session, conn: Conn, bind: &Bind) {
    let Ok(writer) = conn.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(writer);
    let reader = BufReader::new(conn);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = handle_line(session, &line);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            wake_listener(bind);
            break;
        }
    }
}

fn error_reply(msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("req_v").u64_val(REQ_VERSION);
    w.key("ok").bool_val(false);
    w.key("error").str_val(msg);
    w.obj_end();
    w.finish()
}

/// Handles one request line, returning `(reply, shutdown)`.
fn handle_line(session: &Session, line: &str) -> (String, bool) {
    match handle_request(session, line) {
        Ok(out) => out,
        Err(msg) => (error_reply(&msg), false),
    }
}

fn check_fields(v: &Value, op: &str, allowed: &[&str]) -> Result<(), String> {
    let obj = v.as_obj().ok_or("request is not a JSON object")?;
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` for op `{op}`"));
        }
    }
    Ok(())
}

fn handle_request(session: &Session, line: &str) -> Result<(String, bool), String> {
    let v = value::parse(line.trim()).map_err(|e| format!("unparseable request line: {e:?}"))?;
    let version = v.u64_field("req_v");
    if !KNOWN_REQ_VERSIONS.contains(&version) {
        return Err(format!(
            "unknown req_v {version} (known: {KNOWN_REQ_VERSIONS:?})"
        ));
    }
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request missing `op`")?;
    match op {
        "submit" => {
            check_fields(
                &v,
                op,
                &[
                    "req_v",
                    "op",
                    "exp",
                    "workload",
                    "input",
                    "scale",
                    "entries",
                    "instances",
                ],
            )?;
            let submission = parse_submission(&v)?;
            let id = enqueue(session, submission)?;
            let mut w = JsonWriter::new();
            w.obj_begin();
            w.key("req_v").u64_val(REQ_VERSION);
            w.key("ok").bool_val(true);
            w.key("id").u64_val(id);
            w.key("state").str_val("queued");
            w.obj_end();
            Ok((w.finish(), false))
        }
        "status" | "results" => {
            check_fields(&v, op, &["req_v", "op", "id"])?;
            let id = v
                .get("id")
                .and_then(Value::as_u64)
                .ok_or(format!("op `{op}` needs a numeric `id`"))?;
            let state = session.state.lock().expect("serve state");
            let req = state
                .requests
                .get(&id)
                .ok_or(format!("unknown request id {id}"))?;
            let mut w = JsonWriter::new();
            w.obj_begin();
            w.key("req_v").u64_val(REQ_VERSION);
            match req {
                ReqState::Failed(e) => {
                    w.key("ok").bool_val(false);
                    w.key("id").u64_val(id);
                    w.key("state").str_val("error");
                    w.key("error").str_val(e);
                }
                ReqState::Done {
                    text,
                    wall_ms,
                    points,
                } => {
                    w.key("ok").bool_val(true);
                    w.key("id").u64_val(id);
                    w.key("state").str_val("done");
                    if op == "results" {
                        w.key("points").u64_val(*points);
                        w.key("wall_ms").u64_val(*wall_ms);
                        w.key("cache_hits")
                            .u64_val(session.engine.result_cache().hits());
                        w.key("cache_misses")
                            .u64_val(session.engine.result_cache().misses());
                        w.key("text").str_val(text);
                    }
                }
                ReqState::Queued(_) | ReqState::Running => {
                    w.key("ok").bool_val(true);
                    w.key("id").u64_val(id);
                    w.key("state").str_val(match req {
                        ReqState::Queued(_) => "queued",
                        _ => "running",
                    });
                }
            }
            w.obj_end();
            Ok((w.finish(), false))
        }
        "shutdown" => {
            check_fields(&v, op, &["req_v", "op"])?;
            let mut state = session.state.lock().expect("serve state");
            state.shutdown = true;
            drop(state);
            session.cv.notify_all();
            let mut w = JsonWriter::new();
            w.obj_begin();
            w.key("req_v").u64_val(REQ_VERSION);
            w.key("ok").bool_val(true);
            w.key("state").str_val("shutdown");
            w.obj_end();
            Ok((w.finish(), true))
        }
        other => Err(format!(
            "unknown op `{other}` (submit, status, results, shutdown)"
        )),
    }
}

fn parse_submission(v: &Value) -> Result<Submission, String> {
    let exp_name = v.get("exp").and_then(Value::as_str);
    let workload = v.get("workload").and_then(Value::as_str);
    match (exp_name, workload) {
        (Some(_), Some(_)) => Err("submit takes `exp` or `workload`, not both".to_string()),
        (None, None) => Err("submit needs an `exp` or `workload` field".to_string()),
        (Some(name), None) => {
            let registry = exp::specs::registry();
            if !registry.iter().any(|s| s.name == name || s.output == name) {
                return Err(format!(
                    "unknown experiment `{name}` (see `ccr exp --list`)"
                ));
            }
            Ok(Submission::Exp(name.to_string()))
        }
        (None, Some(name)) => {
            let Some(&known) = NAMES.iter().find(|&&n| n == name) else {
                return Err(format!("unknown workload `{name}` (see `ccr list`)"));
            };
            let input = match v.get("input").and_then(Value::as_str) {
                Some(tag) => parse_input(tag)?,
                None => InputSet::Train,
            };
            let paper = CrbConfig::paper();
            Ok(Submission::Point {
                workload: known,
                input,
                scale: v.get("scale").and_then(Value::as_u64).unwrap_or(1) as u32,
                entries: v
                    .get("entries")
                    .and_then(Value::as_u64)
                    .unwrap_or(paper.entries as u64) as usize,
                instances: v
                    .get("instances")
                    .and_then(Value::as_u64)
                    .unwrap_or(paper.instances as u64) as usize,
            })
        }
    }
}

fn enqueue(session: &Session, submission: Submission) -> Result<u64, String> {
    let mut state = session.state.lock().expect("serve state");
    if state.shutdown {
        return Err("server is shutting down".to_string());
    }
    if state.queue.len() >= session.queue_cap {
        return Err(format!(
            "queue full ({} request(s) pending)",
            state.queue.len()
        ));
    }
    state.next_id += 1;
    let id = state.next_id;
    state.requests.insert(id, ReqState::Queued(submission));
    state.queue.push_back(id);
    drop(state);
    session.cv.notify_all();
    Ok(id)
}

fn executor_loop(session: &Session) {
    loop {
        let (id, submission) = {
            let mut state = session.state.lock().expect("serve state");
            loop {
                if let Some(id) = state.queue.pop_front() {
                    let submission = match state.requests.insert(id, ReqState::Running) {
                        Some(ReqState::Queued(s)) => s,
                        _ => unreachable!("queued ids map to queued requests"),
                    };
                    if state.active_from.is_none() {
                        state.active_from = Some(Instant::now());
                    }
                    break (id, submission);
                }
                if state.shutdown {
                    return;
                }
                state = session.cv.wait(state).expect("serve state");
            }
        };
        let detail = submission.detail();
        session.harness.request_start(id, "submit", &detail);
        let started = Instant::now();
        let outcome = execute_submission(session, &submission);
        let wall_ms = started.elapsed().as_millis() as u64;
        let mut state = session.state.lock().expect("serve state");
        state.requests_done += 1;
        state.active_until = Some(Instant::now());
        match outcome {
            Ok((text, points, records)) => {
                state.points_done += points;
                if session.store_enabled {
                    state.records.extend(records);
                }
                state.requests.insert(
                    id,
                    ReqState::Done {
                        text,
                        wall_ms,
                        points,
                    },
                );
                drop(state);
                session.harness.request_finish(id, "done", wall_ms, points);
            }
            Err(e) => {
                state.requests.insert(id, ReqState::Failed(e));
                drop(state);
                session.harness.request_finish(id, "error", wall_ms, 0);
            }
        }
        let rc = session.engine.result_cache();
        session
            .harness
            .result_cache(rc.hits(), rc.misses(), rc.evictions());
    }
}

/// Executes one submission through the session engine, returning the
/// rendered text (byte-identical to the one-shot CLI's), the
/// requested point count, and the store records it produced.
fn execute_submission(
    session: &Session,
    submission: &Submission,
) -> Result<(String, u64, Vec<RunRecord>), String> {
    match submission {
        Submission::Exp(name) => {
            let registry = exp::specs::registry();
            let spec = registry
                .iter()
                .find(|s| s.name == name.as_str() || s.output == name.as_str())
                .ok_or_else(|| format!("unknown experiment `{name}`"))?;
            let plan = exp::plan(&[spec]);
            let points = (plan.stats.requested_points + plan.stats.potential_points) as u64;
            let executed = session
                .engine
                .execute_plan(&plan, &session.harness, None, None)?;
            let rendered = executed.results(spec).render();
            let records = executed
                .point_summaries()
                .into_iter()
                .map(|p| RunRecord {
                    timestamp: session.timestamp,
                    commit: session.commit.clone(),
                    config_hash: p.config_hash,
                    source: "serve".to_string(),
                    workload: p.workload.to_string(),
                    input: p.input.to_string(),
                    scale: u64::from(p.scale),
                    base_cycles: p.base_cycles,
                    ccr_cycles: p.ccr_cycles,
                    speedup: p.speedup,
                    hit_rate: p.hit_rate,
                    miss_causes: p.miss_causes,
                    regions: p.regions,
                    wall_ms: p.wall_ms,
                    sim_cycles_per_host_sec: ccr_analyze::BenchWorkload::host_throughput(
                        p.base_cycles,
                        p.ccr_cycles,
                        p.wall_ms,
                    ),
                    host_util_pct: 0.0,
                    fingerprint: p.fingerprint,
                    // Stamped with the session throughput at shutdown.
                    points_per_sec: 0.0,
                })
                .collect();
            Ok((rendered.text, points, records))
        }
        Submission::Point {
            workload,
            input,
            scale,
            entries,
            instances,
        } => {
            let machine = MachineConfig::paper();
            let crb = CrbConfig {
                entries: *entries,
                instances: *instances,
                ..CrbConfig::paper()
            };
            let config = CompileConfig {
                region: RegionConfig {
                    trial_instances: *instances,
                    ..RegionConfig::paper()
                },
                ..CompileConfig::paper()
            };
            let names: &[&'static str] = std::slice::from_ref(workload);
            let runs = session.engine.run_selected(
                names,
                *input,
                *scale,
                &config,
                &machine,
                crb,
                point_emu(),
                &session.harness,
            )?;
            let run = &runs[0];
            let m = &run.measurement;
            let lookups = m.ccr.stats.reuse_hits + m.ccr.stats.reuse_misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                m.ccr.stats.reuse_hits as f64 / lookups as f64
            };
            let stats = &m.ccr.stats.crb;
            let text = format!(
                "{} base {} ccr {} speedup {:.6} hit_rate {:.6} regions {}\n",
                run.name,
                m.base.stats.cycles,
                m.ccr.stats.cycles,
                m.speedup(),
                hit_rate,
                run.compiled.regions.len()
            );
            let record = RunRecord {
                timestamp: session.timestamp,
                commit: session.commit.clone(),
                config_hash: crate::config_hash(&machine, &crb),
                source: "serve".to_string(),
                workload: run.name.to_string(),
                input: input_tag(*input).to_string(),
                scale: u64::from(*scale),
                base_cycles: m.base.stats.cycles,
                ccr_cycles: m.ccr.stats.cycles,
                speedup: m.speedup(),
                hit_rate,
                miss_causes: [
                    stats.miss_cold,
                    stats.miss_mismatch,
                    stats.miss_capacity,
                    stats.miss_conflict,
                    stats.miss_invalidated,
                ],
                regions: run.compiled.regions.len() as u64,
                wall_ms: run.wall_ms,
                sim_cycles_per_host_sec: ccr_analyze::BenchWorkload::host_throughput(
                    m.base.stats.cycles,
                    m.ccr.stats.cycles,
                    run.wall_ms,
                ),
                host_util_pct: 0.0,
                fingerprint: String::new(),
                points_per_sec: 0.0,
            };
            Ok((text, 1, vec![record]))
        }
    }
}

/// A blocking protocol client: one connection, submit-and-poll.
/// `ccr submit` and the protocol tests are thin wrappers over this.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

/// One completed submission as the client saw it.
#[derive(Clone, Debug)]
pub struct ClientResult {
    /// Request id the server assigned.
    pub id: u64,
    /// Rendered result text (byte-identical to the one-shot CLI's).
    pub text: String,
    /// Requested points the submission covered.
    pub points: u64,
    /// Host wall time the request took server-side, ms.
    pub wall_ms: u64,
    /// Cumulative engine result-cache hits at reply time.
    pub cache_hits: u64,
    /// Cumulative engine result-cache misses at reply time.
    pub cache_misses: u64,
}

impl Client {
    /// Connects to a serve session.
    ///
    /// # Errors
    ///
    /// One-line connect failures naming the address.
    pub fn connect(bind: &Bind) -> Result<Client, String> {
        let conn = match bind {
            Bind::Tcp(port) => Conn::Tcp(
                TcpStream::connect(("127.0.0.1", *port))
                    .map_err(|e| format!("127.0.0.1:{port}: {e}"))?,
            ),
            #[cfg(unix)]
            Bind::Unix(path) => Conn::Unix(
                UnixStream::connect(path).map_err(|e| format!("{}: {e}", path.display()))?,
            ),
        };
        let writer = conn.try_clone().map_err(|e| format!("connect: {e}"))?;
        Ok(Client {
            reader: BufReader::new(conn),
            writer,
        })
    }

    /// Sends one raw request line and returns the parsed reply.
    ///
    /// # Errors
    ///
    /// Transport failures and `ok:false` replies (as the server's
    /// one-line `error`).
    pub fn roundtrip(&mut self, request: &str) -> Result<Value, String> {
        writeln!(self.writer, "{request}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".to_string());
        }
        let v = value::parse(line.trim()).map_err(|e| format!("bad reply: {e:?}\n{line}"))?;
        if v.get("ok").and_then(Value::as_bool) == Some(false) {
            return Err(v.str_field("error").to_string());
        }
        Ok(v)
    }

    /// Submits an experiment or workload request and polls until the
    /// server finishes it.
    ///
    /// # Errors
    ///
    /// Transport failures, refused submissions (unknown name, full
    /// queue), and failed executions.
    pub fn submit_and_wait(&mut self, submit_request: &str) -> Result<ClientResult, String> {
        let reply = self.roundtrip(submit_request)?;
        let id = reply
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("submit reply carried no id")?;
        let poll = {
            let mut w = JsonWriter::new();
            w.obj_begin();
            w.key("req_v").u64_val(REQ_VERSION);
            w.key("op").str_val("results");
            w.key("id").u64_val(id);
            w.obj_end();
            w.finish()
        };
        loop {
            let reply = self.roundtrip(&poll)?;
            if reply.str_field("state") == "done" {
                return Ok(ClientResult {
                    id,
                    text: reply.str_field("text").to_string(),
                    points: reply.u64_field("points"),
                    wall_ms: reply.u64_field("wall_ms"),
                    cache_hits: reply.u64_field("cache_hits"),
                    cache_misses: reply.u64_field("cache_misses"),
                });
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Asks the server to shut down once its queue drains.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("req_v").u64_val(REQ_VERSION);
        w.key("op").str_val("shutdown");
        w.obj_end();
        self.roundtrip(&w.finish()).map(|_| ())
    }
}

/// Builds the submit request line for an experiment.
pub fn submit_exp_request(name: &str) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("req_v").u64_val(REQ_VERSION);
    w.key("op").str_val("submit");
    w.key("exp").str_val(name);
    w.obj_end();
    w.finish()
}

/// Builds the submit request line for a single workload point.
pub fn submit_point_request(
    workload: &str,
    input: InputSet,
    scale: u32,
    entries: usize,
    instances: usize,
) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("req_v").u64_val(REQ_VERSION);
    w.key("op").str_val("submit");
    w.key("workload").str_val(workload);
    w.key("input").str_val(input_tag(input));
    w.key("scale").u64_val(u64::from(scale));
    w.key("entries").u64_val(entries as u64);
    w.key("instances").u64_val(instances as u64);
    w.obj_end();
    w.finish()
}

/// Measures the service-throughput baseline `ccr bench
/// --serve-clients N` records: `clients` synthetic clients
/// concurrently sweeping the same workload selection through one
/// shared engine (maximum request overlap, so every duplicated point
/// dedups). Returns `(points, points_per_sec)` where `points` counts
/// requested points across all clients, before dedup — the service
/// throughput a fully-overlapping client population would see.
///
/// # Errors
///
/// The first failing workload's error.
#[allow(clippy::too_many_arguments)]
pub fn synthetic_client_baseline(
    engine: &Engine,
    clients: usize,
    names: &[&'static str],
    input: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
) -> Result<(u64, f64), String> {
    let started = Instant::now();
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|_| {
                scope.spawn(move || {
                    engine
                        .run_selected(
                            names,
                            input,
                            scale,
                            config,
                            machine,
                            crb,
                            emu,
                            &Harness::disabled(),
                        )
                        .map(|_| ())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for result in results {
        result?;
    }
    let points = (clients.max(1) * names.len()) as u64;
    let wall = started.elapsed().as_secs_f64();
    let points_per_sec = if wall > 0.0 {
        points as f64 / wall
    } else {
        0.0
    };
    Ok((points, points_per_sec))
}

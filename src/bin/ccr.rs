//! `ccr` — command-line driver for the CCR framework.
//!
//! ```text
//! ccr suite [--input train|ref] [--scale N] [--entries E] [--instances C]
//!           [--jobs N]
//! ccr run <benchmark|file.ccr> [--entries E] [--instances C] [--function-level]
//!         [--telemetry DIR] [--jobs N]
//! ccr profile <benchmark|file.ccr> [--telemetry DIR] [--sample-period N]
//!             [--entries E] [--instances C] [--function-level] [--top N]
//! ccr analyze <DIR> [--top N] [--out DIR]
//! ccr diff <BASE> <NEW> [--thresholds default|none] [--force]
//!          [--max-cycle-regress-pct X] [--max-hit-rate-drop-pp X]
//!          [--max-speedup-drop-pct X]
//! ccr bench [--input train|ref] [--scale N] [--entries E] [--instances C]
//!           [--only NAME[,NAME...]] [--out FILE] [--jobs N] [--host-reps N]
//! ccr exp <NAME>... | --all [--jobs N] [--out DIR]
//! ccr exp --list
//! ccr report [--store FILE] [--out DIR] [--thresholds default|none]
//!            [--max-cycle-regress-pct X] [--max-hit-rate-drop-pp X]
//!            [--max-speedup-drop-pct X] [--max-host-throughput-drop-pct X]
//! ccr report import <FILE>... [--store FILE] [--commit HASH] [--at TS]
//! ccr fingerprint <benchmark|file.ccr>... [--window K] [--out DIR] [--jobs N]
//! ccr fingerprint --compare <A.fp.jsonl> <B.fp.jsonl> [--out DIR]
//! ccr snapshot save <benchmark|file.ccr> --at-cycle N [--out FILE] [--window K]
//! ccr snapshot restore <FILE>
//! ccr regions <benchmark|file.ccr>
//! ccr potential <benchmark|file.ccr>
//! ccr print <benchmark> [--annotated]
//! ccr trace <benchmark|file.ccr> [--limit N]
//! ccr list
//! ```
//!
//! With `--telemetry DIR`, `ccr run` additionally writes
//! `DIR/events.jsonl` (one versioned JSON event per line: compile pass
//! spans, region-formation rejections, the per-region reuse timeline,
//! interval IPC windows, and CRB eviction/conflict/invalidation
//! events) and `DIR/report.json` (the full run report; see
//! `ccr::runreport`). The text output and every reported number are
//! identical with and without the flag.
//!
//! `ccr profile` is `ccr run --telemetry` plus cycle attribution: the
//! simulation charges every cycle to a stall bucket keyed by the
//! executing function, classifies every CRB miss by cause, and emits
//! periodic call-stack samples — then runs the analyzer, leaving
//! `DIR/analysis.json` (with its `attribution` section),
//! `DIR/trace.json`, `DIR/profile.folded` (collapsed stacks), and
//! `DIR/flamegraph.svg` (self-contained, deterministic SVG). Cycle
//! counts are bit-identical to an unprofiled `ccr run`.
//!
//! `ccr analyze` reads those artifacts back and writes
//! `analysis.json` (per-region reuse profiles, CRB pressure, IPC
//! percentiles — deterministic bytes) and a Chrome-trace `trace.json`
//! (load it in `chrome://tracing` or Perfetto); on profiled captures
//! it also refreshes `profile.folded` + `flamegraph.svg`. `ccr diff`
//! compares two runs — telemetry directories, saved `analysis.json`
//! files, or `BENCH_*.json` snapshots — and exits with status 2 when
//! a regression threshold is breached, which is what CI gates on.
//! `ccr bench` runs the built-in suite and snapshots `BENCH_ccr.json`,
//! the committed performance baseline.
//!
//! Every measuring command (`ccr bench`, `ccr exp`, `ccr profile`)
//! also appends its measurements to the append-only cross-run store —
//! `runs/store.jsonl` by default, `--store FILE` to redirect,
//! `--no-store` to opt out, `--at TS` to pin the record timestamp.
//! `ccr report` reads the store back and renders per-series trend
//! tables (speedup / hit rate / miss-cause mix / host throughput)
//! plus first-regression flags: for each (workload, input, scale,
//! config-hash) series and each gated metric, the earliest adjacent
//! pair breaching the thresholds is flagged as the regression's
//! introduction point, and the command exits 2 — the same contract
//! `ccr diff` has. `ccr report import` backfills a store from saved
//! `BENCH_*.json` / `analysis.json` artifacts. See DESIGN.md §11.
//!
//! `ccr exp` is the declarative experiment engine (`ccr-bench`'s
//! `exp` module): it plans the selected experiment specs into a
//! deduplicated set of compile and simulation units — each distinct
//! (workload, region-config) pair compiled once, each distinct sweep
//! point simulated once across experiments — runs them in parallel,
//! and renders each figure's tables byte-identically to the retired
//! per-figure binaries. `--out DIR` writes `<name>.txt` plus
//! `<name>.<table>.csv`; without it the tables go to stdout and the
//! plan log to stderr. See DESIGN.md §10.
//!
//! `ccr fingerprint` runs each named workload under the simulator's
//! streaming determinism fingerprint (an FNV-1a fold over the full
//! architectural + CRB state, chained every `--window` cycles) and
//! prints the final chain hash plus every per-window digest; `--out
//! DIR` additionally writes one `<name>.fp.jsonl` digest file per
//! workload and a `chains.txt` summary for CI `cmp` gating. `ccr
//! fingerprint --compare A B` bisects two digest files to the exact
//! first divergent cycle window (chained hashes make the first
//! mismatch the first divergence), dumps a state snapshot at the last
//! agreed boundary when the workload is locally reproducible, and
//! exits 2 — the `ccr diff` contract. `ccr snapshot save/restore`
//! captures the complete mid-run simulation state at a cycle as
//! versioned `{"snap_v":1}` JSONL and resumes it later with
//! bit-identical final statistics; `ccr run --save-snapshot FILE
//! --snapshot-cycle N` / `--restore-snapshot FILE` does the same
//! inside a full measurement, and `ccr exp --checkpoint FILE` makes
//! long sweeps crash-resumable at simulation-unit granularity. See
//! DESIGN.md §13.
//!
//! `--jobs N` (or the `CCR_JOBS` environment variable; `0` = one per
//! hardware thread) fans independent compiles and simulations out
//! over N worker threads. Parallelism is a host concern only: every
//! simulated statistic is bit-identical to a serial run — just the
//! `wall_ms` numbers change.
//!
//! A `<benchmark>` is one of the thirteen built-in workload names
//! (`ccr list`, plus the `bitcount` smoke workload); a `file.ccr` is
//! a textual-IR program as produced by `ccr print`.

use std::process::ExitCode;

use ccr::ir::Program;
use ccr::profile::EmuConfig;
use ccr::regions::RegionConfig;
use ccr::report::{pct, speedup, Table};
use ccr::sim::{CrbConfig, MachineConfig, SimSession};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, CompileConfig};

/// A CLI failure. `Usage` errors (bad subcommand, bad flags, missing
/// arguments) get the usage text appended; `Failure` errors (a
/// command that started and could not finish — missing files,
/// unparseable input, simulation limits) print exactly one line.
/// Both exit with status 1.
enum CliError {
    Usage(String),
    Failure(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Failure(msg)
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(CliError::Failure(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ccr suite [--input train|ref] [--scale N] [--entries E] [--instances C]
            [--jobs N]
  ccr run <benchmark|file.ccr> [--entries E] [--instances C] [--function-level]
          [--telemetry DIR] [--jobs N]
  ccr profile <benchmark|file.ccr> [--telemetry DIR] [--sample-period N]
              [--entries E] [--instances C] [--function-level] [--top N]
  ccr analyze <DIR> [--top N] [--out DIR]
  ccr diff <BASE> <NEW> [--thresholds default|none] [--force]
           [--max-cycle-regress-pct X] [--max-hit-rate-drop-pp X]
           [--max-speedup-drop-pct X]
  ccr bench [--input train|ref] [--scale N] [--entries E] [--instances C]
            [--only NAME[,NAME...]] [--out FILE] [--jobs N] [--host-reps N]
  ccr exp <NAME>... | --all [--jobs N] [--out DIR]
  ccr exp --list
  ccr serve --socket PATH | --port N [--queue N] [--jobs N]
            [--harness-out FILE] [--store FILE] [--no-store] [--at TS]
  ccr submit --socket PATH | --port N <EXPERIMENT>...
  ccr submit --socket PATH | --port N --workload NAME [--input train|ref]
             [--scale N] [--entries E] [--instances C]
  (submit also takes [--shutdown] — ask the server to exit after the
   submissions; bench also takes [--serve-clients N] — measure service
   throughput with N concurrent synthetic clients)
  ccr report [--store FILE] [--out DIR] [--thresholds default|none]
             [--max-cycle-regress-pct X] [--max-hit-rate-drop-pp X]
             [--max-speedup-drop-pct X] [--max-host-throughput-drop-pct X]
  ccr report import <FILE>... [--store FILE] [--commit HASH] [--at TS]
  ccr fingerprint <benchmark|file.ccr>... [--window K] [--out DIR] [--jobs N]
                  [--input train|ref] [--scale N] [--entries E] [--instances C]
  ccr fingerprint --compare <A.fp.jsonl> <B.fp.jsonl> [--out DIR]
  ccr snapshot save <benchmark|file.ccr> --at-cycle N [--out FILE] [--window K]
               [--input train|ref] [--scale N] [--entries E] [--instances C]
  ccr snapshot restore <FILE> [--entries E] [--instances C]
  (run also takes [--save-snapshot FILE --snapshot-cycle N] and
   [--restore-snapshot FILE]; exp also takes [--checkpoint FILE] and
   [--fingerprint] — resumable sweeps and stored trajectory hashes)
  (bench/exp/profile also take [--store FILE] [--no-store] [--at TS])
  (suite/bench/exp/profile also take [--progress[=plain|json]] [--no-progress]
   [--harness-out FILE] — live progress to stderr and a structured
   harness.jsonl event log; simulated results are bit-identical either way)
  ccr regions <benchmark|file.ccr>
  ccr potential <benchmark|file.ccr>
  ccr print <benchmark> [--annotated]
  ccr trace <benchmark|file.ccr> [--limit N]
  ccr list";

/// Parsed flag set shared by the subcommands.
struct Flags {
    input: InputSet,
    scale: u32,
    entries: usize,
    instances: usize,
    function_level: bool,
    annotated: bool,
    limit: u64,
    sample_period: u64,
    telemetry: Option<String>,
    top: usize,
    out: Option<String>,
    thresholds: String,
    force: bool,
    only: Option<String>,
    all: bool,
    list: bool,
    jobs: Option<usize>,
    host_reps: usize,
    max_cycle_regress_pct: Option<f64>,
    max_hit_rate_drop_pp: Option<f64>,
    max_speedup_drop_pct: Option<f64>,
    max_host_throughput_drop_pct: Option<f64>,
    store: Option<String>,
    no_store: bool,
    commit: Option<String>,
    at: Option<u64>,
    progress: Option<String>,
    no_progress: bool,
    harness_out: Option<String>,
    window: Option<u64>,
    at_cycle: Option<u64>,
    snapshot_cycle: Option<u64>,
    compare: bool,
    checkpoint: Option<String>,
    fingerprint: bool,
    save_snapshot: Option<String>,
    restore_snapshot: Option<String>,
    socket: Option<String>,
    port: Option<u16>,
    queue: Option<usize>,
    workload: Option<String>,
    shutdown: bool,
    serve_clients: Option<usize>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        input: InputSet::Train,
        scale: 1,
        entries: 128,
        instances: 8,
        function_level: false,
        annotated: false,
        limit: 40,
        sample_period: ccr::sim::DEFAULT_SAMPLE_PERIOD,
        telemetry: None,
        top: 10,
        out: None,
        thresholds: "default".to_string(),
        force: false,
        only: None,
        all: false,
        list: false,
        jobs: None,
        host_reps: 1,
        max_cycle_regress_pct: None,
        max_hit_rate_drop_pp: None,
        max_speedup_drop_pct: None,
        max_host_throughput_drop_pct: None,
        store: None,
        no_store: false,
        commit: None,
        at: None,
        progress: None,
        no_progress: false,
        harness_out: None,
        window: None,
        at_cycle: None,
        snapshot_cycle: None,
        compare: false,
        checkpoint: None,
        fingerprint: false,
        save_snapshot: None,
        restore_snapshot: None,
        socket: None,
        port: None,
        queue: None,
        workload: None,
        shutdown: false,
        serve_clients: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--input" => {
                flags.input = match take("--input")?.as_str() {
                    "train" => InputSet::Train,
                    "ref" => InputSet::Ref,
                    other => return Err(format!("unknown input set `{other}`")),
                };
            }
            "--scale" => {
                flags.scale = take("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale value".to_string())?;
            }
            "--entries" => {
                flags.entries = take("--entries")?
                    .parse()
                    .map_err(|_| "bad --entries value".to_string())?;
            }
            "--instances" => {
                flags.instances = take("--instances")?
                    .parse()
                    .map_err(|_| "bad --instances value".to_string())?;
            }
            "--function-level" => flags.function_level = true,
            "--annotated" => flags.annotated = true,
            "--limit" => {
                flags.limit = take("--limit")?
                    .parse()
                    .map_err(|_| "bad --limit value".to_string())?;
            }
            "--sample-period" => {
                flags.sample_period = take("--sample-period")?
                    .parse()
                    .map_err(|_| "bad --sample-period value".to_string())?;
                if flags.sample_period == 0 {
                    return Err("--sample-period must be at least 1".to_string());
                }
            }
            "--telemetry" => flags.telemetry = Some(take("--telemetry")?),
            "--top" => {
                flags.top = take("--top")?
                    .parse()
                    .map_err(|_| "bad --top value".to_string())?;
            }
            "--out" => flags.out = Some(take("--out")?),
            "--thresholds" => {
                flags.thresholds = take("--thresholds")?;
                if !matches!(flags.thresholds.as_str(), "default" | "none") {
                    return Err(format!(
                        "--thresholds must be `default` or `none`, got `{}`",
                        flags.thresholds
                    ));
                }
            }
            "--force" => flags.force = true,
            "--only" => flags.only = Some(take("--only")?),
            "--all" => flags.all = true,
            "--list" => flags.list = true,
            "--jobs" => {
                flags.jobs = Some(
                    take("--jobs")?
                        .parse()
                        .map_err(|_| "bad --jobs value".to_string())?,
                );
            }
            "--max-cycle-regress-pct" => {
                flags.max_cycle_regress_pct = Some(
                    take("--max-cycle-regress-pct")?
                        .parse()
                        .map_err(|_| "bad --max-cycle-regress-pct value".to_string())?,
                );
            }
            "--max-hit-rate-drop-pp" => {
                flags.max_hit_rate_drop_pp = Some(
                    take("--max-hit-rate-drop-pp")?
                        .parse()
                        .map_err(|_| "bad --max-hit-rate-drop-pp value".to_string())?,
                );
            }
            "--max-speedup-drop-pct" => {
                flags.max_speedup_drop_pct = Some(
                    take("--max-speedup-drop-pct")?
                        .parse()
                        .map_err(|_| "bad --max-speedup-drop-pct value".to_string())?,
                );
            }
            "--host-reps" => {
                flags.host_reps = take("--host-reps")?
                    .parse()
                    .map_err(|_| "bad --host-reps value".to_string())?;
                if flags.host_reps == 0 {
                    return Err("--host-reps must be at least 1".to_string());
                }
            }
            "--max-host-throughput-drop-pct" => {
                flags.max_host_throughput_drop_pct = Some(
                    take("--max-host-throughput-drop-pct")?
                        .parse()
                        .map_err(|_| "bad --max-host-throughput-drop-pct value".to_string())?,
                );
            }
            "--store" => flags.store = Some(take("--store")?),
            "--no-store" => flags.no_store = true,
            "--progress" => flags.progress = Some("plain".to_string()),
            "--no-progress" => flags.no_progress = true,
            "--harness-out" => flags.harness_out = Some(take("--harness-out")?),
            "--window" => {
                flags.window = Some(
                    take("--window")?
                        .parse()
                        .map_err(|_| "bad --window value".to_string())?,
                );
                if flags.window == Some(0) {
                    return Err("--window must be at least 1 cycle".to_string());
                }
            }
            "--at-cycle" => {
                flags.at_cycle = Some(
                    take("--at-cycle")?
                        .parse()
                        .map_err(|_| "bad --at-cycle value".to_string())?,
                );
            }
            "--snapshot-cycle" => {
                flags.snapshot_cycle = Some(
                    take("--snapshot-cycle")?
                        .parse()
                        .map_err(|_| "bad --snapshot-cycle value".to_string())?,
                );
            }
            "--socket" => flags.socket = Some(take("--socket")?),
            "--port" => {
                flags.port = Some(
                    take("--port")?
                        .parse()
                        .map_err(|_| "bad --port value".to_string())?,
                );
            }
            "--queue" => {
                flags.queue = Some(
                    take("--queue")?
                        .parse()
                        .map_err(|_| "bad --queue value".to_string())?,
                );
                if flags.queue == Some(0) {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--workload" => flags.workload = Some(take("--workload")?),
            "--shutdown" => flags.shutdown = true,
            "--serve-clients" => {
                flags.serve_clients = Some(
                    take("--serve-clients")?
                        .parse()
                        .map_err(|_| "bad --serve-clients value".to_string())?,
                );
                if flags.serve_clients == Some(0) {
                    return Err("--serve-clients must be at least 1".to_string());
                }
            }
            "--compare" => flags.compare = true,
            "--checkpoint" => flags.checkpoint = Some(take("--checkpoint")?),
            "--fingerprint" => flags.fingerprint = true,
            "--save-snapshot" => flags.save_snapshot = Some(take("--save-snapshot")?),
            "--restore-snapshot" => flags.restore_snapshot = Some(take("--restore-snapshot")?),
            "--commit" => flags.commit = Some(take("--commit")?),
            "--at" => {
                flags.at = Some(
                    take("--at")?
                        .parse()
                        .map_err(|_| "bad --at value (unix seconds)".to_string())?,
                );
            }
            other if other.starts_with("--progress=") => {
                let mode = other.trim_start_matches("--progress=");
                if ccr::ProgressMode::parse(mode).is_none() {
                    return Err(format!(
                        "--progress must be `plain` or `json`, got `{mode}`"
                    ));
                }
                flags.progress = Some(mode.to_string());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn dispatch(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage_err("missing subcommand"));
    };
    let flags = parse_flags(&args[1..]).map_err(usage_err)?;
    let ok = |r: Result<(), CliError>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "list" => {
            for name in NAMES {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "suite" => ok(cmd_suite(&flags)),
        "run" => ok(cmd_run(&flags)),
        "profile" => ok(cmd_profile(&flags)),
        "analyze" => ok(cmd_analyze(&flags)),
        "diff" => cmd_diff(&flags),
        "bench" => ok(cmd_bench(&flags)),
        "exp" => ok(cmd_exp(&flags)),
        "serve" => ok(cmd_serve(&flags)),
        "submit" => ok(cmd_submit(&flags)),
        "report" => cmd_report(&flags),
        "fingerprint" => cmd_fingerprint(&flags),
        "snapshot" => ok(cmd_snapshot(&flags)),
        "regions" => ok(cmd_regions(&flags)),
        "potential" => ok(cmd_potential(&flags)),
        "print" => ok(cmd_print(&flags)),
        "trace" => ok(cmd_trace(&flags)),
        other => Err(usage_err(format!("unknown subcommand `{other}`"))),
    }
}

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 500_000_000,
        max_depth: 1024,
    }
}

/// Builds the harness from `--progress` / `--no-progress` /
/// `--harness-out`. Disabled (a guaranteed no-op) unless some sink
/// was requested; `--no-progress` silences the stderr stream but
/// leaves a requested `--harness-out` file active.
fn harness_of(flags: &Flags) -> Result<ccr::Harness, CliError> {
    let progress = match (&flags.progress, flags.no_progress) {
        (_, true) | (None, _) => ccr::ProgressMode::Off,
        (Some(mode), false) => ccr::ProgressMode::parse(mode).ok_or_else(|| {
            usage_err(format!(
                "--progress must be `plain` or `json`, got `{mode}`"
            ))
        })?,
    };
    let opts = ccr::HarnessOptions {
        progress,
        out: flags.harness_out.as_ref().map(std::path::PathBuf::from),
        ..ccr::HarnessOptions::default()
    };
    ccr::Harness::start(&opts).map_err(|e| CliError::Failure(format!("harness: {e}")))
}

/// Ends a harnessed command: stops the monitor, emits the
/// `harness_summary` event, and renders the summary to stderr (off
/// when the harness is disabled, so undecorated runs stay silent).
fn finish_harness(harness: &ccr::Harness) -> Option<ccr::HarnessSummary> {
    let summary = harness.finish()?;
    eprint!("{}", summary.render());
    Some(summary)
}

fn crb_of(flags: &Flags) -> CrbConfig {
    CrbConfig {
        entries: flags.entries,
        instances: flags.instances,
        ..CrbConfig::paper()
    }
}

fn compile_config(flags: &Flags) -> CompileConfig {
    CompileConfig {
        region: RegionConfig {
            trial_instances: flags.instances,
            function_level: flags.function_level,
            ..RegionConfig::paper()
        },
        emu: emu(),
        ..CompileConfig::paper()
    }
}

/// Loads a program: a built-in benchmark name or a `.ccr` text file.
fn load_program(spec: &str, input: InputSet, scale: u32) -> Result<Program, String> {
    if let Some(p) = build(spec, input, scale) {
        return Ok(p);
    }
    if spec.ends_with(".ccr") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let p = ccr::ir::parse_program(&text).map_err(|e| format!("{spec}: {e}"))?;
        ccr::ir::verify_program(&p).map_err(|e| format!("{spec}: {e}"))?;
        return Ok(p);
    }
    Err(format!(
        "`{spec}` is neither a known benchmark (see `ccr list`) nor a .ccr file"
    ))
}

fn target_of(flags: &Flags) -> Result<String, CliError> {
    flags
        .positional
        .first()
        .cloned()
        .ok_or_else(|| usage_err("missing <benchmark|file.ccr>"))
}

fn cmd_suite(flags: &Flags) -> Result<(), CliError> {
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let harness = harness_of(flags)?;
    // One-shot run through a fresh engine: every cache lookup misses,
    // so the statistics match the historical uncached path exactly.
    let engine = ccr_bench::Engine::new(ccr::resolve_jobs(flags.jobs));
    let runs = engine.run_selected(
        &NAMES,
        flags.input,
        flags.scale,
        &compile_config(flags),
        &machine,
        crb,
        emu(),
        &harness,
    )?;
    finish_harness(&harness);
    let mut table = Table::new([
        "benchmark",
        "base cycles",
        "ccr cycles",
        "speedup",
        "eliminated",
    ]);
    let mut speedups = Vec::new();
    for run in &runs {
        let m = &run.measurement;
        speedups.push(m.speedup());
        table.row([
            run.name.to_string(),
            m.base.stats.cycles.to_string(),
            m.ccr.stats.cycles.to_string(),
            speedup(m.speedup()),
            pct(m.eliminated_fraction()),
        ]);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    table.row([
        "average".to_string(),
        String::new(),
        String::new(),
        speedup(avg),
        String::new(),
    ]);
    println!(
        "CCR suite — {:?} input, scale {}, CRB {}x{}",
        flags.input, flags.scale, flags.entries, flags.instances
    );
    println!("{table}");
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<(), CliError> {
    if flags.save_snapshot.is_some() || flags.restore_snapshot.is_some() {
        if flags.save_snapshot.is_some() && flags.restore_snapshot.is_some() {
            return Err(usage_err(
                "--save-snapshot and --restore-snapshot are mutually exclusive",
            ));
        }
        if flags.telemetry.is_some() {
            return Err(usage_err(
                "--telemetry cannot be combined with --save-snapshot/--restore-snapshot",
            ));
        }
        if flags.save_snapshot.is_some() && flags.snapshot_cycle.is_none() {
            return Err(usage_err("--save-snapshot needs --snapshot-cycle N"));
        }
        return cmd_run_snapshotted(flags);
    }
    if flags.snapshot_cycle.is_some() {
        return Err(usage_err("--snapshot-cycle needs --save-snapshot FILE"));
    }
    let spec = target_of(flags)?;
    let train = load_program(&spec, InputSet::Train, flags.scale)?;
    let target = load_program(&spec, flags.input, flags.scale)?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let compiled =
        compile_ccr(&train, &target, &compile_config(flags)).map_err(|e| e.to_string())?;
    let jobs = ccr::resolve_jobs(flags.jobs);

    let m = match &flags.telemetry {
        None => {
            ccr::measure_par(&compiled, &machine, crb, emu(), jobs).map_err(|e| e.to_string())?
        }
        Some(dir) => {
            use ccr::telemetry::{emit, JsonlSink, SCHEMA_VERSION};
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let events_path = dir.join("events.jsonl");
            let mut sink = JsonlSink::create(&events_path)
                .map_err(|e| format!("{}: {e}", events_path.display()))?;
            emit!(&mut sink, "run_begin",
                schema: u64::from(SCHEMA_VERSION),
                workload: spec.as_str(),
                input: input_name(flags.input),
                scale: flags.scale,
            );
            ccr::emit_compile_events(&compiled.telemetry, &mut sink);
            let m = ccr::measure_traced_par(
                &compiled,
                &machine,
                crb,
                emu(),
                ccr::sim::DEFAULT_IPC_WINDOW,
                jobs,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            sink.finish()
                .map_err(|e| format!("{}: {e}", events_path.display()))?;
            let argv: Vec<String> = std::env::args().collect();
            let provenance = ccr::Provenance::new(&argv, &machine, &crb);
            let report = ccr::RunReport {
                workload: &spec,
                input: input_name(flags.input),
                scale: flags.scale,
                machine: &machine,
                crb: &crb,
                provenance: &provenance,
                compile: &compiled.telemetry,
                regions: &compiled.regions,
                measurement: &m,
            };
            let report_path = dir.join("report.json");
            let mut json = report.to_json();
            json.push('\n');
            std::fs::write(&report_path, json)
                .map_err(|e| format!("{}: {e}", report_path.display()))?;
            println!(
                "telemetry : {} + {}",
                events_path.display(),
                report_path.display()
            );
            m
        }
    };

    println!("program   : {spec}");
    println!("regions   : {}", compiled.regions.len());
    println!("baseline  : {} cycles", m.base.stats.cycles);
    println!(
        "with CCR  : {} cycles ({} hits / {} misses)",
        m.ccr.stats.cycles, m.ccr.stats.reuse_hits, m.ccr.stats.reuse_misses
    );
    println!(
        "speedup   : {}x  eliminated {}",
        speedup(m.speedup()),
        pct(m.eliminated_fraction())
    );
    Ok(())
}

fn input_name(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Ref => "ref",
    }
}

fn cmd_profile(flags: &Flags) -> Result<(), CliError> {
    use ccr::telemetry::{emit, JsonlSink, SCHEMA_VERSION};
    let spec = target_of(flags)?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let harness = harness_of(flags)?;
    harness.plan(1, 1, &[("scale", u64::from(flags.scale))]);
    let compile_label = format!("compile:{spec}:{}@{}", input_name(flags.input), flags.scale);
    harness.task_start("compile", &compile_label);
    let compile_start = std::time::Instant::now();
    // Registry benchmarks route through the engine's compile cache
    // (single profile runs always miss, so the compile is identical);
    // raw .ccr files have no registry key and compile directly.
    let engine = ccr_bench::Engine::new(1);
    let compiled = if build(&spec, InputSet::Train, flags.scale).is_some() {
        engine.compile_cache().get_or_compile(
            &spec,
            flags.input,
            flags.scale,
            &compile_config(flags),
        )?
    } else {
        let train = load_program(&spec, InputSet::Train, flags.scale)?;
        let target = load_program(&spec, flags.input, flags.scale)?;
        std::sync::Arc::new(
            compile_ccr(&train, &target, &compile_config(flags)).map_err(|e| e.to_string())?,
        )
    };
    harness.task_finish(
        "compile",
        &compile_label,
        compile_start.elapsed().as_millis() as u64,
        None,
    );

    // Default the output directory to one derived from the target, so
    // `ccr profile bitcount` works bare.
    let dir = flags.telemetry.clone().unwrap_or_else(|| {
        let stem = spec.trim_end_matches(".ccr").replace(['/', '\\'], "_");
        format!("{stem}-profile")
    });
    let dir = std::path::Path::new(&dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let events_path = dir.join("events.jsonl");
    let mut sink =
        JsonlSink::create(&events_path).map_err(|e| format!("{}: {e}", events_path.display()))?;
    emit!(&mut sink, "run_begin",
        schema: u64::from(SCHEMA_VERSION),
        workload: spec.as_str(),
        input: input_name(flags.input),
        scale: flags.scale,
        profiled: true,
    );
    ccr::emit_compile_events(&compiled.telemetry, &mut sink);
    let cfg = ccr::sim::TraceConfig {
        profile: true,
        sample_period: flags.sample_period,
        ..ccr::sim::TraceConfig::default()
    };
    let sim_label = format!("sim:profile:{spec}:{}", ccr::config_hash(&machine, &crb));
    harness.task_start("sim", &sim_label);
    let sim_start = std::time::Instant::now();
    let m = ccr::measure_profiled(&compiled, &machine, crb, emu(), &cfg, &mut sink)
        .map_err(|e| e.to_string())?;
    let sim_wall_ms = sim_start.elapsed().as_millis() as u64;
    harness.task_finish(
        "sim",
        &sim_label,
        sim_wall_ms,
        Some(m.base.stats.cycles + m.ccr.stats.cycles),
    );
    finish_harness(&harness);
    sink.finish()
        .map_err(|e| format!("{}: {e}", events_path.display()))?;
    let argv: Vec<String> = std::env::args().collect();
    let provenance = ccr::Provenance::new(&argv, &machine, &crb);
    let report = ccr::RunReport {
        workload: &spec,
        input: input_name(flags.input),
        scale: flags.scale,
        machine: &machine,
        crb: &crb,
        provenance: &provenance,
        compile: &compiled.telemetry,
        regions: &compiled.regions,
        measurement: &m,
    };
    let report_path = dir.join("report.json");
    let mut json = report.to_json();
    json.push('\n');
    std::fs::write(&report_path, json).map_err(|e| format!("{}: {e}", report_path.display()))?;

    // Read the capture back through the same path `ccr analyze` uses:
    // the committed artifacts are exactly what an offline analysis of
    // this directory would produce.
    let data = ccr_analyze::load_run(dir).map_err(|e| e.to_string())?;
    let analysis = ccr_analyze::analyze(&data, flags.top);
    let written = write_analysis_artifacts(dir, &data, &analysis)?;
    print!("{}", analysis.summary());
    println!(
        "samples    : {} cycle samples (period {})",
        data.cycle_samples.len(),
        flags.sample_period
    );
    println!(
        "wrote      : {} + {} + {written}",
        events_path.display(),
        report_path.display()
    );
    // Store hook: one record from the analysis totals, with the miss
    // mix the profiled run classified.
    let rec = ccr_analyze::RunRecord {
        timestamp: record_timestamp(flags),
        commit: ccr::git_commit_id().to_string(),
        config_hash: analysis.config_hash.clone().unwrap_or_default(),
        source: "profile".to_string(),
        workload: analysis.workload.clone(),
        input: analysis.input.clone(),
        scale: analysis.scale,
        base_cycles: analysis.base_cycles,
        ccr_cycles: analysis.ccr_cycles,
        speedup: analysis.speedup,
        hit_rate: analysis.hit_rate,
        miss_causes: analysis.miss_causes,
        regions: analysis.regions_formed,
        wall_ms: sim_wall_ms,
        sim_cycles_per_host_sec: ccr_analyze::BenchWorkload::host_throughput(
            analysis.base_cycles,
            analysis.ccr_cycles,
            sim_wall_ms,
        ),
        // A profile run is single-threaded host-side: no pool, no
        // utilization measurement.
        host_util_pct: 0.0,
        // Profiled runs go through the attributing simulator, which
        // has no fingerprint stream.
        fingerprint: String::new(),
        // One-shot run, not a serve session.
        points_per_sec: 0.0,
    };
    append_to_store(flags, &[rec])
}

/// Checks a telemetry directory has both run artifacts before any
/// analysis starts, so a wrong path fails with one clear line naming
/// the missing piece instead of a usage dump (or worse, a panic).
fn require_run_artifacts(dir: &std::path::Path) -> Result<(), String> {
    if !dir.is_dir() {
        return Err(format!(
            "{}: not a directory (expected a `ccr run --telemetry` or `ccr profile` output)",
            dir.display()
        ));
    }
    for name in ["events.jsonl", "report.json"] {
        if !dir.join(name).is_file() {
            return Err(format!(
                "{}: missing {name} (expected a `ccr run --telemetry` or `ccr profile` output)",
                dir.display()
            ));
        }
    }
    Ok(())
}

/// Writes `analysis.json` + `trace.json` (and, when the capture was
/// profiled, `profile.folded` + `flamegraph.svg`) for a loaded run.
/// Returns the human-readable list of files written.
fn write_analysis_artifacts(
    out: &std::path::Path,
    data: &ccr_analyze::RunData,
    analysis: &ccr_analyze::Analysis,
) -> Result<String, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut written = Vec::new();
    let mut write = |name: &str, contents: String| -> Result<(), String> {
        let path = out.join(name);
        std::fs::write(&path, contents).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push(path.display().to_string());
        Ok(())
    };
    write("analysis.json", analysis.to_json())?;
    write("trace.json", ccr_analyze::chrome_trace(data))?;
    if !data.cycle_samples.is_empty() {
        let folded = ccr_analyze::fold_samples(data);
        write("flamegraph.svg", ccr_analyze::flamegraph_svg(&folded))?;
        write("profile.folded", folded)?;
    }
    Ok(written.join(" + "))
}

fn cmd_analyze(flags: &Flags) -> Result<(), CliError> {
    let dir = flags
        .positional
        .first()
        .ok_or_else(|| usage_err("missing <DIR> (a `ccr run --telemetry` output directory)"))?;
    let dir = std::path::Path::new(dir);
    require_run_artifacts(dir)?;
    let data = ccr_analyze::load_run(dir).map_err(|e| e.to_string())?;
    let analysis = ccr_analyze::analyze(&data, flags.top);
    let out = flags
        .out
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.to_path_buf());
    let written = write_analysis_artifacts(&out, &data, &analysis)?;
    print!("{}", analysis.summary());
    println!("wrote      : {written}");
    Ok(())
}

/// One side of a `ccr diff`: a run (telemetry dir or saved
/// `analysis.json`) or a bench suite snapshot.
enum DiffSide {
    Run(ccr_analyze::diff::RunSnapshot),
    Bench(ccr_analyze::BenchReport),
}

fn load_diff_side(spec: &str, top: usize) -> Result<DiffSide, String> {
    let path = std::path::Path::new(spec);
    if path.is_dir() {
        require_run_artifacts(path)?;
        let data = ccr_analyze::load_run(path).map_err(|e| e.to_string())?;
        let analysis = ccr_analyze::analyze(&data, top);
        return Ok(DiffSide::Run((&analysis).into()));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
    let v = ccr_analyze::value::parse(text.trim()).map_err(|e| format!("{spec}: {e}"))?;
    if v.get("bench_schema_version").is_some() {
        return ccr_analyze::BenchReport::from_json(&text)
            .map(DiffSide::Bench)
            .map_err(|e| format!("{spec}: {e}"));
    }
    if v.get("analysis_schema_version").is_some() {
        return ccr_analyze::diff::RunSnapshot::from_analysis_json(&text)
            .map(DiffSide::Run)
            .map_err(|e| format!("{spec}: {e}"));
    }
    Err(format!(
        "{spec}: not a telemetry directory, analysis.json, or BENCH json"
    ))
}

fn thresholds_of(flags: &Flags) -> ccr_analyze::Thresholds {
    let mut t = match flags.thresholds.as_str() {
        "none" => ccr_analyze::Thresholds::none(),
        _ => ccr_analyze::Thresholds::default_gate(),
    };
    if flags.max_cycle_regress_pct.is_some() {
        t.max_cycle_regress_pct = flags.max_cycle_regress_pct;
    }
    if flags.max_hit_rate_drop_pp.is_some() {
        t.max_hit_rate_drop_pp = flags.max_hit_rate_drop_pp;
    }
    if flags.max_speedup_drop_pct.is_some() {
        t.max_speedup_drop_pct = flags.max_speedup_drop_pct;
    }
    if flags.max_host_throughput_drop_pct.is_some() {
        t.max_host_throughput_drop_pct = flags.max_host_throughput_drop_pct;
    }
    t
}

/// The run-store path a command appends to / reads from.
fn store_path(flags: &Flags) -> std::path::PathBuf {
    std::path::PathBuf::from(
        flags
            .store
            .as_deref()
            .unwrap_or(ccr_analyze::store::DEFAULT_STORE_PATH),
    )
}

/// Timestamp for new store records: `--at` when given (deterministic
/// runs, tests), the system clock otherwise.
fn record_timestamp(flags: &Flags) -> u64 {
    flags.at.unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    })
}

/// Appends a measuring command's records to the run store unless the
/// user opted out. The confirmation goes to stderr so piped table
/// output (the `ccr exp` bit-identity contract) stays clean.
fn append_to_store(flags: &Flags, records: &[ccr_analyze::RunRecord]) -> Result<(), CliError> {
    if flags.no_store || records.is_empty() {
        return Ok(());
    }
    let path = store_path(flags);
    ccr_analyze::RunStore::append(&path, records)?;
    eprintln!(
        "store: appended {} record(s) to {}",
        records.len(),
        path.display()
    );
    Ok(())
}

fn cmd_diff(flags: &Flags) -> Result<ExitCode, CliError> {
    let [base_spec, new_spec] = flags.positional.as_slice() else {
        return Err(usage_err("diff needs exactly two arguments: <BASE> <NEW>"));
    };
    let thresholds = thresholds_of(flags);
    let base = load_diff_side(base_spec, flags.top)?;
    let new = load_diff_side(new_spec, flags.top)?;
    let report = match (&base, &new) {
        (DiffSide::Run(b), DiffSide::Run(n)) => {
            ccr_analyze::diff_analyses(b, n, &thresholds, flags.force)?
        }
        (DiffSide::Bench(b), DiffSide::Bench(n)) => {
            ccr_analyze::diff_bench(b, n, &thresholds, flags.force)?
        }
        _ => {
            return Err(format!(
                "cannot compare a bench snapshot with a single run \
                 ({base_spec} vs {new_spec})"
            )
            .into())
        }
    };
    print!("{}", report.render());
    Ok(if report.breached() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_bench(flags: &Flags) -> Result<(), CliError> {
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let selected: Vec<&'static str> = match &flags.only {
        None => NAMES.to_vec(),
        Some(list) => {
            let mut out = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                let Some(&known) = NAMES.iter().find(|&&n| n == name) else {
                    return Err(format!("unknown workload `{name}` (see `ccr list`)").into());
                };
                out.push(known);
            }
            out
        }
    };
    if selected.is_empty() {
        return Err(usage_err("--only selected no workloads"));
    }
    let mut report = ccr_analyze::BenchReport {
        suite: "ccr".to_string(),
        input: input_name(flags.input).to_string(),
        scale: u64::from(flags.scale),
        config_hash: ccr::config_hash(&machine, &crb),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        git_commit: ccr::git_commit_id().to_string(),
        host_reps: flags.host_reps as u64,
        agg_sim_cycles_per_host_sec: 0.0,
        serve_clients: 0,
        serve_points_per_sec: 0.0,
        workloads: Vec::new(),
    };
    let harness = harness_of(flags)?;
    let runs = ccr_bench::run_selected_reps(
        &selected,
        flags.input,
        flags.scale,
        &compile_config(flags),
        &machine,
        crb,
        emu(),
        ccr::resolve_jobs(flags.jobs),
        None,
        &harness,
        flags.host_reps,
    )?;
    let harness_summary = finish_harness(&harness);
    for run in &runs {
        let m = &run.measurement;
        let lookups = m.ccr.stats.reuse_hits + m.ccr.stats.reuse_misses;
        report.workloads.push(ccr_analyze::BenchWorkload {
            name: run.name.to_string(),
            base_cycles: m.base.stats.cycles,
            ccr_cycles: m.ccr.stats.cycles,
            speedup: m.speedup(),
            hit_rate: if lookups == 0 {
                0.0
            } else {
                m.ccr.stats.reuse_hits as f64 / lookups as f64
            },
            regions: run.compiled.regions.len() as u64,
            wall_ms: run.wall_ms,
            sim_cycles_per_host_sec: ccr_analyze::BenchWorkload::host_throughput(
                m.base.stats.cycles,
                m.ccr.stats.cycles,
                run.wall_ms,
            ),
        });
    }
    report.agg_sim_cycles_per_host_sec = ccr_analyze::geomean_host_throughput(&report.workloads);
    // Optional service-throughput baseline: N synthetic clients
    // concurrently sweeping the same selection through one shared
    // engine — the fully-overlapping request population `ccr serve`
    // dedups. Skipped by default so the gate's timing is unchanged.
    if let Some(clients) = flags.serve_clients {
        let engine = ccr_bench::Engine::new(ccr::resolve_jobs(flags.jobs));
        let (points, points_per_sec) = ccr::serve::synthetic_client_baseline(
            &engine,
            clients,
            &selected,
            flags.input,
            flags.scale,
            &compile_config(flags),
            &machine,
            crb,
            emu(),
        )?;
        report.serve_clients = clients as u64;
        report.serve_points_per_sec = points_per_sec;
        eprintln!(
            "serve baseline: {clients} client(s), {points} point(s), \
             {points_per_sec:.2} points/s \
             (result cache: {} hit(s), {} miss(es))",
            engine.result_cache().hits(),
            engine.result_cache().misses()
        );
    }
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_ccr.json".to_string());
    std::fs::write(&out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    print!("{}", report.render());
    println!("wrote {out}");
    // Store hook: the snapshot's records, with the real miss-cause mix
    // from the live simulator stats (the BENCH file itself is
    // cause-lossy, so imports of it stay all-zero).
    let mut records =
        ccr_analyze::store::records_from_bench(&report, record_timestamp(flags), "bench");
    let host_util_pct = harness_summary
        .as_ref()
        .map(|s| s.utilization_pct)
        .unwrap_or(0.0);
    for (rec, run) in records.iter_mut().zip(&runs) {
        let crb = &run.measurement.ccr.stats.crb;
        rec.miss_causes = [
            crb.miss_cold,
            crb.miss_mismatch,
            crb.miss_capacity,
            crb.miss_conflict,
            crb.miss_invalidated,
        ];
        rec.host_util_pct = host_util_pct;
    }
    append_to_store(flags, &records)
}

/// `ccr exp`: the declarative experiment engine. Plans the selected
/// specs into a deduplicated set of compile and simulation units,
/// runs them in parallel, and renders each experiment exactly as its
/// legacy binary did (tables to stdout, or `<output>.txt` +
/// `<output>.<table>.csv` under `--out DIR`). The plan log — how many
/// points were requested and how many survived deduplication — goes
/// to stderr so piped table output stays clean.
fn cmd_exp(flags: &Flags) -> Result<(), CliError> {
    use ccr_bench::exp;
    let registry = exp::specs::registry();
    if flags.list {
        let mut table = Table::new(["name", "output", "experiment"]);
        for spec in &registry {
            table.row([
                spec.name.to_string(),
                spec.output.to_string(),
                spec.title.to_string(),
            ]);
        }
        print!("{table}");
        return Ok(());
    }
    let selected: Vec<&exp::ExperimentSpec> = if flags.all {
        if !flags.positional.is_empty() {
            return Err(usage_err("--all takes no experiment names"));
        }
        registry.iter().collect()
    } else {
        if flags.positional.is_empty() {
            return Err(usage_err(
                "exp needs experiment names or --all (see `ccr exp --list`)",
            ));
        }
        let mut out = Vec::new();
        for name in &flags.positional {
            let Some(spec) = registry
                .iter()
                .find(|s| s.name == name.as_str() || s.output == name.as_str())
            else {
                return Err(format!("unknown experiment `{name}` (see `ccr exp --list`)").into());
            };
            out.push(spec);
        }
        out
    };
    let plan = exp::plan(&selected);
    eprint!("{}", plan.stats.render());
    let harness = harness_of(flags)?;
    let executed = exp::execute_resumable(
        &plan,
        ccr::resolve_jobs(flags.jobs),
        &harness,
        flags.checkpoint.as_deref().map(std::path::Path::new),
        flags.fingerprint.then(|| fingerprint_window(flags)),
    )?;
    let (cache_hits, cache_misses) = executed.cache_stats();
    eprintln!(
        "compile cache: {cache_hits} hit(s), {cache_misses} miss(es) \
         across {} compile unit(s)",
        cache_hits + cache_misses
    );
    let harness_summary = finish_harness(&harness);
    for spec in &selected {
        let rendered = executed.results(spec).render();
        match &flags.out {
            Some(dir) => {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("create {}: {e}", dir.display()))?;
                let txt = dir.join(format!("{}.txt", spec.output));
                std::fs::write(&txt, &rendered.text)
                    .map_err(|e| format!("write {}: {e}", txt.display()))?;
                for (name, table) in &rendered.tables {
                    let csv = dir.join(format!("{}.{name}.csv", spec.output));
                    std::fs::write(&csv, table.to_csv())
                        .map_err(|e| format!("write {}: {e}", csv.display()))?;
                }
                eprintln!("wrote {}", txt.display());
            }
            None => print!("{}", rendered.text),
        }
    }
    // Store hook: one record per unique executed CCR sweep point.
    let ts = record_timestamp(flags);
    let commit = ccr::git_commit_id();
    let host_util_pct = harness_summary
        .as_ref()
        .map(|s| s.utilization_pct)
        .unwrap_or(0.0);
    let records: Vec<ccr_analyze::RunRecord> = executed
        .point_summaries()
        .into_iter()
        .map(|p| ccr_analyze::RunRecord {
            timestamp: ts,
            commit: commit.to_string(),
            config_hash: p.config_hash,
            source: "exp".to_string(),
            workload: p.workload.to_string(),
            input: p.input.to_string(),
            scale: u64::from(p.scale),
            base_cycles: p.base_cycles,
            ccr_cycles: p.ccr_cycles,
            speedup: p.speedup,
            hit_rate: p.hit_rate,
            miss_causes: p.miss_causes,
            regions: p.regions,
            wall_ms: p.wall_ms,
            sim_cycles_per_host_sec: ccr_analyze::BenchWorkload::host_throughput(
                p.base_cycles,
                p.ccr_cycles,
                p.wall_ms,
            ),
            host_util_pct,
            fingerprint: p.fingerprint,
            points_per_sec: 0.0,
        })
        .collect();
    append_to_store(flags, &records)
}

/// Resolves `--socket` / `--port` into a service address, shared by
/// `ccr serve` and `ccr submit`.
fn bind_of(flags: &Flags) -> Result<ccr::serve::Bind, CliError> {
    match (&flags.socket, flags.port) {
        (Some(_), Some(_)) => Err(usage_err("pass --socket or --port, not both")),
        (None, None) => Err(usage_err("need a --socket PATH or --port N")),
        (None, Some(port)) => Ok(ccr::serve::Bind::Tcp(port)),
        #[cfg(unix)]
        (Some(path), None) => Ok(ccr::serve::Bind::Unix(std::path::PathBuf::from(path))),
        #[cfg(not(unix))]
        (Some(_), None) => Err(usage_err(
            "--socket needs unix-domain sockets; use --port on this host",
        )),
    }
}

/// `ccr serve`: the batched experiment service. Keeps one engine —
/// job pool, compile cache, sim-result cache — alive across every
/// request of the session, so concurrent clients sweeping overlapping
/// configuration spaces pay for each unique compile and simulation
/// exactly once. Runs until a client sends a `shutdown` request;
/// completed points append to the run store at shutdown, stamped with
/// the session's points-per-second throughput.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    if !flags.positional.is_empty() {
        return Err(usage_err("serve takes no positional arguments"));
    }
    let opts = ccr::serve::ServeOptions {
        bind: bind_of(flags)?,
        queue: flags.queue.unwrap_or(ccr::serve::DEFAULT_QUEUE),
        jobs: ccr::resolve_jobs(flags.jobs),
        executors: 2,
        harness_out: Some(std::path::PathBuf::from(
            flags
                .harness_out
                .as_deref()
                .unwrap_or(ccr::serve::DEFAULT_SERVE_JSONL),
        )),
        store: (!flags.no_store).then(|| store_path(flags)),
        timestamp: record_timestamp(flags),
        commit: ccr::git_commit_id().to_string(),
    };
    let summary = ccr::serve::run(&opts)?;
    eprintln!(
        "serve: {} request(s), {} point(s), {:.2} points/s",
        summary.requests, summary.points, summary.points_per_sec
    );
    eprintln!(
        "result cache: {} hit(s), {} miss(es); compile cache: {} hit(s), {} miss(es)",
        summary.result_cache_hits,
        summary.result_cache_misses,
        summary.compile_cache_hits,
        summary.compile_cache_misses
    );
    Ok(())
}

/// `ccr submit`: the client side of `ccr serve`. Submits each named
/// experiment (or one `--workload` point) to a running server, waits
/// for the results, and prints the rendered text — byte-identical to
/// what the one-shot `ccr exp` prints — to stdout. Per-request
/// accounting (points, wall time, result-cache traffic) goes to
/// stderr so piped table output stays clean.
fn cmd_submit(flags: &Flags) -> Result<(), CliError> {
    let bind = bind_of(flags)?;
    let mut requests = Vec::new();
    match &flags.workload {
        Some(name) => {
            if !flags.positional.is_empty() {
                return Err(usage_err(
                    "submit takes experiment names or --workload, not both",
                ));
            }
            requests.push(ccr::serve::submit_point_request(
                name,
                flags.input,
                flags.scale,
                flags.entries,
                flags.instances,
            ));
        }
        None => {
            if flags.positional.is_empty() && !flags.shutdown {
                return Err(usage_err(
                    "submit needs experiment names, --workload, or --shutdown",
                ));
            }
            for name in &flags.positional {
                requests.push(ccr::serve::submit_exp_request(name));
            }
        }
    }
    let mut client = ccr::serve::Client::connect(&bind).map_err(CliError::Failure)?;
    for request in requests {
        let result = client.submit_and_wait(&request)?;
        print!("{}", result.text);
        eprintln!(
            "request {}: {} point(s) in {} ms (result cache: {} hit(s), {} miss(es))",
            result.id, result.points, result.wall_ms, result.cache_hits, result.cache_misses
        );
    }
    if flags.shutdown {
        client.shutdown()?;
        eprintln!("asked the server to shut down");
    }
    Ok(())
}

/// `ccr report`: cross-run trend tables and first-regression flags
/// over the run store, exiting 2 on a flag (like `ccr diff`).
/// `ccr report import <FILE>...` backfills the store from saved
/// BENCH / analysis artifacts instead.
fn cmd_report(flags: &Flags) -> Result<ExitCode, CliError> {
    match flags.positional.first().map(String::as_str) {
        Some("import") => cmd_report_import(flags).map(|()| ExitCode::SUCCESS),
        Some(other) => Err(usage_err(format!(
            "unknown report subcommand `{other}` (expected `import` or no argument)"
        ))),
        None => {
            let path = store_path(flags);
            let store = ccr_analyze::RunStore::load(&path)?;
            let output = ccr_analyze::report_over(&store, &thresholds_of(flags));
            if let Some(dir) = &flags.out {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("create {}: {e}", dir.display()))?;
                for (name, table) in &output.tables {
                    let csv = dir.join(format!("report.{name}.csv"));
                    std::fs::write(&csv, table.to_csv())
                        .map_err(|e| format!("write {}: {e}", csv.display()))?;
                }
                eprintln!(
                    "wrote {} csv table(s) under {}",
                    output.tables.len(),
                    dir.display()
                );
            }
            print!("{}", output.render());
            Ok(if output.flagged() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            })
        }
    }
}

/// `ccr report import`: turns saved `BENCH_*.json` (one record per
/// workload, cause-lossy) and `analysis.json` (one record, full miss
/// mix) files into store appends. `--commit` overrides the recorded
/// commit — artifacts produced before provenance carried one say
/// "unknown" otherwise.
fn cmd_report_import(flags: &Flags) -> Result<(), CliError> {
    let files = &flags.positional[1..];
    if files.is_empty() {
        return Err(usage_err(
            "report import needs at least one BENCH_*.json or analysis.json file",
        ));
    }
    let ts = record_timestamp(flags);
    let mut records = Vec::new();
    for spec in files {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let v = ccr_analyze::value::parse(text.trim()).map_err(|e| format!("{spec}: {e}"))?;
        if v.get("bench_schema_version").is_some() {
            let report =
                ccr_analyze::BenchReport::from_json(&text).map_err(|e| format!("{spec}: {e}"))?;
            let mut recs = ccr_analyze::store::records_from_bench(&report, ts, "import");
            if let Some(commit) = &flags.commit {
                for rec in &mut recs {
                    rec.commit = commit.clone();
                }
            }
            records.extend(recs);
        } else if v.get("analysis_schema_version").is_some() {
            records.push(
                ccr_analyze::store::record_from_analysis_json(&text, ts, flags.commit.as_deref())
                    .map_err(|e| format!("{spec}: {e}"))?,
            );
        } else {
            return Err(format!("{spec}: not a BENCH json or analysis.json").into());
        }
    }
    let path = store_path(flags);
    ccr_analyze::RunStore::append(&path, &records)?;
    println!(
        "imported {} record(s) into {}",
        records.len(),
        path.display()
    );
    Ok(())
}

fn cmd_regions(flags: &Flags) -> Result<(), CliError> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    let compiled = compile_ccr(&p, &p, &compile_config(flags)).map_err(|e| e.to_string())?;
    let mut table = Table::new([
        "region",
        "shape",
        "class",
        "instrs",
        "inputs",
        "outputs",
        "mem",
        "invalidations",
    ]);
    for info in &compiled.regions {
        table.row([
            info.id.to_string(),
            if info.spec.is_cyclic() {
                "cyclic".to_string()
            } else if info.spec.is_function_level() {
                "call".to_string()
            } else {
                "acyclic".to_string()
            },
            format!("{:?}", info.spec.class),
            info.spec.static_instrs.to_string(),
            info.spec.input_count().to_string(),
            info.spec.live_outs.len().to_string(),
            info.spec.mem_count().to_string(),
            info.invalidation_sites.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_potential(flags: &Flags) -> Result<(), CliError> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    let pot = ccr::measure::reuse_potential(&p, emu()).map_err(|e| e.to_string())?;
    println!("dynamic instructions : {}", pot.total_instrs);
    println!("block-level reusable : {}", pct(pot.block_ratio()));
    println!("region-level reusable: {}", pct(pot.region_ratio()));
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), CliError> {
    use ccr::profile::{EmuError, ExecEvent, NullCrb, TraceSink};
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;

    struct Tracer {
        remaining: u64,
    }
    impl TraceSink for Tracer {
        fn on_exec(&mut self, e: &ExecEvent<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let inputs: Vec<String> = e.inputs.iter().map(|v| v.as_int().to_string()).collect();
            let result = e
                .result
                .map(|v| format!(" => {}", v.as_int()))
                .unwrap_or_default();
            let mem = e
                .mem
                .map(|m| {
                    format!(
                        "  [{} {}[{}] = {}]",
                        if m.is_store { "store" } else { "load" },
                        m.object,
                        m.index,
                        m.value.as_int()
                    )
                })
                .unwrap_or_default();
            println!(
                "{:>4} {}:{}  {:<40} in=({}){}{}",
                e.instr.id,
                e.func,
                e.block,
                e.instr.to_string(),
                inputs.join(", "),
                result,
                mem
            );
        }
    }
    let mut tracer = Tracer {
        remaining: flags.limit,
    };
    // Bound emulation near the requested trace length; hitting the
    // step limit after the trace is complete is expected.
    let limited = ccr::profile::EmuConfig {
        max_instrs: flags.limit.saturating_add(1),
        max_depth: 1024,
    };
    match ccr::profile::Emulator::with_config(&p, limited).run(&mut NullCrb, &mut tracer) {
        Ok(_) | Err(EmuError::StepLimit) => Ok(()),
        Err(e) => Err(e.to_string().into()),
    }
}

fn cmd_print(flags: &Flags) -> Result<(), CliError> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    if flags.annotated {
        let compiled = compile_ccr(&p, &p, &compile_config(flags)).map_err(|e| e.to_string())?;
        print!("{}", compiled.annotated);
    } else {
        print!("{p}");
    }
    Ok(())
}

/// The fingerprint window in cycles: `--window` when given, the
/// simulator's conventional default otherwise.
fn fingerprint_window(flags: &Flags) -> u64 {
    flags.window.unwrap_or(ccr::sim::DEFAULT_FINGERPRINT_WINDOW)
}

/// The canonical workload label carried inside digest files and
/// snapshots: `spec:input@scale`. [`decode_workload`] inverts it so a
/// restore or a divergence dump can rebuild the exact same run.
fn encode_workload(spec: &str, input: InputSet, scale: u32) -> String {
    format!("{spec}:{}@{}", input_name(input), scale)
}

/// Parses an [`encode_workload`] label back into its parts — from the
/// right, so `.ccr` file paths containing `:` or `@` still round-trip.
fn decode_workload(s: &str) -> Result<(String, InputSet, u32), String> {
    let err = || format!("`{s}` is not a `workload:input@scale` label");
    let (rest, scale) = s.rsplit_once('@').ok_or_else(err)?;
    let scale: u32 = scale.parse().map_err(|_| err())?;
    let (spec, input) = rest.rsplit_once(':').ok_or_else(err)?;
    let input = match input {
        "train" => InputSet::Train,
        "ref" => InputSet::Ref,
        _ => return Err(err()),
    };
    Ok((spec.to_string(), input, scale))
}

/// Compiles a workload the way `ccr run` does: the train input drives
/// region selection, the requested input is the measured target.
fn compile_target(
    flags: &Flags,
    spec: &str,
    input: InputSet,
    scale: u32,
) -> Result<ccr::CompiledWorkload, CliError> {
    let train = load_program(spec, InputSet::Train, scale)?;
    let target = load_program(spec, input, scale)?;
    compile_ccr(&train, &target, &compile_config(flags))
        .map_err(|e| CliError::Failure(e.to_string()))
}

/// Filesystem-safe stem for per-workload output files.
fn file_stem(spec: &str) -> String {
    spec.trim_end_matches(".ccr").replace(['/', '\\'], "_")
}

/// Test hook: `CCR_FP_PERTURB=N` deterministically flips one CRB bit
/// once the N-th window digest has sealed, manufacturing a divergent
/// twin so the bisection tests can pin the exact reported window
/// without a second simulator implementation.
fn fp_perturb_env() -> Result<Option<u64>, CliError> {
    match std::env::var("CCR_FP_PERTURB") {
        Err(_) => Ok(None),
        Ok(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::Failure(format!("CCR_FP_PERTURB: bad window index `{v}`"))),
    }
}

/// Runs one compiled workload to completion under the streaming
/// determinism fingerprint and returns its digest file.
fn fingerprint_run(
    compiled: &ccr::CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    window: u64,
    workload: &str,
    config_hash: &str,
    perturb_at: Option<u64>,
) -> Result<ccr_analyze::DigestFile, String> {
    let mut session = SimSession::new(&compiled.annotated, machine, Some(crb), emu(), window);
    session.set_provenance(workload, config_hash);
    if let Some(n) = perturb_at {
        while !session.finished() && (session.windows().len() as u64) < n {
            session.step().map_err(|e| e.to_string())?;
        }
        session.perturb_for_tests();
    }
    session.run_to_end().map_err(|e| e.to_string())?;
    Ok(ccr_analyze::DigestFile {
        workload: workload.to_string(),
        config_hash: config_hash.to_string(),
        window,
        windows: session
            .windows()
            .iter()
            .map(|w| ccr_analyze::DigestWindow {
                index: w.index,
                cycle: w.cycle,
                hash: w.hash,
            })
            .collect(),
        cycles: session.cycles_so_far(),
        final_hash: session.final_hash().expect("finished run has a final hash"),
    })
}

/// `ccr fingerprint`: runs each named workload under the streaming
/// determinism fingerprint and prints the final chain hash plus every
/// per-window digest; `--compare A B` bisects two saved digest files
/// to the first divergent window instead.
fn cmd_fingerprint(flags: &Flags) -> Result<ExitCode, CliError> {
    if flags.compare {
        return cmd_fingerprint_compare(flags);
    }
    if flags.positional.is_empty() {
        return Err(usage_err(
            "fingerprint needs at least one <benchmark|file.ccr> (or --compare A B)",
        ));
    }
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let config_hash = ccr::config_hash(&machine, &crb);
    let window = fingerprint_window(flags);
    let perturb_at = fp_perturb_env()?;
    let harness = harness_of(flags)?;
    let n = flags.positional.len() as u64;
    harness.plan(n, n, &[("window", window)]);
    let labels: Vec<String> = flags
        .positional
        .iter()
        .map(|s| format!("fingerprint:{s}"))
        .collect();
    let (results, pool) = ccr::parallel_map_observed(
        &flags.positional,
        ccr::resolve_jobs(flags.jobs),
        Some(&labels),
        harness.observer(),
        |i, spec| -> Result<ccr_analyze::DigestFile, String> {
            harness.task_start("sim", &labels[i]);
            let start = std::time::Instant::now();
            let train = load_program(spec, InputSet::Train, flags.scale)?;
            let target = load_program(spec, flags.input, flags.scale)?;
            let compiled =
                compile_ccr(&train, &target, &compile_config(flags)).map_err(|e| e.to_string())?;
            let workload = encode_workload(spec, flags.input, flags.scale);
            let digest = fingerprint_run(
                &compiled,
                &machine,
                crb,
                window,
                &workload,
                &config_hash,
                perturb_at,
            )?;
            harness.task_finish(
                "sim",
                &labels[i],
                start.elapsed().as_millis() as u64,
                Some(digest.cycles),
            );
            Ok(digest)
        },
    );
    harness.pool("fingerprint", &pool);
    let mut digests = Vec::new();
    for (spec, res) in flags.positional.iter().zip(results) {
        let d = res.map_err(|e| CliError::Failure(format!("{spec}: {e}")))?;
        harness.fingerprint(
            &d.workload,
            d.windows.len() as u64,
            d.cycles,
            &ccr_analyze::format_hash(d.final_hash),
        );
        digests.push(d);
    }
    finish_harness(&harness);
    for (spec, d) in flags.positional.iter().zip(&digests) {
        println!(
            "{spec}: final {} ({} windows of {} cycles, {} cycles)",
            ccr_analyze::format_hash(d.final_hash),
            d.windows.len(),
            d.window,
            d.cycles
        );
        for w in &d.windows {
            println!(
                "  window {} @ cycle {}: {}",
                w.index,
                w.cycle,
                ccr_analyze::format_hash(w.hash)
            );
        }
    }
    if let Some(dir) = &flags.out {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut chains = String::new();
        for (spec, d) in flags.positional.iter().zip(&digests) {
            let path = dir.join(format!("{}.fp.jsonl", file_stem(spec)));
            std::fs::write(&path, ccr_analyze::write_digest_file(d))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
            chains.push_str(&format!(
                "{spec} {}\n",
                ccr_analyze::format_hash(d.final_hash)
            ));
        }
        let chains_path = dir.join("chains.txt");
        std::fs::write(&chains_path, chains)
            .map_err(|e| format!("write {}: {e}", chains_path.display()))?;
        eprintln!("wrote {}", chains_path.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// `ccr fingerprint --compare A B`: loads two digest files and
/// bisects to the first divergent cycle window (chained hashes make
/// the first mismatch the first divergence). Exits 2 on any
/// divergence — the `ccr diff` contract.
fn cmd_fingerprint_compare(flags: &Flags) -> Result<ExitCode, CliError> {
    let [a_path, b_path] = flags.positional.as_slice() else {
        return Err(usage_err(
            "--compare needs exactly two digest files: <A.fp.jsonl> <B.fp.jsonl>",
        ));
    };
    let load = |p: &str| -> Result<ccr_analyze::DigestFile, CliError> {
        let text =
            std::fs::read_to_string(p).map_err(|e| CliError::Failure(format!("{p}: {e}")))?;
        ccr_analyze::parse_digest_file(p, &text).map_err(CliError::Failure)
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    match ccr_analyze::compare_digests(&a, &b)? {
        ccr_analyze::FingerprintDiff::Identical => {
            println!(
                "identical: {} windows, final {}",
                a.windows.len(),
                ccr_analyze::format_hash(a.final_hash)
            );
            Ok(ExitCode::SUCCESS)
        }
        ccr_analyze::FingerprintDiff::Window {
            index,
            cycle,
            a_hash,
            b_hash,
        } => {
            println!("divergence at window {index} (cycle {cycle}):");
            println!("  A {a_path}: {}", ccr_analyze::format_hash(a_hash));
            println!("  B {b_path}: {}", ccr_analyze::format_hash(b_hash));
            dump_divergence_snapshot(flags, &a, &b, index);
            Ok(ExitCode::from(2))
        }
        ccr_analyze::FingerprintDiff::LengthMismatch {
            a_windows,
            b_windows,
        } => {
            println!(
                "window-count mismatch: {a_path} has {a_windows} window(s), {b_path} has \
                 {b_windows} (final {} vs {})",
                ccr_analyze::format_hash(a.final_hash),
                ccr_analyze::format_hash(b.final_hash)
            );
            Ok(ExitCode::from(2))
        }
        ccr_analyze::FingerprintDiff::FinalOnly { a_hash, b_hash } => {
            println!(
                "every sealed window matches but the final hashes differ: {} vs {} \
                 (divergence after the last {}-cycle boundary)",
                ccr_analyze::format_hash(a_hash),
                ccr_analyze::format_hash(b_hash),
                a.window
            );
            Ok(ExitCode::from(2))
        }
    }
}

/// Best-effort local replay at a `--compare` divergence: when digest
/// A's workload is reproducible here (decodable label, matching
/// config hash), re-runs it to the last agreed window boundary, saves
/// a `SimSnapshot` there for inspection, then steps through the
/// divergent window and reports which side this host agrees with.
/// Every failure degrades to a printed note — the exit-2 verdict
/// stands on the digests alone.
fn dump_divergence_snapshot(
    flags: &Flags,
    a: &ccr_analyze::DigestFile,
    b: &ccr_analyze::DigestFile,
    index: u64,
) {
    let note = |msg: String| println!("  note: {msg}");
    let (spec, input, scale) = match decode_workload(&a.workload) {
        Ok(parts) => parts,
        Err(e) => return note(format!("{e}; skipping the local snapshot dump")),
    };
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let config_hash = ccr::config_hash(&machine, &crb);
    if config_hash != a.config_hash {
        return note(format!(
            "digest config hash {} does not match the local configuration {config_hash}; \
             rerun with the matching --entries/--instances to dump a snapshot",
            a.config_hash
        ));
    }
    let train = match load_program(&spec, InputSet::Train, scale) {
        Ok(p) => p,
        Err(e) => return note(e),
    };
    let target = match load_program(&spec, input, scale) {
        Ok(p) => p,
        Err(e) => return note(e),
    };
    let compiled = match compile_ccr(&train, &target, &compile_config(flags)) {
        Ok(c) => c,
        Err(e) => return note(e.to_string()),
    };
    let mut session = SimSession::new(&compiled.annotated, &machine, Some(crb), emu(), a.window);
    session.set_provenance(&a.workload, &config_hash);
    // The last boundary both digests agree on: window `index - 1`'s
    // seal cycle (cycle 0 when the very first window diverged).
    let boundary = if index == 0 {
        0
    } else {
        match a.windows.get(index as usize - 1) {
            Some(w) => w.cycle,
            None => return note(format!("digest A lacks window {}", index - 1)),
        }
    };
    if let Err(e) = session.run_until_cycle(boundary) {
        return note(e.to_string());
    }
    let snap = match session.snapshot() {
        Ok(s) => s,
        Err(e) => return note(e),
    };
    let out_dir = flags.out.clone().unwrap_or_else(|| ".".to_string());
    let out_dir = std::path::Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        return note(format!("create {}: {e}", out_dir.display()));
    }
    let path = out_dir.join(format!("{}.diverge.w{index}.snap.jsonl", file_stem(&spec)));
    if let Err(e) = ccr::sim::save_snapshot(&path, &snap) {
        return note(e);
    }
    println!(
        "  wrote pre-divergence snapshot (cycle {}) to {}",
        snap.cycle,
        path.display()
    );
    // Step through the divergent window locally and say which side
    // this host reproduces — the arbiter between A and B.
    while !session.finished() && (session.windows().len() as u64) <= index {
        if let Err(e) = session.step() {
            return note(e.to_string());
        }
    }
    match session.windows().get(index as usize) {
        None => note(format!("local replay finished before window {index}")),
        Some(w) => {
            let a_hash = a.windows.get(index as usize).map(|x| x.hash);
            let b_hash = b.windows.get(index as usize).map(|x| x.hash);
            let verdict = if Some(w.hash) == a_hash {
                "matches side A".to_string()
            } else if Some(w.hash) == b_hash {
                "matches side B".to_string()
            } else {
                "matches neither side".to_string()
            };
            println!(
                "  local replay of window {index}: {} — {verdict}",
                ccr_analyze::format_hash(w.hash)
            );
        }
    }
}

/// `ccr snapshot save|restore`: captures the complete mid-run
/// simulation state at a cycle as versioned `{"snap_v":1}` JSONL, or
/// resumes one to completion with bit-identical final statistics.
fn cmd_snapshot(flags: &Flags) -> Result<(), CliError> {
    match flags.positional.first().map(String::as_str) {
        Some("save") => cmd_snapshot_save(flags),
        Some("restore") => cmd_snapshot_restore(flags),
        Some(other) => Err(usage_err(format!(
            "unknown snapshot subcommand `{other}` (expected `save` or `restore`)"
        ))),
        None => Err(usage_err(
            "snapshot needs a subcommand: `save` or `restore`",
        )),
    }
}

fn cmd_snapshot_save(flags: &Flags) -> Result<(), CliError> {
    let spec = flags
        .positional
        .get(1)
        .ok_or_else(|| usage_err("snapshot save needs <benchmark|file.ccr>"))?;
    let at = flags
        .at_cycle
        .ok_or_else(|| usage_err("snapshot save needs --at-cycle N"))?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let config_hash = ccr::config_hash(&machine, &crb);
    let compiled = compile_target(flags, spec, flags.input, flags.scale)?;
    let workload = encode_workload(spec, flags.input, flags.scale);
    let mut session = SimSession::new(
        &compiled.annotated,
        &machine,
        Some(crb),
        emu(),
        fingerprint_window(flags),
    );
    session.set_provenance(&workload, &config_hash);
    session.run_until_cycle(at).map_err(|e| e.to_string())?;
    if session.finished() {
        return Err(format!(
            "{spec}: run finished at cycle {} before --at-cycle {at}",
            session.cycles_so_far()
        )
        .into());
    }
    let chain_so_far = session.fingerprint_hash();
    let windows_so_far = session.windows().len();
    let snap = session.snapshot()?;
    let path = flags
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.snap.jsonl", file_stem(spec)));
    ccr::sim::save_snapshot(std::path::Path::new(&path), &snap)?;
    let harness = harness_of(flags)?;
    harness.snapshot("save", &workload, snap.cycle, &path);
    finish_harness(&harness);
    println!("workload   : {workload}");
    println!("cycle      : {}", snap.cycle);
    println!(
        "fingerprint: {} ({windows_so_far} window(s) sealed)",
        ccr_analyze::format_hash(chain_so_far)
    );
    println!("wrote      : {path}");
    Ok(())
}

fn cmd_snapshot_restore(flags: &Flags) -> Result<(), CliError> {
    let file = flags
        .positional
        .get(1)
        .ok_or_else(|| usage_err("snapshot restore needs <FILE>"))?;
    let snap = ccr::sim::load_snapshot(std::path::Path::new(file))?;
    let (spec, input, scale) = decode_workload(&snap.workload)
        .map_err(|e| format!("{file}: {e} (was it written by `ccr snapshot save`?)"))?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let config_hash = ccr::config_hash(&machine, &crb);
    if snap.config_hash != config_hash {
        return Err(format!(
            "{file}: snapshot config hash {} does not match the local configuration \
             {config_hash}; rerun with the --entries/--instances it was saved under",
            snap.config_hash
        )
        .into());
    }
    let compiled = compile_target(flags, &spec, input, scale)?;
    let mut session = SimSession::restore(&compiled.annotated, &machine, Some(crb), emu(), &snap)
        .map_err(|e| format!("{file}: {e}"))?;
    let harness = harness_of(flags)?;
    harness.snapshot("restore", &snap.workload, snap.cycle, file);
    session.run_to_end().map_err(|e| e.to_string())?;
    let windows = session.windows().len() as u64;
    let cycles = session.cycles_so_far();
    let final_hash = session.final_hash().expect("finished run has a final hash");
    harness.fingerprint(
        &snap.workload,
        windows,
        cycles,
        &ccr_analyze::format_hash(final_hash),
    );
    finish_harness(&harness);
    let out = session.into_outcome();
    println!(
        "resumed    : {} from cycle {} ({file})",
        snap.workload, snap.cycle
    );
    println!(
        "cycles     : {} ({} hits / {} misses)",
        out.stats.cycles, out.stats.reuse_hits, out.stats.reuse_misses
    );
    println!(
        "fingerprint: {} ({windows} window(s))",
        ccr_analyze::format_hash(final_hash)
    );
    Ok(())
}

/// `ccr run --save-snapshot/--restore-snapshot`: the full measurement
/// (baseline + CCR + speedup) with the CCR leg driven through a
/// [`SimSession`] so it can be checkpointed mid-flight or resumed
/// from a prior checkpoint. Final statistics are bit-identical to a
/// plain `ccr run`.
fn cmd_run_snapshotted(flags: &Flags) -> Result<(), CliError> {
    let spec = target_of(flags)?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let config_hash = ccr::config_hash(&machine, &crb);
    let window = fingerprint_window(flags);
    let harness = harness_of(flags)?;
    match &flags.restore_snapshot {
        None => {
            let cycle = flags.snapshot_cycle.expect("checked by cmd_run");
            let file = flags.save_snapshot.as_deref().expect("checked by cmd_run");
            let compiled = compile_target(flags, &spec, flags.input, flags.scale)?;
            let workload = encode_workload(&spec, flags.input, flags.scale);
            let mut session =
                SimSession::new(&compiled.annotated, &machine, Some(crb), emu(), window);
            session.set_provenance(&workload, &config_hash);
            session.run_until_cycle(cycle).map_err(|e| e.to_string())?;
            if session.finished() {
                return Err(format!(
                    "{spec}: run finished at cycle {} before --snapshot-cycle {cycle}",
                    session.cycles_so_far()
                )
                .into());
            }
            let snap = session.snapshot()?;
            ccr::sim::save_snapshot(std::path::Path::new(file), &snap)?;
            harness.snapshot("save", &workload, snap.cycle, file);
            println!("snapshot  : cycle {} -> {file}", snap.cycle);
            finish_session_measurement(&spec, &compiled, &machine, session, &harness, &workload)
        }
        Some(file) => {
            let snap = ccr::sim::load_snapshot(std::path::Path::new(file))?;
            let (snap_spec, input, scale) =
                decode_workload(&snap.workload).map_err(|e| format!("{file}: {e}"))?;
            if snap_spec != spec {
                return Err(format!("{file}: snapshot is of `{snap_spec}`, not `{spec}`").into());
            }
            if snap.config_hash != config_hash {
                return Err(format!(
                    "{file}: snapshot config hash {} does not match the local configuration \
                     {config_hash}; rerun with the --entries/--instances it was saved under",
                    snap.config_hash
                )
                .into());
            }
            let compiled = compile_target(flags, &spec, input, scale)?;
            let session =
                SimSession::restore(&compiled.annotated, &machine, Some(crb), emu(), &snap)
                    .map_err(|e| format!("{file}: {e}"))?;
            harness.snapshot("restore", &snap.workload, snap.cycle, file);
            println!("resumed   : cycle {} <- {file}", snap.cycle);
            finish_session_measurement(
                &spec,
                &compiled,
                &machine,
                session,
                &harness,
                &snap.workload,
            )
        }
    }
}

/// Runs a mid-measurement CCR session to completion, simulates the
/// baseline, checks the architectural results agree, and prints the
/// standard `ccr run` lines plus the trajectory fingerprint.
fn finish_session_measurement(
    spec: &str,
    compiled: &ccr::CompiledWorkload,
    machine: &MachineConfig,
    mut session: SimSession<'_>,
    harness: &ccr::Harness,
    workload: &str,
) -> Result<(), CliError> {
    session.run_to_end().map_err(|e| e.to_string())?;
    let windows = session.windows().len() as u64;
    let cycles = session.cycles_so_far();
    let final_hash = session.final_hash().expect("finished run has a final hash");
    harness.fingerprint(
        workload,
        windows,
        cycles,
        &ccr_analyze::format_hash(final_hash),
    );
    finish_harness(harness);
    let ccr_out = session.into_outcome();
    let base =
        ccr::sim::simulate_baseline(&compiled.base, machine, emu()).map_err(|e| e.to_string())?;
    if base.run.returned != ccr_out.run.returned {
        return Err("computation reuse changed architectural results"
            .to_string()
            .into());
    }
    let m = ccr::Measurement { base, ccr: ccr_out };
    println!("program   : {spec}");
    println!("regions   : {}", compiled.regions.len());
    println!("baseline  : {} cycles", m.base.stats.cycles);
    println!(
        "with CCR  : {} cycles ({} hits / {} misses)",
        m.ccr.stats.cycles, m.ccr.stats.reuse_hits, m.ccr.stats.reuse_misses
    );
    println!(
        "speedup   : {}x  eliminated {}",
        speedup(m.speedup()),
        pct(m.eliminated_fraction())
    );
    println!(
        "fingerprint: {} ({windows} window(s))",
        ccr_analyze::format_hash(final_hash)
    );
    Ok(())
}

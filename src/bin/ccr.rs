//! `ccr` — command-line driver for the CCR framework.
//!
//! ```text
//! ccr suite [--input train|ref] [--scale N] [--entries E] [--instances C]
//! ccr run <benchmark|file.ccr> [--entries E] [--instances C] [--function-level]
//!         [--telemetry DIR]
//! ccr regions <benchmark|file.ccr>
//! ccr potential <benchmark|file.ccr>
//! ccr print <benchmark> [--annotated]
//! ccr trace <benchmark|file.ccr> [--limit N]
//! ccr list
//! ```
//!
//! With `--telemetry DIR`, `ccr run` additionally writes
//! `DIR/events.jsonl` (one versioned JSON event per line: compile pass
//! spans, region-formation rejections, the per-region reuse timeline,
//! interval IPC windows, and CRB eviction/conflict/invalidation
//! events) and `DIR/report.json` (the full run report; see
//! `ccr::runreport`). The text output and every reported number are
//! identical with and without the flag.
//!
//! A `<benchmark>` is one of the thirteen built-in workload names
//! (`ccr list`); a `file.ccr` is a textual-IR program as produced by
//! `ccr print`.

use std::process::ExitCode;

use ccr::ir::Program;
use ccr::profile::EmuConfig;
use ccr::regions::RegionConfig;
use ccr::report::{pct, speedup, Table};
use ccr::sim::{CrbConfig, MachineConfig};
use ccr::workloads::{build, InputSet, NAMES};
use ccr::{compile_ccr, measure, CompileConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ccr suite [--input train|ref] [--scale N] [--entries E] [--instances C]
  ccr run <benchmark|file.ccr> [--entries E] [--instances C] [--function-level]
          [--telemetry DIR]
  ccr regions <benchmark|file.ccr>
  ccr potential <benchmark|file.ccr>
  ccr print <benchmark> [--annotated]
  ccr trace <benchmark|file.ccr> [--limit N]
  ccr list";

/// Parsed flag set shared by the subcommands.
struct Flags {
    input: InputSet,
    scale: u32,
    entries: usize,
    instances: usize,
    function_level: bool,
    annotated: bool,
    limit: u64,
    telemetry: Option<String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        input: InputSet::Train,
        scale: 1,
        entries: 128,
        instances: 8,
        function_level: false,
        annotated: false,
        limit: 40,
        telemetry: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--input" => {
                flags.input = match take("--input")?.as_str() {
                    "train" => InputSet::Train,
                    "ref" => InputSet::Ref,
                    other => return Err(format!("unknown input set `{other}`")),
                };
            }
            "--scale" => {
                flags.scale = take("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale value".to_string())?;
            }
            "--entries" => {
                flags.entries = take("--entries")?
                    .parse()
                    .map_err(|_| "bad --entries value".to_string())?;
            }
            "--instances" => {
                flags.instances = take("--instances")?
                    .parse()
                    .map_err(|_| "bad --instances value".to_string())?;
            }
            "--function-level" => flags.function_level = true,
            "--annotated" => flags.annotated = true,
            "--limit" => {
                flags.limit = take("--limit")?
                    .parse()
                    .map_err(|_| "bad --limit value".to_string())?;
            }
            "--telemetry" => flags.telemetry = Some(take("--telemetry")?),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "list" => {
            for name in NAMES {
                println!("{name}");
            }
            Ok(())
        }
        "suite" => cmd_suite(&flags),
        "run" => cmd_run(&flags),
        "regions" => cmd_regions(&flags),
        "potential" => cmd_potential(&flags),
        "print" => cmd_print(&flags),
        "trace" => cmd_trace(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 500_000_000,
        max_depth: 1024,
    }
}

fn crb_of(flags: &Flags) -> CrbConfig {
    CrbConfig {
        entries: flags.entries,
        instances: flags.instances,
        ..CrbConfig::paper()
    }
}

fn compile_config(flags: &Flags) -> CompileConfig {
    CompileConfig {
        region: RegionConfig {
            trial_instances: flags.instances,
            function_level: flags.function_level,
            ..RegionConfig::paper()
        },
        emu: emu(),
        ..CompileConfig::paper()
    }
}

/// Loads a program: a built-in benchmark name or a `.ccr` text file.
fn load_program(spec: &str, input: InputSet, scale: u32) -> Result<Program, String> {
    if let Some(p) = build(spec, input, scale) {
        return Ok(p);
    }
    if spec.ends_with(".ccr") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let p = ccr::ir::parse_program(&text).map_err(|e| format!("{spec}: {e}"))?;
        ccr::ir::verify_program(&p).map_err(|e| format!("{spec}: {e}"))?;
        return Ok(p);
    }
    Err(format!(
        "`{spec}` is neither a known benchmark (see `ccr list`) nor a .ccr file"
    ))
}

fn target_of(flags: &Flags) -> Result<String, String> {
    flags
        .positional
        .first()
        .cloned()
        .ok_or_else(|| "missing <benchmark|file.ccr>".to_string())
}

fn cmd_suite(flags: &Flags) -> Result<(), String> {
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let mut table = Table::new([
        "benchmark",
        "base cycles",
        "ccr cycles",
        "speedup",
        "eliminated",
    ]);
    let mut speedups = Vec::new();
    for name in NAMES {
        let train = build(name, InputSet::Train, flags.scale).expect("known");
        let target = build(name, flags.input, flags.scale).expect("known");
        let compiled =
            compile_ccr(&train, &target, &compile_config(flags)).map_err(|e| e.to_string())?;
        let m = measure(&compiled, &machine, crb, emu()).map_err(|e| e.to_string())?;
        speedups.push(m.speedup());
        table.row([
            name.to_string(),
            m.base.stats.cycles.to_string(),
            m.ccr.stats.cycles.to_string(),
            speedup(m.speedup()),
            pct(m.eliminated_fraction()),
        ]);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    table.row([
        "average".to_string(),
        String::new(),
        String::new(),
        speedup(avg),
        String::new(),
    ]);
    println!(
        "CCR suite — {:?} input, scale {}, CRB {}x{}",
        flags.input, flags.scale, flags.entries, flags.instances
    );
    println!("{table}");
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let spec = target_of(flags)?;
    let train = load_program(&spec, InputSet::Train, flags.scale)?;
    let target = load_program(&spec, flags.input, flags.scale)?;
    let machine = MachineConfig::paper();
    let crb = crb_of(flags);
    let compiled =
        compile_ccr(&train, &target, &compile_config(flags)).map_err(|e| e.to_string())?;

    let m = match &flags.telemetry {
        None => measure(&compiled, &machine, crb, emu()).map_err(|e| e.to_string())?,
        Some(dir) => {
            use ccr::telemetry::{emit, JsonlSink, TelemetrySink, SCHEMA_VERSION};
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let events_path = dir.join("events.jsonl");
            let mut sink = JsonlSink::create(&events_path)
                .map_err(|e| format!("{}: {e}", events_path.display()))?;
            emit!(&mut sink, "run_begin",
                schema: u64::from(SCHEMA_VERSION),
                workload: spec.as_str(),
                input: input_name(flags.input),
                scale: flags.scale,
            );
            ccr::emit_compile_events(&compiled.telemetry, &mut sink);
            let m = ccr::measure_traced(
                &compiled,
                &machine,
                crb,
                emu(),
                ccr::sim::DEFAULT_IPC_WINDOW,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            sink.flush();
            let report = ccr::RunReport {
                workload: &spec,
                input: input_name(flags.input),
                scale: flags.scale,
                machine: &machine,
                crb: &crb,
                compile: &compiled.telemetry,
                regions: &compiled.regions,
                measurement: &m,
            };
            let report_path = dir.join("report.json");
            let mut json = report.to_json();
            json.push('\n');
            std::fs::write(&report_path, json)
                .map_err(|e| format!("{}: {e}", report_path.display()))?;
            println!(
                "telemetry : {} + {}",
                events_path.display(),
                report_path.display()
            );
            m
        }
    };

    println!("program   : {spec}");
    println!("regions   : {}", compiled.regions.len());
    println!("baseline  : {} cycles", m.base.stats.cycles);
    println!(
        "with CCR  : {} cycles ({} hits / {} misses)",
        m.ccr.stats.cycles, m.ccr.stats.reuse_hits, m.ccr.stats.reuse_misses
    );
    println!(
        "speedup   : {}x  eliminated {}",
        speedup(m.speedup()),
        pct(m.eliminated_fraction())
    );
    Ok(())
}

fn input_name(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Ref => "ref",
    }
}

fn cmd_regions(flags: &Flags) -> Result<(), String> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    let compiled = compile_ccr(&p, &p, &compile_config(flags)).map_err(|e| e.to_string())?;
    let mut table = Table::new([
        "region",
        "shape",
        "class",
        "instrs",
        "inputs",
        "outputs",
        "mem",
        "invalidations",
    ]);
    for info in &compiled.regions {
        table.row([
            info.id.to_string(),
            if info.spec.is_cyclic() {
                "cyclic".to_string()
            } else if info.spec.is_function_level() {
                "call".to_string()
            } else {
                "acyclic".to_string()
            },
            format!("{:?}", info.spec.class),
            info.spec.static_instrs.to_string(),
            info.spec.input_count().to_string(),
            info.spec.live_outs.len().to_string(),
            info.spec.mem_count().to_string(),
            info.invalidation_sites.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_potential(flags: &Flags) -> Result<(), String> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    let pot = ccr::measure::reuse_potential(&p, emu()).map_err(|e| e.to_string())?;
    println!("dynamic instructions : {}", pot.total_instrs);
    println!("block-level reusable : {}", pct(pot.block_ratio()));
    println!("region-level reusable: {}", pct(pot.region_ratio()));
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), String> {
    use ccr::profile::{EmuError, ExecEvent, NullCrb, TraceSink};
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;

    struct Tracer {
        remaining: u64,
    }
    impl TraceSink for Tracer {
        fn on_exec(&mut self, e: &ExecEvent<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let inputs: Vec<String> = e.inputs.iter().map(|v| v.as_int().to_string()).collect();
            let result = e
                .result
                .map(|v| format!(" => {}", v.as_int()))
                .unwrap_or_default();
            let mem = e
                .mem
                .map(|m| {
                    format!(
                        "  [{} {}[{}] = {}]",
                        if m.is_store { "store" } else { "load" },
                        m.object,
                        m.index,
                        m.value.as_int()
                    )
                })
                .unwrap_or_default();
            println!(
                "{:>4} {}:{}  {:<40} in=({}){}{}",
                e.instr.id,
                e.func,
                e.block,
                e.instr.to_string(),
                inputs.join(", "),
                result,
                mem
            );
        }
    }
    let mut tracer = Tracer {
        remaining: flags.limit,
    };
    // Bound emulation near the requested trace length; hitting the
    // step limit after the trace is complete is expected.
    let limited = ccr::profile::EmuConfig {
        max_instrs: flags.limit.saturating_add(1),
        max_depth: 1024,
    };
    match ccr::profile::Emulator::with_config(&p, limited).run(&mut NullCrb, &mut tracer) {
        Ok(_) | Err(EmuError::StepLimit) => Ok(()),
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_print(flags: &Flags) -> Result<(), String> {
    let spec = target_of(flags)?;
    let p = load_program(&spec, flags.input, flags.scale)?;
    if flags.annotated {
        let compiled = compile_ccr(&p, &p, &compile_config(flags)).map_err(|e| e.to_string())?;
        print!("{}", compiled.annotated);
    } else {
        print!("{p}");
    }
    Ok(())
}

#![warn(missing_docs)]

//! # ccr — Compiler-Directed Dynamic Computation Reuse
//!
//! A full reproduction of Connors & Hwu, *"Compiler-Directed Dynamic
//! Computation Reuse: Rationale and Initial Results"* (MICRO-32,
//! 1999), as a Rust workspace:
//!
//! * [`ir`] — the compiler IR with the CCR ISA extensions,
//! * [`analysis`] — dominators, loops, liveness, reaching
//!   definitions, alias information,
//! * [`opt`] — the baseline optimizer (inlining, unrolling,
//!   const-prop, CSE, DCE, CFG simplification),
//! * [`profile`] — the emulator, the Reuse Profiling System, and the
//!   Figure 4 limit study,
//! * [`regions`] — reusable-computation-region formation and the
//!   annotation transformation,
//! * [`sim`] — the cycle-level 6-issue machine with the Computation
//!   Reuse Buffer,
//! * [`workloads`] — the thirteen-benchmark suite,
//! * top-level [`compile_ccr`] / [`measure()`](measure()) to run the whole
//!   pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use ccr::{compile_ccr, measure, CompileConfig};
//! use ccr::sim::{CrbConfig, MachineConfig};
//! use ccr::profile::EmuConfig;
//! use ccr::workloads::{build, InputSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = build("124.m88ksim", InputSet::Train, 1).expect("known benchmark");
//! let compiled = compile_ccr(&program, &program, &CompileConfig::paper())?;
//! let m = measure(
//!     &compiled,
//!     &MachineConfig::paper(),
//!     CrbConfig::paper(),
//!     EmuConfig::default(),
//! )?;
//! assert!(m.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```

pub use ccr_core::*;

pub mod serve;

#!/usr/bin/env bash
# Regenerates every experiment output into results/ (deterministic:
# identical inputs produce identical tables; set CCR_JOBS=0 to fan the
# suite runs out over all cores — parallelism never changes a table).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
echo '== ccr exp --all (every experiment, one deduplicated parallel pass)'
# The planner compiles each distinct (workload, region-config) pair
# once and simulates each distinct sweep point once across all eight
# experiments; tables are byte-identical to the old one-binary-per-
# figure regeneration (tests/exp_golden.rs pins this).
# --no-store: sweep points would bloat the committed run store; the
# store's history is the bench suite's (below).
cargo run --release -q --bin ccr -- exp --all --jobs "$(nproc)" --out results --no-store
echo '== BENCH_ccr.json (perf baseline; CI gates ccr diff against it)'
# The committed baseline is always taken serially so its per-workload
# wall_ms stays comparable across regenerations, and with median-of-3
# host timing so the committed wall_ms / throughput aggregate carry
# less scheduler noise. The same run appends one record per workload
# to the committed run store (runs/store.jsonl, the `ccr report`
# history), timestamped at the HEAD commit so a re-regeneration at
# the same commit lands at the same instant.
# --serve-clients 2: also measures the serve-session baseline (two
# synthetic clients sweeping the suite through one shared engine) so
# BENCH_ccr.json carries the service layer's points/sec alongside the
# per-workload numbers. Additive only — `ccr diff` does not gate it.
cargo run --release -q --bin ccr -- bench --jobs 1 --host-reps 3 --out BENCH_ccr.json \
    --store runs/store.jsonl --serve-clients 2 --at "$(git log -1 --format=%ct)"
echo '== profile fixture (tests/fixtures/run_telemetry + goldens)'
# Refresh the frozen `ccr profile` capture the golden tests run against,
# then rewrite the goldens from it. Events/report carry wall-clock pass
# timings (not byte-stable); the analyzer artifacts are deterministic.
cargo run --release -q --bin ccr -- profile bitcount \
    --telemetry tests/fixtures/run_telemetry --no-store > /dev/null
cargo run --release -q --bin ccr -- print bitcount \
    > tests/fixtures/run_telemetry/bitcount.ccr
rm -f tests/fixtures/run_telemetry/{analysis.json,trace.json,profile.folded,flamegraph.svg}
CCR_UPDATE_GOLDEN=1 cargo test --release -q --test analyze_golden > /dev/null
echo '== report goldens (tests/fixtures/run_store)'
# The run-store fixture itself is hand-frozen (it carries a *planted*
# regression the test pins first-bad detection against) — only the
# report goldens over it are rewritten.
CCR_UPDATE_GOLDEN=1 cargo test --release -q --test report_golden > /dev/null
echo '== harness.jsonl schema golden (tests/fixtures/harness)'
# Key sets per event type, not values (wall times are host-dependent);
# rewriting is only needed after an intentional schema change.
CCR_UPDATE_GOLDEN=1 cargo test --release -q --test harness_observability > /dev/null
echo '== fingerprint chains golden (tests/fixtures/fingerprint)'
# The final trajectory chain hash per workload at the default window.
# CI's fingerprint-smoke job cmp's a fresh serial and parallel run
# against this file — drift means the simulator's state trajectory
# changed, which must always be an intentional, reviewed event
# (DESIGN.md §13).
mkdir -p tests/fixtures/fingerprint
rm -rf fp-golden-tmp
cargo run --release -q --bin ccr -- fingerprint \
    $(cargo run --release -q --bin ccr -- list) \
    --jobs "$(nproc)" --out fp-golden-tmp > /dev/null
mv fp-golden-tmp/chains.txt tests/fixtures/fingerprint/chains.golden
rm -rf fp-golden-tmp
echo "done; see results/ and EXPERIMENTS.md"

#!/usr/bin/env bash
# Regenerates every experiment output into results/ (deterministic:
# identical inputs produce identical tables).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in fig4_potential fig8a_instances fig8b_entries fig9_groups \
           fig10_distribution fig11_inputs ablations width_sensitivity; do
    echo "== $bin"
    cargo run --release -q -p ccr-bench --bin "$bin" > "results/$bin.txt"
done
echo '== BENCH_ccr.json (perf baseline; CI gates ccr diff against it)'
cargo run --release -q --bin ccr -- bench --out BENCH_ccr.json
echo "done; see results/ and EXPERIMENTS.md"
